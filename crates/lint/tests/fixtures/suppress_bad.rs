//! Suppression hygiene: a justification-free allow is itself a violation (S1),
//! and it does not silence the finding it hovers over.

fn no_reason(values: &[f64]) -> f64 {
    // slic-lint: allow(P1)
    *values.first().unwrap()
}

fn unknown_rule(values: &[f64]) -> f64 {
    // slic-lint: allow(Q7) -- not a rule we ship.
    *values.first().unwrap()
}

fn too_far(values: &[f64]) -> f64 {
    // slic-lint: allow(P1) -- the blank line below breaks adjacency.

    *values.first().unwrap()
}
