//! Shared scaffolding for the experiment-regeneration benches.
//!
//! Every table and figure of the paper has a bench target in `benches/`; each target first
//! *regenerates the experiment data* (printed to stdout so `cargo bench` output doubles as
//! the EXPERIMENTS.md source) and then lets Criterion time one representative kernel of that
//! experiment.  The experiment sizes here are reduced relative to the paper (the paper's
//! baselines are 1000-point × 1000-seed HSPICE campaigns); the *shape* of every comparison —
//! who wins, by roughly what factor, where the crossovers sit — is what the harness
//! reproduces.

pub mod emit;

use slic::historical::{HistoricalLearner, HistoricalLearningConfig};
use slic::prelude::*;

/// Criterion settings shared by every bench target: small sample counts so that the full
/// `cargo bench --workspace` run stays in the minutes range.
pub fn criterion_config() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

/// Historical-learning configuration used by the benches (coarser than the paper's grids but
/// enough for stable priors).
pub fn bench_learning_config() -> HistoricalLearningConfig {
    HistoricalLearningConfig {
        grid_levels: (3, 3, 2),
        transient: TransientConfig::fast(),
    }
}

/// Learns a historical database from a subset of the suite sized for bench runtime.
pub fn bench_historical_db(technologies: &[TechnologyNode]) -> HistoricalDatabase {
    HistoricalLearner::new(bench_learning_config())
        .learn(technologies, &Library::paper_trio())
        .database
}

/// The two newest historical nodes — enough prior information for the 14-nm experiments.
pub fn finfet_history() -> Vec<TechnologyNode> {
    vec![TechnologyNode::n16_finfet(), TechnologyNode::n14_finfet()]
}

/// The planar nodes used as history for the 28-nm statistical experiments.
pub fn planar_history() -> Vec<TechnologyNode> {
    vec![
        TechnologyNode::n28_bulk(),
        TechnologyNode::n32_soi(),
        TechnologyNode::n20_bulk(),
    ]
}

/// Prints a banner identifying which paper artefact a bench regenerates.
pub fn banner(experiment: &str, description: &str) {
    println!("\n==================================================================");
    println!("  {experiment}");
    println!("  {description}");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_history_helpers_produce_usable_databases() {
        let db = bench_historical_db(&finfet_history());
        assert!(!db.is_empty());
        assert_eq!(db.technology_names().len(), 2);
    }

    #[test]
    fn criterion_config_is_constructible() {
        let _ = criterion_config();
        assert_eq!(finfet_history().len(), 2);
        assert_eq!(planar_history().len(), 3);
    }
}
