//! Quickstart: characterize one cell of a brand-new technology from three simulations.
//!
//! The example walks the whole flow of the paper once, end to end, at a size that runs in a
//! few seconds:
//!
//! 1. characterize two historical technologies on a small reference grid and archive the
//!    compact-model fits (Table I's "extracted parameters");
//! 2. learn the Gaussian prior and the per-condition precisions from that archive;
//! 3. simulate only three conditions of the new 14-nm technology and extract the NOR2 delay
//!    parameters by MAP;
//! 4. validate against 200 random conditions simulated directly.
//!
//! Run with `cargo run --release --example quickstart`.

use slic::historical::{HistoricalLearner, HistoricalLearningConfig};
use slic::prelude::*;
use slic::report::markdown_table;

use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Historical learning over two older nodes.
    let library = Library::paper_trio();
    let historical = [TechnologyNode::n16_finfet(), TechnologyNode::n14_finfet()];
    let learner = HistoricalLearner::new(HistoricalLearningConfig::default());
    let learning = learner.learn(&historical, &library);
    println!(
        "historical learning: {} records from {} technologies ({} simulations)\n",
        learning.database.len(),
        learning.database.technology_names().len(),
        learning.simulation_cost
    );

    // Print the Table I analogue for the delay metric.
    let headers: Vec<String> = [
        "tech",
        "cell",
        "kd",
        "Cpar (fF)",
        "V' (V)",
        "alpha (fF/ps)",
        "fit error (%)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let rows: Vec<Vec<String>> = learning
        .database
        .records()
        .iter()
        .filter(|r| r.metric == TimingMetric::Delay && r.arc_id.ends_with("FALL"))
        .map(|r| {
            vec![
                r.tech_name.clone(),
                r.cell_name.clone(),
                format!("{:.3}", r.params.kd),
                format!("{:.3}", r.params.cpar),
                format!("{:.3}", r.params.v_prime),
                format!("{:.3}", r.params.alpha),
                format!("{:.2}", r.fit_error_percent),
            ]
        })
        .collect();
    println!(
        "Extracted delay-model parameters (Table I analogue):\n{}",
        markdown_table(&headers, &rows)
    );

    // 2 + 3. Learn the prior/precisions and MAP-extract the target technology's NOR2 delay
    // from three fresh simulations.
    let target = TechnologyNode::target_14nm();
    let engine = CharacterizationEngine::with_config(target.clone(), TransientConfig::fast())
        .expect("valid transient configuration");
    let cell = Cell::new(CellKind::Nor2, DriveStrength::X1);
    let arc = TimingArc::new(cell, 0, Transition::Fall);

    let prior = PriorBuilder::new()
        .build(&learning.database, TimingMetric::Delay, Some("NOR2"))
        .expect("NOR2 delay records exist");
    let precision = PrecisionModel::learn(
        &learning.database,
        TimingMetric::Delay,
        &engine.input_space(),
        PrecisionConfig::default(),
    );
    let extractor = MapExtractor::new(prior, precision);

    let mut rng = StdRng::seed_from_u64(7);
    let fitting_points = engine.input_space().sample_latin_hypercube(&mut rng, 3);
    let nominal = ProcessSample::nominal();
    let samples: Vec<TimingSample> = fitting_points
        .iter()
        .map(|p| {
            let m = engine.simulate_nominal(cell, &arc, p);
            TimingSample::new(*p, engine.ieff(&arc, p, &nominal), m.delay)
        })
        .collect();
    let fit = extractor.extract(&samples);
    println!(
        "MAP extraction for {} in {} from {} simulations:\n  {}\n  posterior sd = {}\n",
        arc.id(),
        target.name(),
        samples.len(),
        fit.params,
        fit.posterior_std_devs()
    );

    // 4. Validate against directly simulated random conditions.
    let validation = engine.input_space().sample_uniform(&mut rng, 200);
    let mut errors = Vec::new();
    for p in &validation {
        let reference = engine.simulate_nominal(cell, &arc, p).delay.value();
        let predicted = fit
            .params
            .evaluate(p, engine.ieff(&arc, p, &nominal))
            .value();
        errors.push(100.0 * (predicted - reference).abs() / reference);
    }
    let mean_error = errors.iter().sum::<f64>() / errors.len() as f64;
    println!(
        "validation over {} random conditions: mean delay error = {:.2}% (total target-tech simulations used for fitting: {})",
        validation.len(),
        mean_error,
        samples.len()
    );
}
