//! Adaptive-step transient simulation of a single switching event.
//!
//! The circuit being integrated is the cell's equivalent inverter (Fig. 1(b) of the paper)
//! driving its output load:
//!
//! ```text
//!            Vdd
//!             |
//!          [ PMOS ]  vgs_p = Vdd − vin,  vds_p = Vdd − vout
//!             |
//!   vin ──────┼────────── vout ──┬─────────┐
//!             |                  |         |
//!          [ NMOS ]            Cload   Cpar (+ Miller Cm)
//!             |                  |         |
//!            GND                GND       GND
//! ```
//!
//! The single state variable is the output voltage; the input is an ideal voltage ramp with
//! the requested slew.  The ODE `C_tot · dVout/dt = I_pmos − I_nmos + Cm · dVin/dt` is
//! integrated with a classical fourth-order Runge–Kutta scheme whose step size adapts to the
//! output slope, and the 20 % / 50 % / 80 % crossing times are recovered by linear
//! interpolation between steps.

use crate::input::InputPoint;
use crate::measure::{
    TimingMeasurement, DELAY_THRESHOLD, SLEW_HIGH_THRESHOLD, SLEW_LOW_THRESHOLD, SLEW_SCALE,
};
use serde::{Deserialize, Serialize};
use slic_cells::{EquivalentInverter, TimingArc, Transition};
use slic_units::{Seconds, Volts};
use std::error::Error;
use std::fmt;

/// Tuning knobs of the transient solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientConfig {
    /// Maximum output-voltage change allowed per step, as a fraction of `Vdd`.
    pub dv_max_fraction: f64,
    /// Minimum number of steps taken across the input ramp (resolution of the stimulus).
    pub min_steps_per_ramp: usize,
    /// Simulation horizon as a multiple of the estimated switching time constant.
    pub max_time_factor: f64,
    /// Gate-to-drain (Miller) coupling capacitance as a fraction of the cell input
    /// capacitance.
    pub miller_fraction: f64,
}

impl TransientConfig {
    /// Accuracy-oriented settings used for baseline ("golden") characterization.
    pub fn accurate() -> Self {
        Self {
            dv_max_fraction: 1.0 / 400.0,
            min_steps_per_ramp: 200,
            max_time_factor: 80.0,
            miller_fraction: 0.25,
        }
    }

    /// Faster settings for large Monte Carlo sweeps; roughly 3× fewer device evaluations at
    /// a delay error well below 1 %.
    pub fn fast() -> Self {
        Self {
            dv_max_fraction: 1.0 / 150.0,
            min_steps_per_ramp: 80,
            max_time_factor: 80.0,
            miller_fraction: 0.25,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.dv_max_fraction > 0.0 && self.dv_max_fraction < 0.1) {
            return Err("dv_max_fraction must be in (0, 0.1)".to_string());
        }
        if self.min_steps_per_ramp < 10 {
            return Err("min_steps_per_ramp must be at least 10".to_string());
        }
        if self.max_time_factor < 5.0 {
            return Err("max_time_factor must be at least 5".to_string());
        }
        if !(0.0..1.0).contains(&self.miller_fraction) {
            return Err("miller_fraction must be in [0, 1)".to_string());
        }
        Ok(())
    }
}

impl Default for TransientConfig {
    fn default() -> Self {
        Self::accurate()
    }
}

/// Error returned when a switching simulation cannot produce a measurement.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TransientError {
    /// The output never completed its transition within the simulation horizon — typically
    /// a sign that the supply is far below threshold or the load is unrealistically large.
    IncompleteTransition {
        /// The horizon that was simulated, in seconds.
        horizon: f64,
        /// The last output voltage reached, in volts.
        last_output: f64,
    },
    /// The configuration failed validation.
    InvalidConfig(String),
}

impl fmt::Display for TransientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransientError::IncompleteTransition { horizon, last_output } => write!(
                f,
                "output transition incomplete after {horizon:.3e} s (last output {last_output:.3} V)"
            ),
            TransientError::InvalidConfig(msg) => write!(f, "invalid transient config: {msg}"),
        }
    }
}

impl Error for TransientError {}

/// Simulates one switching event and measures delay and output slew.
///
/// `arc` selects which output transition is simulated; the input stimulus direction is the
/// complement (the equivalent inverter is inverting by construction).
///
/// # Errors
///
/// Returns [`TransientError::IncompleteTransition`] if the output does not complete its
/// swing within the configured horizon, or [`TransientError::InvalidConfig`] if `config`
/// fails validation.
pub fn simulate_switching(
    eq: &EquivalentInverter,
    arc: &TimingArc,
    point: &InputPoint,
    config: &TransientConfig,
) -> Result<TimingMeasurement, TransientError> {
    config.validate().map_err(TransientError::InvalidConfig)?;

    let vdd = point.vdd.value();
    let ramp_time = point.sin.value();
    let output_rising = arc.output_transition() == Transition::Rise;

    // Total capacitance on the output node.
    let cm = config.miller_fraction * eq.input_cap().value();
    let c_total = point.cload.value() + eq.output_parasitic_cap().value() + cm;

    // Input ramp (complement of the output transition).
    let input_rising = !output_rising;
    let vin_at = |t: f64| -> f64 {
        let x = (t / ramp_time).clamp(0.0, 1.0);
        if input_rising {
            vdd * x
        } else {
            vdd * (1.0 - x)
        }
    };
    let dvin_dt = |t: f64| -> f64 {
        if t < 0.0 || t > ramp_time {
            0.0
        } else if input_rising {
            vdd / ramp_time
        } else {
            -vdd / ramp_time
        }
    };

    // Output derivative.
    let pmos = eq.pmos();
    let nmos = eq.nmos();
    let dvout_dt = |t: f64, vout: f64| -> f64 {
        let vin = vin_at(t);
        let i_p = pmos
            .drain_current(Volts(vdd - vin), Volts(vdd - vout))
            .value();
        let i_n = nmos.drain_current(Volts(vin), Volts(vout)).value();
        (i_p - i_n + cm * dvin_dt(t)) / c_total
    };

    // Time-step bounds: resolve the ramp, then adapt to the output slope.
    let drive = eq.driving_device(arc.output_transition());
    let i_drive = drive.idsat(point.vdd).value().max(1e-12);
    let tau = c_total * vdd / i_drive;
    let horizon = ramp_time + config.max_time_factor * tau;
    let dt_ramp = ramp_time / config.min_steps_per_ramp as f64;
    let dt_min = (tau / 2_000.0).min(dt_ramp);
    let dv_max = config.dv_max_fraction * vdd;

    // Threshold set, expressed as absolute voltages in crossing order for this transition.
    let thresholds: [f64; 3] = if output_rising {
        [
            SLEW_LOW_THRESHOLD * vdd,
            DELAY_THRESHOLD * vdd,
            SLEW_HIGH_THRESHOLD * vdd,
        ]
    } else {
        [
            SLEW_HIGH_THRESHOLD * vdd,
            DELAY_THRESHOLD * vdd,
            SLEW_LOW_THRESHOLD * vdd,
        ]
    };
    let mut crossing_times = [None::<f64>; 3];

    let mut t = 0.0_f64;
    let mut vout = if output_rising { 0.0 } else { vdd };

    while t < horizon {
        // Choose the step from the local slope, clamped into [dt_min, dt_ramp] during the
        // ramp and up to tau/20 afterwards.
        let slope = dvout_dt(t, vout).abs().max(1e-30);
        let dt_cap = if t < ramp_time { dt_ramp } else { tau / 20.0 };
        let dt = (dv_max / slope).clamp(dt_min, dt_cap);

        // Classical RK4 step.
        let k1 = dvout_dt(t, vout);
        let k2 = dvout_dt(t + 0.5 * dt, vout + 0.5 * dt * k1);
        let k3 = dvout_dt(t + 0.5 * dt, vout + 0.5 * dt * k2);
        let k4 = dvout_dt(t + dt, vout + dt * k3);
        let v_next = vout + dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
        let t_next = t + dt;

        // Record threshold crossings by linear interpolation inside the step.
        for (idx, &threshold) in thresholds.iter().enumerate() {
            if crossing_times[idx].is_none() {
                let crossed = if output_rising {
                    vout < threshold && v_next >= threshold
                } else {
                    vout > threshold && v_next <= threshold
                };
                if crossed {
                    let frac = (threshold - vout) / (v_next - vout);
                    crossing_times[idx] = Some(t + frac * dt);
                }
            }
        }

        vout = v_next;
        t = t_next;

        if crossing_times.iter().all(Option::is_some) {
            break;
        }
    }

    let (first, mid, last) = match crossing_times {
        [Some(a), Some(b), Some(c)] => (a, b, c),
        _ => {
            return Err(TransientError::IncompleteTransition {
                horizon,
                last_output: vout,
            })
        }
    };

    // Delay: 50 % input to 50 % output.  The input crosses 50 % at half the ramp.
    let input_mid = 0.5 * ramp_time;
    // Extremely fast cells driven by very slow ramps can nominally cross before the input
    // midpoint; clamp to one femtosecond to keep the measurement physical.
    let delay = (mid - input_mid).max(1e-15);
    let slew = (last - first) * SLEW_SCALE;

    Ok(TimingMeasurement::new(Seconds(delay), Seconds(slew)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use slic_cells::{Cell, CellKind, DriveStrength};
    use slic_device::TechnologyNode;
    use slic_units::Farads;

    fn setup(kind: CellKind) -> (TechnologyNode, EquivalentInverter, Cell) {
        let tech = TechnologyNode::n14_finfet();
        let cell = Cell::new(kind, DriveStrength::X1);
        let eq = EquivalentInverter::nominal(&tech, cell);
        (tech, eq, cell)
    }

    fn point(sin_ps: f64, cload_ff: f64, vdd: f64) -> InputPoint {
        InputPoint::new(
            Seconds::from_picoseconds(sin_ps),
            Farads::from_femtofarads(cload_ff),
            Volts(vdd),
        )
    }

    #[test]
    fn config_validation() {
        assert!(TransientConfig::accurate().validate().is_ok());
        assert!(TransientConfig::fast().validate().is_ok());
        let bad = TransientConfig {
            dv_max_fraction: 0.5,
            ..TransientConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = TransientConfig {
            min_steps_per_ramp: 2,
            ..TransientConfig::default()
        };
        let err = simulate_switching(
            &setup(CellKind::Inv).1,
            &TimingArc::new(
                Cell::new(CellKind::Inv, DriveStrength::X1),
                0,
                Transition::Fall,
            ),
            &point(5.0, 2.0, 0.8),
            &bad,
        )
        .unwrap_err();
        assert!(matches!(err, TransientError::InvalidConfig(_)));
        assert!(err.to_string().contains("min_steps_per_ramp"));
    }

    #[test]
    fn inverter_delays_are_picosecond_scale() {
        let (_, eq, cell) = setup(CellKind::Inv);
        for transition in Transition::BOTH {
            let arc = TimingArc::new(cell, 0, transition);
            let m = simulate_switching(
                &eq,
                &arc,
                &point(5.0, 2.0, 0.8),
                &TransientConfig::accurate(),
            )
            .unwrap();
            assert!(
                m.delay_ps() > 0.5 && m.delay_ps() < 200.0,
                "{transition}: delay = {} ps",
                m.delay_ps()
            );
            assert!(
                m.output_slew_ps() > 0.5 && m.output_slew_ps() < 400.0,
                "{transition}: slew = {} ps",
                m.output_slew_ps()
            );
        }
    }

    #[test]
    fn delay_increases_with_load() {
        let (_, eq, cell) = setup(CellKind::Nand2);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let cfg = TransientConfig::accurate();
        let light = simulate_switching(&eq, &arc, &point(5.0, 0.5, 0.8), &cfg).unwrap();
        let heavy = simulate_switching(&eq, &arc, &point(5.0, 5.0, 0.8), &cfg).unwrap();
        assert!(heavy.delay > light.delay);
        assert!(heavy.output_slew > light.output_slew);
    }

    #[test]
    fn delay_increases_as_vdd_drops() {
        let (_, eq, cell) = setup(CellKind::Nor2);
        let arc = TimingArc::new(cell, 0, Transition::Rise);
        let cfg = TransientConfig::accurate();
        let nominal = simulate_switching(&eq, &arc, &point(5.0, 2.0, 1.0), &cfg).unwrap();
        let low = simulate_switching(&eq, &arc, &point(5.0, 2.0, 0.65), &cfg).unwrap();
        assert!(low.delay.value() > 1.3 * nominal.delay.value());
    }

    #[test]
    fn delay_increases_with_input_slew() {
        let (_, eq, cell) = setup(CellKind::Inv);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let cfg = TransientConfig::accurate();
        let fast_in = simulate_switching(&eq, &arc, &point(1.0, 2.0, 0.8), &cfg).unwrap();
        let slow_in = simulate_switching(&eq, &arc, &point(15.0, 2.0, 0.8), &cfg).unwrap();
        assert!(slow_in.delay > fast_in.delay);
    }

    #[test]
    fn weaker_pull_up_makes_rise_slower_than_fall_for_nor() {
        // NOR2 stacks its PMOS devices, so its rising output is slower than its falling one.
        let (_, eq, cell) = setup(CellKind::Nor2);
        let cfg = TransientConfig::accurate();
        let rise = simulate_switching(
            &eq,
            &TimingArc::new(cell, 0, Transition::Rise),
            &point(5.0, 2.0, 0.8),
            &cfg,
        )
        .unwrap();
        let fall = simulate_switching(
            &eq,
            &TimingArc::new(cell, 0, Transition::Fall),
            &point(5.0, 2.0, 0.8),
            &cfg,
        )
        .unwrap();
        assert!(rise.delay > fall.delay);
    }

    #[test]
    fn fast_config_tracks_accurate_config() {
        let (_, eq, cell) = setup(CellKind::Inv);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let p = point(5.0, 2.0, 0.8);
        let accurate = simulate_switching(&eq, &arc, &p, &TransientConfig::accurate()).unwrap();
        let fast = simulate_switching(&eq, &arc, &p, &TransientConfig::fast()).unwrap();
        let rel = (accurate.delay.value() - fast.delay.value()).abs() / accurate.delay.value();
        assert!(rel < 0.02, "fast vs accurate delay mismatch: {rel}");
    }

    #[test]
    fn incomplete_transition_is_reported() {
        let (_, eq, cell) = setup(CellKind::Inv);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        // Far sub-threshold supply: the NMOS barely out-drives the PMOS leakage, so the
        // output settles at an intermediate level and never crosses the 20 % threshold.
        let p = InputPoint::new(
            Seconds::from_picoseconds(5.0),
            Farads::from_femtofarads(2.0),
            Volts(0.02),
        );
        let cfg = TransientConfig::fast();
        let result = simulate_switching(&eq, &arc, &p, &cfg);
        match result {
            Err(TransientError::IncompleteTransition { .. }) => {}
            other => panic!("expected incomplete transition, got {other:?}"),
        }
    }

    #[test]
    fn results_are_deterministic() {
        let (_, eq, cell) = setup(CellKind::Nand2);
        let arc = TimingArc::new(cell, 0, Transition::Rise);
        let p = point(7.0, 3.0, 0.9);
        let cfg = TransientConfig::accurate();
        let a = simulate_switching(&eq, &arc, &p, &cfg).unwrap();
        let b = simulate_switching(&eq, &arc, &p, &cfg).unwrap();
        assert_eq!(a, b);
    }
}
