//! Belief propagation across technology nodes: priors, precisions and MAP extraction.
//!
//! This crate implements Section IV of the paper.  The idea is that the four compact-model
//! parameters of a cell change only moderately from one technology node to the next
//! (Table I), so characterizations of *old* libraries carry usable information — "belief" —
//! about a *new* one:
//!
//! 1. every historical technology's cells are fitted with the compact model and archived as
//!    [`HistoricalRecord`]s in a [`HistoricalDatabase`];
//! 2. a Gaussian **prior** `µ_P ~ N(µ0, Σ0)` over the parameters is learned from those
//!    records ([`ParameterPrior`], Eq. 7);
//! 3. the per-input-condition model **precision** `β(ξ)` — how much the compact model can be
//!    trusted at each corner of the input space — is learned from the historical relative
//!    residuals ([`PrecisionModel`], Eq. 9);
//! 4. the new technology's parameters are extracted from an ultra-small set of simulations
//!    by **maximum-a-posteriori** estimation ([`MapExtractor`], Eqs. 13–15), combining the
//!    prior, the precisions and the few fresh observations.
//!
//! The actual simulations that populate the database and provide the fresh observations are
//! orchestrated by `slic-core`; this crate is pure statistics on top of
//! [`slic_timing_model`].
//!
//! # Examples
//!
//! ```
//! use slic_bayes::{HistoricalDatabase, PriorBuilder, TimingMetric};
//! use slic_timing_model::TimingParams;
//!
//! let mut db = HistoricalDatabase::new();
//! for (tech, kd) in [("n45", 0.40), ("n28", 0.38), ("n14", 0.39)] {
//!     db.push(slic_bayes::HistoricalRecord::new(
//!         tech, 45, "INV_X1", "INV_X1/A0/FALL", TimingMetric::Delay,
//!         TimingParams::new(kd, 1.0, -0.25, 0.09), 1.5, Vec::new(),
//!     ));
//! }
//! let prior = PriorBuilder::new().build(&db, TimingMetric::Delay, None).unwrap();
//! assert_eq!(prior.distribution().dim(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod history;
pub mod map;
pub mod precision;
pub mod prior;

pub use history::{ConditionResidual, HistoricalDatabase, HistoricalRecord, TimingMetric};
pub use map::{MapExtractor, MapFit};
pub use precision::{PrecisionConfig, PrecisionModel};
pub use prior::{ParameterPrior, PriorBuilder};
