//! SIMD quad worklist: four transient lanes per step attempt through the vector kernel.
//!
//! The batched kernel in [`batch`](crate::batch) advances lanes one at a time, so every
//! derivative evaluation pays scalar libm transcendentals.  This module packs lanes into
//! **quads** and evaluates all four lanes' Bogacki–Shampine stages through the
//! [`CompiledInverterX4`] vector model, whose transcendentals are the fixed-polynomial
//! kernels of `slic_device::vmath` — arithmetic the autovectorizer keeps in vector
//! registers.
//!
//! Quad membership is fixed once per batch — lanes are chunked in input order, the last
//! (partial) quad padded by repeating its final lane — so the per-quad constant packing
//! happens once, off the hot loop.  Each quad with at least one unretired lane performs
//! **one step attempt** per round: rejected lanes shrink their proposal and retry on the
//! next round (which reproduces exactly the attempt sequence of the scalar reject loop,
//! because an attempt's outcome depends only on its own lane's state), retired lanes keep
//! their quad slot but are masked out of the write-back, and a quad leaves the worklist
//! when its last real lane retires.  The quad-occupancy statistic reports how many slots
//! carried real unretired lanes.  Accept/reject, the PI controller, crossing recording
//! and retirement run through the same [`LaneState::finish_attempt`] the scalar kernel
//! uses, so the two modes differ *only* in how the stage derivatives are computed.
//!
//! **Accuracy contract.**  Every vector-math kernel is element-wise (lane `i` of a result
//! depends only on lane `i` of the inputs), so a lane's trajectory is independent of quad
//! composition, batch size and retirement order — the SIMD result for a problem is a
//! deterministic function of that problem alone.  It is *not* bitwise identical to the
//! scalar libm kernel: the polynomial transcendentals differ from libm by ~1e-12 relative.
//! That is why the mode is opt-in (`kernel.simd = true`) and carried by a CI-gated ≤0.5 %
//! accuracy bound against the golden reference instead of the scalar path's bitwise
//! batch≡scalar guarantee.

use crate::batch::LaneResult;
use crate::input::InputPoint;
use crate::measure::TimingMeasurement;
use crate::transient::{
    LaneState, TransientConfig, TransientError, TransientProblem, TransientStats,
};
use slic_cells::{EquivalentInverter, TimingArc};
use slic_device::vmath::F64x4;
use slic_device::{drain_current4_batch, CompiledDeviceX4, CompiledInverterX4, SweepScratch};

/// Work counters of one SIMD batch integration, for the quad-occupancy diagnostic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimdBatchStats {
    /// Quad step attempts executed (each evaluates four lanes of stage derivatives).
    pub quad_rounds: u64,
    /// Real (non-padding) lanes those quad attempts advanced.
    pub active_lane_rounds: u64,
}

impl SimdBatchStats {
    /// Fraction of quad slots occupied by real lanes, in `[0, 1]`: `1.0` means every quad
    /// was full; lower values mean padded partial quads (small or nearly-drained batches).
    pub fn occupancy(&self) -> f64 {
        if self.quad_rounds == 0 {
            return 1.0;
        }
        self.active_lane_rounds as f64 / (4 * self.quad_rounds) as f64
    }

    /// Folds another batch's counters into this aggregate.
    pub fn merge(&mut self, other: &SimdBatchStats) {
        self.quad_rounds += other.quad_rounds;
        self.active_lane_rounds += other.active_lane_rounds;
    }
}

/// The per-quad constants of the vector derivative: four lanes' problem parameters packed
/// structure-of-arrays, built once per batch (quad membership is fixed).  The quad's two
/// packed devices live in the batch-wide dense device table, not here — the hot loop
/// evaluates them through [`drain_current4_batch`].
struct QuadConsts {
    vdd: F64x4,
    inv_ramp_time: F64x4,
    ramp_time: F64x4,
    ramp_slope: F64x4,
    /// Input voltage at ramp start (`0` for a rising input, `vdd` for a falling one).
    vin0: F64x4,
    /// Signed input swing across the ramp (`vin = vin0 + dvin · x`).
    dvin: F64x4,
    cm: F64x4,
    inv_c_total: F64x4,
}

impl QuadConsts {
    fn pack(problems: [&TransientProblem; 4]) -> Self {
        Self {
            vdd: problems.map(|p| p.vdd),
            inv_ramp_time: problems.map(|p| p.inv_ramp_time),
            ramp_time: problems.map(|p| p.ramp_time),
            ramp_slope: problems.map(|p| p.ramp_slope),
            vin0: problems.map(|p| if p.input_rising { 0.0 } else { p.vdd }),
            dvin: problems.map(|p| if p.input_rising { p.vdd } else { -p.vdd }),
            cm: problems.map(|p| p.cm),
            inv_c_total: problems.map(|p| p.inv_c_total),
        }
    }
}

/// One quad of the fixed worklist: its glue constants, the lanes it carries and how many
/// of its four slots are real (the tail quad repeats its last lane into unused slots).
struct Quad {
    consts: QuadConsts,
    idx: [usize; 4],
    width: usize,
}

/// Reusable per-round buffers of the stage-batched device sweep (plain data — nothing
/// here borrows the quads, so one allocation set serves every round).
#[derive(Default)]
struct StageScratch {
    /// Device-table indices of the items to evaluate (two per active quad).
    idx: Vec<u32>,
    /// Per-item gate and drain drive voltages.
    vgs: Vec<F64x4>,
    vds: Vec<F64x4>,
    /// Per-item drain currents out of [`drain_current4_batch`].
    cur: Vec<F64x4>,
    /// Per-quad input-ramp slope term of this stage's times.
    dvin_dt: Vec<F64x4>,
    /// The device sweep's own staging buffers.
    sweep: SweepScratch,
}

/// Evaluates one Bogacki–Shampine stage for every active quad in a single device sweep:
/// per-quad ramp glue, then all pull-up and pull-down drain currents of the whole round
/// through one [`drain_current4_batch`] call, then the per-quad derivative combine.
/// `st`/`sv` hold the stage times and output voltages per active quad; `k_out` receives
/// the four-lane derivatives, aligned with `active`.
fn eval_stage(
    quads: &[Quad],
    devices: &[CompiledDeviceX4],
    active: &[u32],
    st: &[F64x4],
    sv: &[F64x4],
    scratch: &mut StageScratch,
    k_out: &mut Vec<F64x4>,
) {
    scratch.idx.clear();
    scratch.vgs.clear();
    scratch.vds.clear();
    scratch.dvin_dt.clear();
    for (pos, &qi) in active.iter().enumerate() {
        let c = &quads[qi as usize].consts;
        let t = st[pos];
        let vout = sv[pos];
        let mut vin = [0.0_f64; 4];
        let mut dv = [0.0_f64; 4];
        let mut vgs_p = [0.0_f64; 4];
        let mut vds_p = [0.0_f64; 4];
        for i in 0..4 {
            let x = (t[i] * c.inv_ramp_time[i]).clamp(0.0, 1.0);
            vin[i] = c.vin0[i] + c.dvin[i] * x;
            dv[i] = if t[i] < 0.0 || t[i] > c.ramp_time[i] {
                0.0
            } else {
                c.ramp_slope[i]
            };
            vgs_p[i] = c.vdd[i] - vin[i];
            vds_p[i] = c.vdd[i] - vout[i];
        }
        scratch.dvin_dt.push(dv);
        // Pull-up drives on supply-referenced voltages, pull-down on ground-referenced.
        scratch.idx.push(2 * qi);
        scratch.vgs.push(vgs_p);
        scratch.vds.push(vds_p);
        scratch.idx.push(2 * qi + 1);
        scratch.vgs.push(vin);
        scratch.vds.push(vout);
    }
    scratch.cur.clear();
    scratch.cur.resize(scratch.idx.len(), [0.0; 4]);
    drain_current4_batch(
        devices,
        &scratch.idx,
        &scratch.vgs,
        &scratch.vds,
        &mut scratch.sweep,
        &mut scratch.cur,
    );
    k_out.clear();
    for (pos, &qi) in active.iter().enumerate() {
        let c = &quads[qi as usize].consts;
        let up = scratch.cur[2 * pos];
        let down = scratch.cur[2 * pos + 1];
        let dv = scratch.dvin_dt[pos];
        let mut out = [0.0_f64; 4];
        for i in 0..4 {
            out[i] = (up[i] - down[i] + c.cm[i] * dv[i]) * c.inv_c_total[i];
        }
        k_out.push(out);
    }
}

/// Integrates a set of pre-built problems through the SIMD quad worklist.
///
/// Result `i` corresponds to `problems[i]` regardless of the order lanes retire in, and
/// is independent of what other problems share the batch (element-wise vector math plus
/// per-lane state make each trajectory a function of its own problem alone).
pub(crate) fn integrate_batch_simd(
    problems: &[TransientProblem],
) -> (Vec<LaneResult>, SimdBatchStats) {
    let mut lanes: Vec<LaneState> = problems.iter().map(LaneState::new).collect();
    let mut stats = SimdBatchStats::default();

    // Fixed quad membership, constants packed once: chunk lane indices in input order and
    // pad the last partial quad by repeating its final lane.  Padded slots are evaluated
    // (element-wise arithmetic cannot disturb the real lanes) but never written back.
    // The quads' packed devices go into one dense table — items 2q (pull-up) and 2q + 1
    // (pull-down) of quad q — for the stage-batched sweeps.
    let mut quads: Vec<Quad> = Vec::with_capacity(problems.len().div_ceil(4));
    let mut devices: Vec<CompiledDeviceX4> = Vec::with_capacity(quads.capacity() * 2);
    for chunk in (0..problems.len()).collect::<Vec<usize>>().chunks(4) {
        let last = chunk[chunk.len() - 1];
        let mut idx = [last; 4];
        idx[..chunk.len()].copy_from_slice(chunk);
        let quad_problems = idx.map(|i| &problems[i]);
        let inv = CompiledInverterX4::pack(quad_problems.map(|p| &p.inv));
        devices.push(*inv.pmos4());
        devices.push(*inv.nmos4());
        quads.push(Quad {
            consts: QuadConsts::pack(quad_problems),
            idx,
            width: chunk.len(),
        });
    }

    // Round loop: keep an index list of quads that still carry an unretired real lane,
    // gather their states, run the three Bogacki–Shampine stages as whole-round device
    // sweeps, and scatter through the scalar controller.  Every buffer below is plain
    // data reused across rounds.  Batching a round's device evaluations into single
    // [`drain_current4_batch`] sweeps is what makes the mode pay: the quads of a round
    // are independent, so the sweep pipelines their long transcendental chains.
    let mut active: Vec<u32> = (0..quads.len() as u32).collect();
    let mut g_t: Vec<F64x4> = Vec::new();
    let mut g_v: Vec<F64x4> = Vec::new();
    let mut g_k1: Vec<F64x4> = Vec::new();
    let mut g_dt: Vec<F64x4> = Vec::new();
    let mut ts: Vec<F64x4> = Vec::new();
    let mut vs: Vec<F64x4> = Vec::new();
    let mut k2: Vec<F64x4> = Vec::new();
    let mut k3: Vec<F64x4> = Vec::new();
    let mut k4: Vec<F64x4> = Vec::new();
    let mut t_next: Vec<F64x4> = Vec::new();
    let mut v_next: Vec<F64x4> = Vec::new();
    let mut scratch = StageScratch::default();

    loop {
        active.retain(|&qi| {
            let q = &quads[qi as usize];
            q.idx[..q.width].iter().any(|&li| !lanes[li].finished())
        });
        if active.is_empty() {
            break;
        }

        // Gather lane state and per-lane step proposals.  Retired lanes are carried
        // along on their frozen state (computed, masked from write-back below).
        g_t.clear();
        g_v.clear();
        g_k1.clear();
        g_dt.clear();
        for &qi in &active {
            let q = &quads[qi as usize];
            let mut t = [0.0_f64; 4];
            let mut v = [0.0_f64; 4];
            let mut k1 = [0.0_f64; 4];
            let mut dt = [0.0_f64; 4];
            for j in 0..4 {
                let lane = &lanes[q.idx[j]];
                t[j] = lane.t;
                v[j] = lane.v;
                k1[j] = lane.k1;
                dt[j] = lane.propose_dt(&problems[q.idx[j]]);
            }
            g_t.push(t);
            g_v.push(v);
            g_k1.push(k1);
            g_dt.push(dt);
        }

        // Stage 2: k2 = f(t + dt/2, v + dt/2 · k1).
        ts.clear();
        vs.clear();
        for pos in 0..active.len() {
            let mut a = [0.0_f64; 4];
            let mut b = [0.0_f64; 4];
            for j in 0..4 {
                a[j] = g_t[pos][j] + 0.5 * g_dt[pos][j];
                b[j] = g_v[pos][j] + 0.5 * g_dt[pos][j] * g_k1[pos][j];
            }
            ts.push(a);
            vs.push(b);
        }
        eval_stage(&quads, &devices, &active, &ts, &vs, &mut scratch, &mut k2);

        // Stage 3: k3 = f(t + 3dt/4, v + 3dt/4 · k2).
        ts.clear();
        vs.clear();
        for pos in 0..active.len() {
            let mut a = [0.0_f64; 4];
            let mut b = [0.0_f64; 4];
            for j in 0..4 {
                a[j] = g_t[pos][j] + 0.75 * g_dt[pos][j];
                b[j] = g_v[pos][j] + 0.75 * g_dt[pos][j] * k2[pos][j];
            }
            ts.push(a);
            vs.push(b);
        }
        eval_stage(&quads, &devices, &active, &ts, &vs, &mut scratch, &mut k3);

        // Third-order solution and the FSAL stage k4 = f(t_next, v_next).
        t_next.clear();
        v_next.clear();
        for pos in 0..active.len() {
            let mut a = [0.0_f64; 4];
            let mut b = [0.0_f64; 4];
            for j in 0..4 {
                a[j] = g_t[pos][j] + g_dt[pos][j];
                b[j] = g_v[pos][j]
                    + g_dt[pos][j]
                        * ((2.0 / 9.0) * g_k1[pos][j]
                            + (1.0 / 3.0) * k2[pos][j]
                            + (4.0 / 9.0) * k3[pos][j]);
            }
            t_next.push(a);
            v_next.push(b);
        }
        eval_stage(
            &quads,
            &devices,
            &active,
            &t_next,
            &v_next,
            &mut scratch,
            &mut k4,
        );

        // Scatter: accept/reject, PI control, crossings and retirement are the scalar
        // kernel's own code, one real unretired lane at a time.
        for (pos, &qi) in active.iter().enumerate() {
            let q = &quads[qi as usize];
            let mut advanced = 0u64;
            for j in 0..q.width {
                let li = q.idx[j];
                if lanes[li].finished() {
                    continue;
                }
                advanced += 1;
                lanes[li].finish_attempt(
                    &problems[li],
                    g_dt[pos][j],
                    k2[pos][j],
                    k3[pos][j],
                    k4[pos][j],
                    v_next[pos][j],
                    t_next[pos][j],
                );
            }
            stats.quad_rounds += 1;
            stats.active_lane_rounds += advanced;
        }
    }

    (
        lanes
            .into_iter()
            .zip(problems)
            .map(|(lane, problem)| lane.into_result(problem))
            .collect(),
        stats,
    )
}

/// Simulates one switching event through the SIMD kernel (a batch of one, so the quad
/// runs at 25 % occupancy — the batched entry points are where the mode pays off).
///
/// # Errors
///
/// Same conditions as [`simulate_switching`](crate::transient::simulate_switching).
pub fn simulate_switching_simd_with_stats(
    eq: &EquivalentInverter,
    arc: &TimingArc,
    point: &InputPoint,
    config: &TransientConfig,
) -> Result<(TimingMeasurement, TransientStats), TransientError> {
    config.validate().map_err(TransientError::InvalidConfig)?;
    let problems = [TransientProblem::new(eq, arc, point, config)];
    let (mut results, _) = integrate_batch_simd(&problems);
    // slic-lint: allow(P1) -- structural: integrate_batch_simd returns one result per problem and one problem was passed.
    results.pop().expect("one problem yields one result")
}

/// Monte Carlo batch through the SIMD kernel: simulates `arc` at one input point for every
/// equivalent inverter in `lanes`, returning per-lane results in input order.
///
/// # Errors
///
/// Same conditions as [`simulate_switching_batch`](crate::batch::simulate_switching_batch).
pub fn simulate_switching_batch_simd(
    lanes: &[EquivalentInverter],
    arc: &TimingArc,
    point: &InputPoint,
    config: &TransientConfig,
) -> Result<Vec<Result<TimingMeasurement, TransientError>>, TransientError> {
    simulate_switching_batch_simd_with_stats(lanes, arc, point, config)
        .map(|(rs, _)| rs.into_iter().map(|r| r.map(|(m, _)| m)).collect())
}

/// [`simulate_switching_batch_simd`] plus per-lane work counters and the batch's quad
/// occupancy statistics.
///
/// # Errors
///
/// Same conditions as [`simulate_switching_batch`](crate::batch::simulate_switching_batch).
pub fn simulate_switching_batch_simd_with_stats(
    lanes: &[EquivalentInverter],
    arc: &TimingArc,
    point: &InputPoint,
    config: &TransientConfig,
) -> Result<(Vec<LaneResult>, SimdBatchStats), TransientError> {
    config.validate().map_err(TransientError::InvalidConfig)?;
    let problems: Vec<TransientProblem> = lanes
        .iter()
        .map(|eq| TransientProblem::new(eq, arc, point, config))
        .collect();
    Ok(integrate_batch_simd(&problems))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::simulate_switching;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use slic_cells::{Cell, CellKind, DriveStrength, Transition};
    use slic_device::TechnologyNode;
    use slic_units::{Farads, Seconds, Volts};

    fn pt(sin_ps: f64, cload_ff: f64, vdd: f64) -> InputPoint {
        InputPoint::new(
            Seconds::from_picoseconds(sin_ps),
            Farads::from_femtofarads(cload_ff),
            Volts(vdd),
        )
    }

    fn mc_lanes(n: usize) -> (TimingArc, Vec<EquivalentInverter>) {
        let tech = TechnologyNode::n14_finfet();
        let cell = Cell::new(CellKind::Nand2, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let mut rng = StdRng::seed_from_u64(42);
        let seeds = tech.variation().sample_n(&mut rng, n);
        let lanes = seeds
            .iter()
            .map(|s| EquivalentInverter::build(&tech, cell, s))
            .collect();
        (arc, lanes)
    }

    #[test]
    fn simd_lanes_track_scalar_within_accuracy_bound() {
        let (arc, lanes) = mc_lanes(11);
        let point = pt(5.0, 2.0, 0.8);
        let cfg = TransientConfig::fast();
        let batch = simulate_switching_batch_simd(&lanes, &arc, &point, &cfg).unwrap();
        for (eq, result) in lanes.iter().zip(&batch) {
            let scalar = simulate_switching(eq, &arc, &point, &cfg).unwrap();
            let simd = result.clone().unwrap();
            let delay_err =
                (simd.delay.value() - scalar.delay.value()).abs() / scalar.delay.value();
            let slew_err = (simd.output_slew.value() - scalar.output_slew.value()).abs()
                / scalar.output_slew.value();
            assert!(delay_err < 0.005, "delay err {delay_err}");
            assert!(slew_err < 0.005, "slew err {slew_err}");
        }
    }

    #[test]
    fn simd_result_is_independent_of_batch_composition() {
        // Lane values must not depend on quad-mates, batch size or padding: the same
        // problem must yield identical bits alone, in a full quad and in a padded tail.
        let (arc, lanes) = mc_lanes(7);
        let point = pt(3.0, 1.5, 0.9);
        let cfg = TransientConfig::fast();
        let full = simulate_switching_batch_simd(&lanes, &arc, &point, &cfg).unwrap();
        for (i, eq) in lanes.iter().enumerate() {
            let solo = simulate_switching_batch_simd(std::slice::from_ref(eq), &arc, &point, &cfg)
                .unwrap();
            let a = full[i].clone().unwrap();
            let b = solo[0].clone().unwrap();
            assert_eq!(a.delay.value().to_bits(), b.delay.value().to_bits());
            assert_eq!(
                a.output_slew.value().to_bits(),
                b.output_slew.value().to_bits()
            );
        }
        // And the one-shot entry point agrees with the batch lane.
        let (solo, _) = simulate_switching_simd_with_stats(&lanes[2], &arc, &point, &cfg).unwrap();
        let lane = full[2].clone().unwrap();
        assert_eq!(solo.delay.value().to_bits(), lane.delay.value().to_bits());
    }

    #[test]
    fn simd_batches_are_deterministic() {
        let (arc, lanes) = mc_lanes(9);
        let point = pt(5.0, 2.0, 0.8);
        let cfg = TransientConfig::accurate();
        let a = simulate_switching_batch_simd(&lanes, &arc, &point, &cfg).unwrap();
        let b = simulate_switching_batch_simd(&lanes, &arc, &point, &cfg).unwrap();
        for (x, y) in a.iter().zip(&b) {
            let (x, y) = (x.clone().unwrap(), y.clone().unwrap());
            assert_eq!(x.delay.value().to_bits(), y.delay.value().to_bits());
            assert_eq!(
                x.output_slew.value().to_bits(),
                y.output_slew.value().to_bits()
            );
        }
    }

    #[test]
    fn quad_occupancy_reflects_batch_shape() {
        let (arc, lanes) = mc_lanes(16);
        let point = pt(5.0, 2.0, 0.8);
        let cfg = TransientConfig::fast();
        let (_, stats) =
            simulate_switching_batch_simd_with_stats(&lanes, &arc, &point, &cfg).unwrap();
        let occ = stats.occupancy();
        assert!(stats.quad_rounds > 0);
        assert!(
            occ > 0.5 && occ <= 1.0,
            "16 cross-seed lanes should keep quads mostly full, got {occ}"
        );
        // A batch of one can never do better than a quarter-full quad.
        let (_, solo) =
            simulate_switching_batch_simd_with_stats(&lanes[..1], &arc, &point, &cfg).unwrap();
        assert_eq!(solo.active_lane_rounds, solo.quad_rounds);
        assert!((solo.occupancy() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn per_lane_failures_do_not_poison_the_simd_batch() {
        let tech = TechnologyNode::n14_finfet();
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let eq = EquivalentInverter::nominal(&tech, cell);
        let cfg = TransientConfig::fast();
        let problems: Vec<TransientProblem> = [
            pt(5.0, 2.0, 0.8),
            pt(5.0, 2.0, 0.02), // sub-threshold: never completes
            pt(5.0, 2.0, 0.9),
        ]
        .iter()
        .map(|p| TransientProblem::new(&eq, &arc, p, &cfg))
        .collect();
        let (results, _) = integrate_batch_simd(&problems);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(TransientError::IncompleteTransition { .. })
        ));
        assert!(results[2].is_ok());
    }

    #[test]
    fn empty_simd_batch_is_fine() {
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let (batch, stats) = simulate_switching_batch_simd_with_stats(
            &[],
            &arc,
            &pt(5.0, 2.0, 0.8),
            &TransientConfig::fast(),
        )
        .unwrap();
        assert!(batch.is_empty());
        assert_eq!(stats.quad_rounds, 0);
        assert_eq!(stats.occupancy(), 1.0);
    }
}
