//! Transient-kernel throughput bench: the Monte Carlo sweep inner loop, measured three
//! ways — the pre-PR scalar RK4 kernel, the embedded-pair scalar kernel, and the batched
//! Monte Carlo kernel — at both configuration presets.
//!
//! Beyond the console table, the bench writes the **`BENCH_transient.json`** artifact
//! (sims/sec, steps/sim, device-evals/sim, accuracy against the golden reference, and the
//! derived speedup ratios) so the kernel's performance is a committed, CI-gated number.
//!
//! Environment:
//!
//! * `BENCH_OUT` — artifact path (default `BENCH_transient.json` in the working directory);
//! * `BENCH_SMOKE=1` — reduced workload for CI smoke runs (also recorded in the artifact).
//!
//! Throughput is measured on one thread on purpose: thread fan-out multiplies every
//! kernel equally, and the single-thread number is the one the ROADMAP's "fast as the
//! hardware allows" target is about.

use slic::prelude::*;
use slic_bench::banner;
use slic_bench::emit::{SpeedupReport, TransientBenchReport, VariantReport};
use slic_spice::{
    simulate_switching_batch_simd_with_stats, simulate_switching_batch_with_stats,
    simulate_switching_rk4_with_stats, simulate_switching_simd_with_stats,
    simulate_switching_with_stats, TransientStats,
};

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Instant;

/// A runnable kernel variant: one full (point × seed) sweep returning the measurements
/// and the aggregated work counters.
type KernelRun<'a> = Box<dyn FnMut() -> (Vec<TimingMeasurement>, TransientStats) + 'a>;

struct Workload {
    tech: TechnologyNode,
    cell: Cell,
    arc: TimingArc,
    points: Vec<InputPoint>,
    seeds: Vec<ProcessSample>,
    lanes: Vec<EquivalentInverter>,
    reduced: bool,
}

fn workload() -> Workload {
    let reduced = std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (n_points, n_seeds) = if reduced { (2, 16) } else { (4, 64) };
    let tech = TechnologyNode::n28_bulk();
    let cell = Cell::new(CellKind::Nand2, DriveStrength::X1);
    let arc = TimingArc::new(cell, 0, Transition::Fall);
    let space = InputSpace::paper_space(tech.vdd_range());
    let mut rng = StdRng::seed_from_u64(20150313);
    let points = space.sample_latin_hypercube(&mut rng, n_points);
    let seeds = tech.variation().sample_n(&mut rng, n_seeds);
    let lanes = seeds
        .iter()
        .map(|s| EquivalentInverter::build(&tech, cell, s))
        .collect();
    Workload {
        tech,
        cell,
        arc,
        points,
        seeds,
        lanes,
        reduced,
    }
}

/// Seconds each timed pass must cover so timer granularity and scheduler noise stay well
/// below the gate thresholds (the reduced CI workload finishes one sweep in well under a
/// millisecond — far too short to time on a shared runner).
const MIN_PASS_SECONDS: f64 = 0.05;

/// Times `sweep`, repeated enough times per pass to cover [`MIN_PASS_SECONDS`], over
/// `reps` passes; returns the fastest per-sweep seconds (least scheduler noise).
fn best_of(reps: usize, mut sweep: impl FnMut()) -> f64 {
    // Calibration pass sizes the repetition count.
    let start = Instant::now();
    sweep();
    let once = start.elapsed().as_secs_f64().max(1e-9);
    let iters = (MIN_PASS_SECONDS / once).ceil().max(1.0) as usize;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            sweep();
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

struct Accuracy {
    max_delay_pct: f64,
    max_slew_pct: f64,
}

fn accuracy_vs(golden: &[TimingMeasurement], measured: &[TimingMeasurement]) -> Accuracy {
    let mut acc = Accuracy {
        max_delay_pct: 0.0,
        max_slew_pct: 0.0,
    };
    for (g, m) in golden.iter().zip(measured) {
        let d = 100.0 * (m.delay.value() / g.delay.value() - 1.0).abs();
        let s = 100.0 * (m.output_slew.value() / g.output_slew.value() - 1.0).abs();
        acc.max_delay_pct = acc.max_delay_pct.max(d);
        acc.max_slew_pct = acc.max_slew_pct.max(s);
    }
    acc
}

fn main() {
    banner(
        "Transient kernel throughput (BENCH_transient.json)",
        "Monte Carlo sweep: scalar RK4 (pre-PR) vs embedded-pair scalar vs batched lanes",
    );
    let w = workload();
    let sims = w.points.len() * w.lanes.len();
    let reps = if w.reduced { 3 } else { 5 };
    println!(
        "workload: {} {} arc, {} points x {} seeds = {} sims/variant ({} mode)\n",
        w.cell,
        w.arc.output_transition(),
        w.points.len(),
        w.lanes.len(),
        sims,
        if w.reduced { "reduced" } else { "full" },
    );

    // Golden reference: seed RK4 at the accurate preset, point-major lane order.
    let golden_cfg = TransientConfig::accurate();
    let golden: Vec<TimingMeasurement> = w
        .points
        .iter()
        .flat_map(|p| {
            w.lanes.iter().map(|eq| {
                simulate_switching_rk4_with_stats(eq, &w.arc, p, &golden_cfg)
                    .expect("golden simulation completes")
                    .0
            })
        })
        .collect();

    let mut variants: Vec<VariantReport> = Vec::new();
    for (config_name, config) in [
        ("fast", TransientConfig::fast()),
        ("accurate", TransientConfig::accurate()),
    ] {
        // Each variant runs the identical (point × seed) sweep.  The scalar variants
        // rebuild the equivalent inverter per simulation — exactly what the pre-PR engine
        // paid per `solve` — while the batched variant amortizes lane setup across points
        // the way the batch kernel's callers can.
        let kernels: [(&str, KernelRun); 5] = [
            (
                "rk4_scalar",
                Box::new(|| {
                    let mut total = TransientStats::default();
                    let mut ms = Vec::with_capacity(sims);
                    for p in &w.points {
                        for seed in &w.seeds {
                            let eq = EquivalentInverter::build(&w.tech, w.cell, seed);
                            let (m, s) = simulate_switching_rk4_with_stats(&eq, &w.arc, p, &config)
                                .expect("simulation completes");
                            total.steps += s.steps;
                            total.rejected_steps += s.rejected_steps;
                            total.device_evals += s.device_evals;
                            ms.push(m);
                        }
                    }
                    (ms, total)
                }),
            ),
            (
                "embedded_scalar",
                Box::new(|| {
                    let mut total = TransientStats::default();
                    let mut ms = Vec::with_capacity(sims);
                    for p in &w.points {
                        for seed in &w.seeds {
                            let eq = EquivalentInverter::build(&w.tech, w.cell, seed);
                            let (m, s) = simulate_switching_with_stats(&eq, &w.arc, p, &config)
                                .expect("simulation completes");
                            total.steps += s.steps;
                            total.rejected_steps += s.rejected_steps;
                            total.device_evals += s.device_evals;
                            ms.push(m);
                        }
                    }
                    (ms, total)
                }),
            ),
            (
                "embedded_batch",
                Box::new(|| {
                    let mut total = TransientStats::default();
                    let mut ms = Vec::with_capacity(sims);
                    for p in &w.points {
                        for result in
                            simulate_switching_batch_with_stats(&w.lanes, &w.arc, p, &config)
                                .expect("config is valid")
                        {
                            let (m, s) = result.expect("simulation completes");
                            total.steps += s.steps;
                            total.rejected_steps += s.rejected_steps;
                            total.device_evals += s.device_evals;
                            ms.push(m);
                        }
                    }
                    (ms, total)
                }),
            ),
            (
                "simd_scalar",
                Box::new(|| {
                    let mut total = TransientStats::default();
                    let mut ms = Vec::with_capacity(sims);
                    for p in &w.points {
                        for seed in &w.seeds {
                            let eq = EquivalentInverter::build(&w.tech, w.cell, seed);
                            let (m, s) =
                                simulate_switching_simd_with_stats(&eq, &w.arc, p, &config)
                                    .expect("simulation completes");
                            total.steps += s.steps;
                            total.rejected_steps += s.rejected_steps;
                            total.device_evals += s.device_evals;
                            ms.push(m);
                        }
                    }
                    (ms, total)
                }),
            ),
            (
                "simd_batch",
                Box::new(|| {
                    let mut total = TransientStats::default();
                    let mut ms = Vec::with_capacity(sims);
                    for p in &w.points {
                        let (results, _) =
                            simulate_switching_batch_simd_with_stats(&w.lanes, &w.arc, p, &config)
                                .expect("config is valid");
                        for result in results {
                            let (m, s) = result.expect("simulation completes");
                            total.steps += s.steps;
                            total.rejected_steps += s.rejected_steps;
                            total.device_evals += s.device_evals;
                            ms.push(m);
                        }
                    }
                    (ms, total)
                }),
            ),
        ];

        for (name, mut run) in kernels {
            let (measurements, stats) = run();
            let accuracy = accuracy_vs(&golden, &measurements);
            let elapsed = best_of(reps, || {
                let (ms, _) = run();
                std::hint::black_box(ms);
            });
            let report = VariantReport {
                name: name.to_string(),
                config: config_name.to_string(),
                sims_per_sec: sims as f64 / elapsed,
                steps_per_sim: stats.steps as f64 / sims as f64,
                rejected_steps_per_sim: stats.rejected_steps as f64 / sims as f64,
                device_evals_per_sim: stats.device_evals as f64 / sims as f64,
                max_delay_err_vs_golden_pct: accuracy.max_delay_pct,
                max_slew_err_vs_golden_pct: accuracy.max_slew_pct,
            };
            println!(
                "{:<16} {:<9} {:>12.0} sims/s  {:>7.1} steps/sim  {:>8.1} evals/sim  delay err {:.4}%  slew err {:.4}%",
                report.name,
                report.config,
                report.sims_per_sec,
                report.steps_per_sim,
                report.device_evals_per_sim,
                report.max_delay_err_vs_golden_pct,
                report.max_slew_err_vs_golden_pct,
            );
            variants.push(report);
        }
    }

    let ratio = |fast: &str, slow: &str, config: &str| -> Option<SpeedupReport> {
        let fast_v = variants
            .iter()
            .find(|v| v.name == fast && v.config == config)?;
        let slow_v = variants
            .iter()
            .find(|v| v.name == slow && v.config == config)?;
        Some(SpeedupReport {
            name: format!("{fast}_vs_{slow}_{config}"),
            ratio: fast_v.sims_per_sec / slow_v.sims_per_sec,
        })
    };
    let speedups: Vec<SpeedupReport> = [
        ratio("embedded_scalar", "rk4_scalar", "fast"),
        ratio("embedded_batch", "rk4_scalar", "fast"),
        ratio("embedded_scalar", "rk4_scalar", "accurate"),
        ratio("embedded_batch", "rk4_scalar", "accurate"),
        ratio("simd_batch", "embedded_batch", "fast"),
        ratio("simd_batch", "rk4_scalar", "fast"),
        ratio("simd_batch", "embedded_batch", "accurate"),
        ratio("simd_batch", "rk4_scalar", "accurate"),
    ]
    .into_iter()
    .flatten()
    .collect();

    println!();
    for s in &speedups {
        println!("{:<44} {:.2}x", s.name, s.ratio);
    }

    let report = TransientBenchReport {
        reduced: w.reduced,
        cell: w.cell.to_string(),
        arc: w.arc.output_transition().to_string(),
        tech: w.tech.name().to_string(),
        points: w.points.len(),
        seeds: w.lanes.len(),
        variants,
        speedups,
    };
    let out = std::env::var("BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            // Default into the workspace root (the bench's working directory is the crate).
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_transient.json")
        });
    report.write(&out).expect("artifact written");
    println!("\nwrote {}", out.display());
}
