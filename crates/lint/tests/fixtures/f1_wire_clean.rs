//! F1 wire must-not-fire: floats cross the boundary as hex bit patterns.

fn encode(delay: f64) -> String {
    format!("{:016x}", delay.to_bits())
}

fn decode(text: &str) -> Option<f64> {
    u64::from_str_radix(text, 16).ok().map(f64::from_bits)
}
