//! A disk-backed simulation cache: warm state that survives process restarts.
//!
//! [`DiskSimCache`] persists `SimKey → TimingMeasurement` pairs as a JSON-lines append
//! log.  Opening a cache loads every archived record into memory; `store` archives new
//! records in memory and queues one JSON line each; [`flush`](DiskSimCache::flush) appends
//! the queued lines to the log (and runs automatically on drop).  Append-only persistence
//! means shard workers of a split [`CharacterizationPlan`] and later reruns all
//! warm-start from the same file: a rerun of an already-characterized shard pays zero
//! transient simulations.
//!
//! Reads and appends take an advisory file lock (shared for load, exclusive for flush),
//! so same-host workers pointed at one cache file never interleave partial lines; each
//! worker still only *sees* records flushed before it opened the file, so sequential
//! workers share everything while concurrent workers merely deduplicate what was on disk
//! when they started.  The in-memory side mirrors [`InMemorySimCache`]'s 16-way sharding,
//! keeping warm-replay lookups contention-free under rayon.
//!
//! The log is human-readable and diffable: one record per line, floating-point cache
//! coordinates hex-encoded so every bit pattern round-trips exactly.
//!
//! [`CharacterizationPlan`]: ../../slic_pipeline/plan/struct.CharacterizationPlan.html
//! [`InMemorySimCache`]: crate::cache::InMemorySimCache

use crate::cache::{CacheError, InMemorySimCache, SimKey, SimulationCache};
use crate::measure::TimingMeasurement;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One archived simulation, as written to the log.
#[derive(Serialize, Deserialize)]
struct DiskRecord {
    key: SimKey,
    measurement: TimingMeasurement,
}

/// What [`DiskSimCache::compact`] did to a log file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Records surviving in the compacted snapshot (unique keys, last value each).
    pub kept: usize,
    /// Duplicate records dropped (earlier values of keys that appear again later).
    pub dropped: usize,
    /// Legacy-kernel records evicted because
    /// [`CompactionOptions::drop_legacy`] was set (always zero otherwise).
    pub dropped_legacy: usize,
    /// Corrupt lines moved to the `.quarantine` sidecar because
    /// [`CompactionOptions::quarantine`] was set (always zero otherwise: without the
    /// flag, corruption aborts the compaction instead).
    pub quarantined: usize,
}

/// Knobs of a [`DiskSimCache::compact_with`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionOptions {
    /// Evict records whose [`SimKey`] kernel version predates the current
    /// [`KERNEL_VERSION`](crate::cache::KERNEL_VERSION).  Such records can never answer a
    /// lookup of this binary again; dropping them trades loadability by *older* binaries
    /// for a smaller log.
    pub drop_legacy: bool,
    /// Salvage a log with corrupt interior lines instead of aborting: every valid record
    /// is kept, and each corrupt line is moved verbatim to a `<path>.quarantine` sidecar
    /// for inspection.  Off by default because silent salvage would hide corruption; the
    /// operator opts in after the default compaction has already refused.
    pub quarantine: bool,
}

/// A persistent [`SimulationCache`] backed by a JSON-lines append log.
///
/// The in-memory tier (sharded map, hit/miss accounting) *is* an [`InMemorySimCache`];
/// this type adds the load-on-open / flush-on-drop persistence around it.  Hit/miss
/// accounting covers this process only (records loaded from disk are warm state, not
/// misses); see the [`cache`](crate::cache) module docs for the counting rules.
pub struct DiskSimCache {
    path: PathBuf,
    memory: InMemorySimCache,
    /// JSON lines archived since the last flush, in store order.
    pending: Mutex<Vec<String>>,
}

impl fmt::Debug for DiskSimCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiskSimCache")
            .field("path", &self.path)
            .field("len", &self.len())
            .finish()
    }
}

impl DiskSimCache {
    /// Opens (or creates) the cache log at `path`, loading every archived record.
    ///
    /// A missing file is an empty cache; missing parent directories are created.  The
    /// read holds a shared advisory lock, so a concurrent worker's flush never tears a
    /// record mid-read.  A malformed final line **without a trailing newline** is
    /// tolerated and ignored — it is the signature of a process killed mid-append, and
    /// the next flush truncates it away — but corruption anywhere else (including a
    /// newline-terminated final record) is an error: silently dropping archived
    /// simulations would quietly re-pay for them.
    ///
    /// # Errors
    ///
    /// Returns a [`CacheError`] on filesystem failures or a corrupt non-final record.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, CacheError> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let cache = Self {
            path,
            memory: InMemorySimCache::new(),
            pending: Mutex::new(Vec::new()),
        };
        let text = match std::fs::File::open(&cache.path) {
            Ok(file) => {
                file.lock_shared()?;
                std::io::read_to_string(&file)?
                // Closing the handle releases the lock.
            }
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(err) => return Err(err.into()),
        };
        let lines: Vec<&str> = text.lines().collect();
        for (index, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<DiskRecord>(line) {
                Ok(record) => {
                    if index + 1 == lines.len() && !text.ends_with('\n') {
                        // A complete record whose trailing newline was lost in a crash:
                        // the next flush truncates every un-terminated byte, so queue the
                        // record for re-append or it would vanish from the log.
                        cache
                            .pending
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .push((*line).to_string());
                    }
                    cache.memory.insert_warm(record.key, record.measurement);
                }
                Err(err) if index + 1 == lines.len() && !text.ends_with('\n') => {
                    // A truncated final record from an interrupted append — recognizable
                    // by the missing trailing newline; the next flush truncates it away
                    // before appending. A *complete* (newline-terminated) corrupt line is
                    // real corruption and falls through to the error below.
                    let _ = err;
                }
                Err(err) => {
                    return Err(CacheError::Corrupt {
                        line: index + 1,
                        message: err.to_string(),
                    });
                }
            }
        }
        Ok(cache)
    }

    /// The log file this cache persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of archived measurements (loaded plus stored).
    pub fn len(&self) -> usize {
        self.memory.len()
    }

    /// Returns `true` when nothing is archived.
    pub fn is_empty(&self) -> bool {
        self.memory.is_empty()
    }

    /// Rewrites the append-only log at `path` as a deduplicated last-record-wins
    /// snapshot, in place, under the same exclusive advisory lock every flush takes.
    ///
    /// The append log only grows: concurrent workers racing on one coordinate each append
    /// a record, reruns against a changed value append again, and a long campaign's log
    /// ends up storing each hot coordinate several times.  Compaction keeps exactly one
    /// record per unique [`SimKey`] — the **last** one, matching the last-record-wins
    /// load semantics — in first-appearance order, so a compacted log loads to the
    /// identical in-memory state as the original.
    ///
    /// The rewrite happens in place (seek to start, write the snapshot, truncate), not
    /// via rename: the file keeps its inode, so a concurrent worker blocked on the
    /// advisory lock appends to the *compacted* file when it acquires it, instead of to
    /// an unlinked orphan.  A torn final line (crashed writer) is repaired away, exactly
    /// as [`flush`](Self::flush) would.  A legacy-kernel record is kept by default — its
    /// key can never collide with a current-kernel key — so old logs stay loadable by old
    /// binaries; [`compact_with`](Self::compact_with) can evict them instead.
    ///
    /// A missing file is an empty cache: nothing to do, zero report.
    ///
    /// # Errors
    ///
    /// Returns a [`CacheError`] on filesystem failures or a corrupt non-final record
    /// (same tolerance as [`open`](Self::open)); the log is not modified in that case.
    pub fn compact(path: impl AsRef<Path>) -> Result<CompactionReport, CacheError> {
        Self::compact_with(path, CompactionOptions::default())
    }

    /// [`compact`](Self::compact) with explicit [`CompactionOptions`]:
    ///
    /// - `drop_legacy` additionally evicts records written by a kernel predating the
    ///   current [`KERNEL_VERSION`](crate::cache::KERNEL_VERSION) (the age-based eviction
    ///   a long-lived cache needs after a solver upgrade: those records are never
    ///   consulted again by this binary and only grow the log);
    /// - `quarantine` salvages a log the default compaction refuses: valid records are
    ///   kept, and each corrupt line moves verbatim to a `<path>.quarantine` sidecar
    ///   (appended, so repeated salvages accumulate evidence rather than overwrite it).
    ///   The sidecar is written *before* the log is rewritten, so a crash between the two
    ///   can duplicate a corrupt line in the sidecar but never lose one.
    ///
    /// # Errors
    ///
    /// Returns a [`CacheError`] on filesystem failures or — unless `quarantine` is set —
    /// a corrupt non-final record (same tolerance as [`open`](Self::open)); the log is
    /// not modified in that case.
    pub fn compact_with(
        path: impl AsRef<Path>,
        options: CompactionOptions,
    ) -> Result<CompactionReport, CacheError> {
        let mut file = match std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path.as_ref())
        {
            Ok(file) => file,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
                return Ok(CompactionReport::default())
            }
            Err(err) => return Err(err.into()),
        };
        file.lock()?;
        let text = std::io::read_to_string(&file)?;
        let lines: Vec<&str> = text.lines().collect();
        // First-appearance order of unique keys; last-record-wins value per key.
        let mut order: Vec<SimKey> = Vec::new();
        let mut latest: std::collections::BTreeMap<SimKey, TimingMeasurement> =
            std::collections::BTreeMap::new();
        let mut records = 0usize;
        let mut dropped_legacy = 0usize;
        let mut quarantined: Vec<&str> = Vec::new();
        for (index, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<DiskRecord>(line) {
                Ok(record) => {
                    if options.drop_legacy && record.key.is_legacy_kernel() {
                        dropped_legacy += 1;
                        continue;
                    }
                    records += 1;
                    if latest
                        .insert(record.key.clone(), record.measurement)
                        .is_none()
                    {
                        order.push(record.key);
                    }
                }
                Err(err) if index + 1 == lines.len() && !text.ends_with('\n') => {
                    // Torn tail of a crashed append: repaired by the rewrite below.
                    let _ = err;
                }
                Err(err) if options.quarantine => {
                    let _ = err;
                    quarantined.push(line);
                }
                Err(err) => {
                    return Err(CacheError::Corrupt {
                        line: index + 1,
                        message: err.to_string(),
                    });
                }
            }
        }
        if !quarantined.is_empty() {
            // Sidecar first: a crash after this append but before the log rewrite below
            // duplicates a corrupt line in the sidecar, but never loses one.
            let mut sidecar_path = path.as_ref().as_os_str().to_os_string();
            sidecar_path.push(".quarantine");
            let mut sidecar = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&sidecar_path)?;
            let mut evidence = String::new();
            for line in &quarantined {
                evidence.push_str(line);
                evidence.push('\n');
            }
            sidecar.write_all(evidence.as_bytes())?;
            sidecar.flush()?;
        }
        let mut snapshot = String::new();
        for key in &order {
            let record = DiskRecord {
                key: key.clone(),
                measurement: latest[key],
            };
            snapshot.push_str(
                // slic-lint: allow(P1) -- structural: SimKey construction rejects NaN, so a stored record always serializes.
                &serde_json::to_string(&record).expect("cache records contain only finite numbers"),
            );
            snapshot.push('\n');
        }
        file.seek(SeekFrom::Start(0))?;
        file.write_all(snapshot.as_bytes())?;
        file.set_len(snapshot.len() as u64)?;
        file.flush()?;
        // Closing the handle releases the lock.
        Ok(CompactionReport {
            kept: order.len(),
            dropped: records - order.len(),
            dropped_legacy,
            quarantined: quarantined.len(),
        })
    }

    /// Appends every record stored since the last flush to the log file, under an
    /// exclusive advisory lock so concurrent same-host workers append whole lines.
    ///
    /// A torn final line left by a crashed writer is truncated away first — appending
    /// after it would weld the partial bytes and the first new record into one
    /// unparseable interior line and brick the log for every later `open`.
    ///
    /// Called automatically on drop; call it explicitly when the cache must be durable at
    /// a known point (e.g. before handing the file to the next shard worker).
    ///
    /// # Errors
    ///
    /// Returns a [`CacheError::Io`] when the log cannot be appended; the pending records
    /// are kept for a retry.
    pub fn flush(&self) -> Result<(), CacheError> {
        let mut pending = self
            .pending
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if pending.is_empty() {
            return Ok(());
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&self.path)?;
        file.lock()?;
        truncate_torn_tail(&mut file)?;
        let mut text = String::new();
        for line in pending.iter() {
            text.push_str(line);
            text.push('\n');
        }
        file.write_all(text.as_bytes())?;
        file.flush()?;
        pending.clear();
        // Closing the handle releases the lock.
        Ok(())
    }
}

/// Truncates a torn final line (no trailing newline) off the log.
///
/// Called under the exclusive flush lock: any live writer finishes its whole batch —
/// trailing newline included — before releasing the lock, so a non-newline tail can only
/// be the leftover of a crashed writer and is safe to drop (its record was never
/// observable as complete).
fn truncate_torn_tail(file: &mut std::fs::File) -> std::io::Result<()> {
    const CHUNK: u64 = 64 * 1024;
    let len = file.metadata()?.len();
    let mut scanned = 0u64;
    // Scan backwards for the last newline; keep everything up to and including it.
    while scanned < len {
        let chunk = CHUNK.min(len - scanned);
        file.seek(SeekFrom::Start(len - scanned - chunk))?;
        let mut buf = vec![0u8; chunk as usize];
        file.read_exact(&mut buf)?;
        if scanned == 0 && buf.last() == Some(&b'\n') {
            return Ok(());
        }
        if let Some(pos) = buf.iter().rposition(|&b| b == b'\n') {
            file.set_len(len - scanned - chunk + pos as u64 + 1)?;
            return Ok(());
        }
        scanned += chunk;
    }
    // No newline anywhere: the whole file is one torn line (or empty).
    file.set_len(0)?;
    Ok(())
}

impl SimulationCache for DiskSimCache {
    fn lookup(&self, key: &SimKey) -> Option<TimingMeasurement> {
        self.memory.lookup(key)
    }

    fn store(&self, key: SimKey, measurement: TimingMeasurement) {
        let line = serde_json::to_string(&DiskRecord {
            key: key.clone(),
            measurement,
        })
        // slic-lint: allow(P1) -- structural: SimKey construction rejects NaN, so a stored record always serializes.
        .expect("cache records contain only finite numbers");
        // Re-storing the identical value (a benign replay) keeps the log clean; a changed
        // value must be appended because loading is last-record-wins.
        if self.memory.archive(key, measurement) != Some(measurement) {
            self.pending
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .push(line);
        }
    }

    fn hits(&self) -> u64 {
        self.memory.hits()
    }

    fn warm_hits(&self) -> u64 {
        self.memory.warm_hits()
    }

    fn misses(&self) -> u64 {
        self.memory.misses()
    }

    fn persist(&self) -> Result<(), CacheError> {
        self.flush()
    }
}

impl Drop for DiskSimCache {
    fn drop(&mut self) {
        if let Err(err) = self.flush() {
            eprintln!(
                "warning: failed to flush simulation cache `{}`: {err}",
                self.path.display()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::InputPoint;
    use crate::transient::TransientConfig;
    use slic_cells::{Cell, CellKind, DriveStrength, TimingArc, Transition};
    use slic_device::ProcessSample;
    use slic_units::{Farads, Seconds, Volts};

    fn key(sin_ps: f64, cload_ff: f64) -> SimKey {
        let cell = Cell::new(CellKind::Nand2, DriveStrength::X2);
        let arc = TimingArc::new(cell, 0, Transition::Rise);
        let point = InputPoint::new(
            Seconds::from_picoseconds(sin_ps),
            Farads::from_femtofarads(cload_ff),
            Volts(0.8),
        );
        SimKey::new(
            "n14",
            &arc,
            &point,
            &ProcessSample::nominal(),
            &TransientConfig::fast(),
        )
    }

    fn measurement(delay_ps: f64) -> TimingMeasurement {
        TimingMeasurement::new(
            Seconds::from_picoseconds(delay_ps),
            Seconds::from_picoseconds(delay_ps * 0.6),
        )
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("slic-disk-cache-{}-{name}", std::process::id()))
    }

    #[test]
    fn persists_across_reopen() {
        let path = temp_path("roundtrip.jsonl");
        std::fs::remove_file(&path).ok();
        {
            let cache = DiskSimCache::open(&path).expect("opens fresh");
            assert!(cache.is_empty());
            cache.store(key(5.0, 2.0), measurement(12.0));
            cache.store(key(6.0, 3.0), measurement(15.0));
            cache.flush().expect("flushes");
            assert_eq!(cache.misses(), 2);
        }
        let reopened = DiskSimCache::open(&path).expect("reopens");
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.lookup(&key(5.0, 2.0)), Some(measurement(12.0)));
        assert_eq!(reopened.lookup(&key(6.0, 3.0)), Some(measurement(15.0)));
        assert_eq!(reopened.hits(), 2);
        assert_eq!(reopened.misses(), 0, "loaded records are not misses");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_on_drop_without_explicit_flush() {
        let path = temp_path("drop.jsonl");
        std::fs::remove_file(&path).ok();
        {
            let cache = DiskSimCache::open(&path).expect("opens");
            cache.store(key(7.0, 1.0), measurement(9.0));
        }
        let reopened = DiskSimCache::open(&path).expect("reopens");
        assert_eq!(reopened.lookup(&key(7.0, 1.0)), Some(measurement(9.0)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_stores_append_once() {
        let path = temp_path("dedup.jsonl");
        std::fs::remove_file(&path).ok();
        let cache = DiskSimCache::open(&path).expect("opens");
        cache.store(key(5.0, 2.0), measurement(12.0));
        cache.store(key(5.0, 2.0), measurement(12.0));
        cache.flush().expect("flushes");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 2, "both solves were paid");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1, "the log stays deduplicated");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_final_line_is_tolerated() {
        let path = temp_path("truncated.jsonl");
        std::fs::remove_file(&path).ok();
        {
            let cache = DiskSimCache::open(&path).expect("opens");
            cache.store(key(5.0, 2.0), measurement(12.0));
            cache.store(key(6.0, 3.0), measurement(15.0));
        }
        // Simulate a crash mid-append: chop the last record in half.
        let text = std::fs::read_to_string(&path).unwrap();
        let keep = text.len() - 25;
        std::fs::write(&path, &text[..keep]).unwrap();
        let reopened = DiskSimCache::open(&path).expect("tolerates a torn tail");
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.lookup(&key(5.0, 2.0)), Some(measurement(12.0)));

        // Appending through the survivor must first truncate the torn bytes — otherwise
        // they would weld onto the new record and corrupt an interior line for good.
        reopened.store(key(9.0, 4.0), measurement(20.0));
        reopened.flush().expect("flush repairs the torn tail");
        let repaired = DiskSimCache::open(&path).expect("log is clean again");
        assert_eq!(repaired.len(), 2);
        assert_eq!(repaired.lookup(&key(5.0, 2.0)), Some(measurement(12.0)));
        assert_eq!(repaired.lookup(&key(9.0, 4.0)), Some(measurement(20.0)));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.lines()
                .all(|l| serde_json::from_str::<serde::Value>(l).is_ok()),
            "every physical line must be valid JSON after the repairing flush"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn complete_record_missing_its_newline_survives_the_repairing_flush() {
        let path = temp_path("no-newline.jsonl");
        std::fs::remove_file(&path).ok();
        {
            let cache = DiskSimCache::open(&path).expect("opens");
            cache.store(key(5.0, 2.0), measurement(12.0));
            cache.store(key(6.0, 3.0), measurement(15.0));
        }
        // Crash lost only the final newline: the last record's bytes are complete.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.trim_end_matches('\n')).unwrap();
        {
            let survivor = DiskSimCache::open(&path).expect("opens");
            assert_eq!(survivor.len(), 2, "the newline-less record still loads");
            survivor.store(key(9.0, 4.0), measurement(20.0));
            // Drop flushes: truncation removes the un-terminated bytes, and the queued
            // re-append keeps the record durable.
        }
        let reopened = DiskSimCache::open(&path).expect("clean log");
        assert_eq!(reopened.len(), 3, "no archived record may be lost");
        assert_eq!(reopened.lookup(&key(6.0, 3.0)), Some(measurement(15.0)));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        assert!(text
            .lines()
            .all(|l| serde_json::from_str::<serde::Value>(l).is_ok()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_truncates_a_file_that_is_one_torn_line() {
        let path = temp_path("all-torn.jsonl");
        std::fs::remove_file(&path).ok();
        std::fs::write(&path, "{\"key\":{\"tec").unwrap();
        let cache = DiskSimCache::open(&path).expect("tolerates");
        assert!(cache.is_empty());
        cache.store(key(5.0, 2.0), measurement(12.0));
        cache.flush().expect("flushes");
        let reopened = DiskSimCache::open(&path).expect("clean log");
        assert_eq!(reopened.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn complete_corrupt_final_line_is_an_error() {
        let path = temp_path("corrupt-final.jsonl");
        std::fs::remove_file(&path).ok();
        {
            let cache = DiskSimCache::open(&path).expect("opens");
            cache.store(key(5.0, 2.0), measurement(12.0));
            cache.store(key(6.0, 3.0), measurement(15.0));
        }
        // A newline-terminated garbage line is corruption, not a torn append: tolerating
        // it would let a later flush turn it into unfixable interior corruption.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        *lines.last_mut().unwrap() = "{broken".to_string();
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let err = DiskSimCache::open(&path).expect_err("complete corrupt line rejected");
        assert!(err.to_string().contains("line 2"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn persist_delegates_to_flush() {
        let path = temp_path("persist.jsonl");
        std::fs::remove_file(&path).ok();
        let cache = DiskSimCache::open(&path).expect("opens");
        cache.store(key(5.0, 2.0), measurement(12.0));
        SimulationCache::persist(&cache).expect("persists");
        assert_eq!(DiskSimCache::open(&path).expect("reopens").len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interior_corruption_is_an_error() {
        let path = temp_path("corrupt.jsonl");
        std::fs::remove_file(&path).ok();
        {
            let cache = DiskSimCache::open(&path).expect("opens");
            cache.store(key(5.0, 2.0), measurement(12.0));
            cache.store(key(6.0, 3.0), measurement(15.0));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[0] = "{not json".to_string();
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let err = DiskSimCache::open(&path).expect_err("must reject interior corruption");
        assert!(err.to_string().contains("line 1"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(8))]
        #[test]
        fn arbitrary_records_round_trip_through_the_log(
            sins in proptest::collection::vec(0.1f64..40.0, 1..24),
            delays in proptest::collection::vec(0.5f64..80.0, 24),
        ) {
            let path = temp_path(&format!("prop-{}.jsonl", sins.len()));
            std::fs::remove_file(&path).ok();
            let records: Vec<(SimKey, TimingMeasurement)> = sins
                .iter()
                .zip(&delays)
                .map(|(&sin, &delay)| (key(sin, 2.0), measurement(delay)))
                .collect();
            {
                let cache = DiskSimCache::open(&path).expect("opens fresh");
                for (k, m) in &records {
                    cache.store(k.clone(), *m);
                }
                cache.flush().expect("flushes");
            }
            let reopened = DiskSimCache::open(&path).expect("reopens");
            for (k, m) in &records {
                proptest::prop_assert_eq!(
                    reopened.lookup(k),
                    Some(*m),
                    "coordinate bit patterns and measurements must survive persistence"
                );
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn compaction_keeps_the_last_record_per_key_and_reports_drops() {
        let path = temp_path("compact.jsonl");
        std::fs::remove_file(&path).ok();
        {
            // Two processes racing on one coordinate each append their own record, and a
            // later run overwrites a value: three physical lines, two unique keys.
            let first = DiskSimCache::open(&path).expect("opens");
            first.store(key(5.0, 2.0), measurement(12.0));
            first.store(key(6.0, 3.0), measurement(15.0));
            first.flush().expect("flushes");
        }
        // A second writer blind to the first (fresh process, same file) re-appends an
        // updated value for an existing key by writing the raw line, as a concurrent
        // worker's flush would.
        {
            use std::io::Write as _;
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            let line = serde_json::to_string(&DiskRecord {
                key: key(5.0, 2.0),
                measurement: measurement(99.0),
            })
            .unwrap();
            writeln!(file, "{line}").unwrap();
        }
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 3);
        let report = DiskSimCache::compact(&path).expect("compacts");
        assert_eq!(
            report,
            CompactionReport {
                kept: 2,
                dropped: 1,
                dropped_legacy: 0,
                quarantined: 0
            }
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "one line per unique key");
        let reopened = DiskSimCache::open(&path).expect("compacted log loads");
        assert_eq!(
            reopened.lookup(&key(5.0, 2.0)),
            Some(measurement(99.0)),
            "last record wins, exactly as the uncompacted load would resolve"
        );
        assert_eq!(reopened.lookup(&key(6.0, 3.0)), Some(measurement(15.0)));
        // Idempotent: a second compaction drops nothing.
        let again = DiskSimCache::compact(&path).expect("compacts again");
        assert_eq!(
            again,
            CompactionReport {
                kept: 2,
                dropped: 0,
                dropped_legacy: 0,
                quarantined: 0
            }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_repairs_a_torn_tail_and_tolerates_missing_files() {
        let path = temp_path("compact-torn.jsonl");
        std::fs::remove_file(&path).ok();
        assert_eq!(
            DiskSimCache::compact(&path).expect("missing file is empty"),
            CompactionReport {
                kept: 0,
                dropped: 0,
                dropped_legacy: 0,
                quarantined: 0
            }
        );
        {
            let cache = DiskSimCache::open(&path).expect("opens");
            cache.store(key(5.0, 2.0), measurement(12.0));
            cache.store(key(6.0, 3.0), measurement(15.0));
        }
        // Crash mid-append: chop the final record in half (no trailing newline).
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 25]).unwrap();
        let report = DiskSimCache::compact(&path).expect("tolerates the torn tail");
        assert_eq!(
            report,
            CompactionReport {
                kept: 1,
                dropped: 0,
                dropped_legacy: 0,
                quarantined: 0
            }
        );
        let repaired = std::fs::read_to_string(&path).unwrap();
        assert!(repaired.ends_with('\n'));
        assert!(repaired
            .lines()
            .all(|l| serde_json::from_str::<serde::Value>(l).is_ok()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn drop_legacy_compaction_evicts_pre_upgrade_records_and_reports_them_separately() {
        use crate::cache::KERNEL_VERSION;
        let path = temp_path("compact-legacy.jsonl");
        std::fs::remove_file(&path).ok();
        {
            let cache = DiskSimCache::open(&path).expect("opens");
            cache.store(key(5.0, 2.0), measurement(12.0));
            cache.store(key(6.0, 3.0), measurement(15.0));
            // A benign duplicate so plain dedup drops something too.
            cache.store(key(5.0, 2.0), measurement(13.0));
        }
        // Two records written by the pre-upgrade kernel: strip the kernel field, exactly
        // as a log line from before the field existed would look.
        {
            use std::io::Write as _;
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            let kernel_field = format!("\"kernel\":\"{KERNEL_VERSION:x}\",");
            for (k, m) in [(7.0, 21.0), (8.0, 22.0)] {
                let line = serde_json::to_string(&DiskRecord {
                    key: key(k, 1.0),
                    measurement: measurement(m),
                })
                .unwrap();
                assert!(
                    line.contains(&kernel_field),
                    "current keys persist a version"
                );
                writeln!(file, "{}", line.replace(&kernel_field, "")).unwrap();
            }
        }
        // A plain compaction keeps the legacy records (old binaries can still load them).
        let plain = DiskSimCache::compact(&path).expect("compacts");
        assert_eq!(
            plain,
            CompactionReport {
                kept: 4,
                dropped: 1,
                dropped_legacy: 0,
                quarantined: 0
            }
        );
        // Dropping legacy evicts exactly the pre-upgrade records, reported separately
        // from the superseded-duplicate count.
        let report = DiskSimCache::compact_with(
            &path,
            CompactionOptions {
                drop_legacy: true,
                ..CompactionOptions::default()
            },
        )
        .expect("compacts");
        assert_eq!(
            report,
            CompactionReport {
                kept: 2,
                dropped: 0,
                dropped_legacy: 2,
                quarantined: 0
            }
        );
        let survivors = DiskSimCache::open(&path).expect("compacted log loads");
        assert_eq!(survivors.len(), 2);
        assert_eq!(survivors.lookup(&key(5.0, 2.0)), Some(measurement(13.0)));
        assert_eq!(survivors.lookup(&key(6.0, 3.0)), Some(measurement(15.0)));
        // Idempotent: nothing legacy remains.
        let again = DiskSimCache::compact_with(
            &path,
            CompactionOptions {
                drop_legacy: true,
                ..CompactionOptions::default()
            },
        )
        .expect("compacts again");
        assert_eq!(
            again,
            CompactionReport {
                kept: 2,
                dropped: 0,
                dropped_legacy: 0,
                quarantined: 0
            }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_rejects_interior_corruption_without_touching_the_log() {
        let path = temp_path("compact-corrupt.jsonl");
        std::fs::remove_file(&path).ok();
        {
            let cache = DiskSimCache::open(&path).expect("opens");
            cache.store(key(5.0, 2.0), measurement(12.0));
            cache.store(key(6.0, 3.0), measurement(15.0));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[0] = "{not json".to_string();
        let corrupted = lines.join("\n") + "\n";
        std::fs::write(&path, &corrupted).unwrap();
        let err = DiskSimCache::compact(&path).expect_err("interior corruption rejected");
        assert!(err.to_string().contains("line 1"), "{err}");
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            corrupted,
            "a failed compaction must leave the log untouched"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quarantine_compaction_salvages_valid_records_and_sidecars_corrupt_lines() {
        let path = temp_path("compact-quarantine.jsonl");
        let sidecar = temp_path("compact-quarantine.jsonl.quarantine");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&sidecar).ok();
        {
            let cache = DiskSimCache::open(&path).expect("opens");
            cache.store(key(5.0, 2.0), measurement(12.0));
            cache.store(key(6.0, 3.0), measurement(15.0));
            cache.store(key(7.0, 4.0), measurement(18.0));
        }
        // Corrupt an interior line and the (newline-terminated) final line: both are the
        // "real corruption" class that open() and the default compaction refuse.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[1] = "{bitrot in the middle".to_string();
        lines.push("trailing garbage, with its newline".to_string());
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        DiskSimCache::compact(&path).expect_err("default compaction still refuses");
        let report = DiskSimCache::compact_with(
            &path,
            CompactionOptions {
                quarantine: true,
                ..CompactionOptions::default()
            },
        )
        .expect("quarantine salvages");
        assert_eq!(
            report,
            CompactionReport {
                kept: 2,
                dropped: 0,
                dropped_legacy: 0,
                quarantined: 2
            }
        );
        // Every valid record survived, and the log is clean again.
        let salvaged = DiskSimCache::open(&path).expect("salvaged log loads");
        assert_eq!(salvaged.len(), 2);
        assert_eq!(salvaged.lookup(&key(5.0, 2.0)), Some(measurement(12.0)));
        assert_eq!(salvaged.lookup(&key(7.0, 4.0)), Some(measurement(18.0)));
        // The corrupt lines moved verbatim to the sidecar, in log order.
        let evidence = std::fs::read_to_string(&sidecar).expect("sidecar written");
        assert_eq!(
            evidence.lines().collect::<Vec<_>>(),
            vec![
                "{bitrot in the middle",
                "trailing garbage, with its newline"
            ]
        );
        // A salvaged log quarantines nothing on the next pass, and leaves the sidecar be.
        let again = DiskSimCache::compact_with(
            &path,
            CompactionOptions {
                quarantine: true,
                ..CompactionOptions::default()
            },
        )
        .expect("compacts again");
        assert_eq!(again.quarantined, 0);
        assert_eq!(std::fs::read_to_string(&sidecar).unwrap(), evidence);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&sidecar).ok();
    }

    #[test]
    fn repeated_quarantine_salvages_append_to_the_sidecar() {
        let path = temp_path("compact-quarantine-append.jsonl");
        let sidecar = temp_path("compact-quarantine-append.jsonl.quarantine");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&sidecar).ok();
        let quarantine = CompactionOptions {
            quarantine: true,
            ..CompactionOptions::default()
        };
        for round in ["first corruption", "second corruption"] {
            {
                let cache = DiskSimCache::open(&path).expect("opens");
                cache.store(key(5.0, 2.0), measurement(12.0));
            }
            use std::io::Write as _;
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            writeln!(file, "{round}").unwrap();
            drop(file);
            let report = DiskSimCache::compact_with(&path, quarantine).expect("salvages");
            assert_eq!(report.quarantined, 1);
        }
        let evidence = std::fs::read_to_string(&sidecar).unwrap();
        assert_eq!(
            evidence.lines().collect::<Vec<_>>(),
            vec!["first corruption", "second corruption"],
            "each salvage appends its evidence instead of overwriting the last"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&sidecar).ok();
    }

    #[test]
    fn missing_file_is_an_empty_cache() {
        let path = temp_path("missing.jsonl");
        std::fs::remove_file(&path).ok();
        let cache = DiskSimCache::open(&path).expect("opens a missing file");
        assert!(cache.is_empty());
        assert_eq!(cache.path(), path.as_path());
        std::fs::remove_file(&path).ok();
    }
}
