//! The broker side of the farm: [`FarmBackend`], a [`SimulationBackend`] that fans
//! batches out to a fleet of workers.
//!
//! Dispatch is **work-stealing**: each `solve_batch` call splits its lanes into jobs on a
//! shared queue, and one dispatcher thread per live worker pulls the next job whenever
//! its worker is free — a fast worker simply drains more of the queue, and no static
//! partition can leave one worker idle while another is backed up.
//!
//! Failure handling is layered:
//!
//! 1. **Health tracking** — a worker whose connection errors, stays silent past the
//!    per-batch read deadline (a hung or half-open TCP peer must not stall the run), or
//!    whose reply is not the protocol's next expected message is marked dead and never
//!    dispatched to again;
//! 2. **Failover** — the job it was holding goes back on the queue, where a surviving
//!    worker picks it up;
//! 3. **Local fallback** — a job that has been failed over more times than there are
//!    workers, or that is still unsolved when every worker is dead, is solved in-process
//!    by a [`LocalBackend`].  A farm run therefore *completes* under any failure pattern
//!    short of the broker itself dying, and because every backend runs the same kernel
//!    (enforced by the handshake), the results are bitwise identical no matter which
//!    worker — or the broker itself — solved each lane.
//!
//! The broker keeps the engine-side policy untouched: counting, caching and single-flight
//! all happen in the [`CharacterizationEngine`](slic_spice::CharacterizationEngine) that
//! owns this backend, so a unique coordinate is paid for exactly once across the whole
//! farm and farm artifacts are byte-identical to local ones.

use crate::wire::{decode_message, encode_message, Message, WireError, WireRequest};
use crate::FarmError;
use slic_spice::{LocalBackend, SimRequest, SimResult, SimulationBackend};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Deadline for establishing a TCP worker connection.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// Deadline for one batch round trip on a TCP worker.  Solving a 16-lane batch takes
/// milliseconds even at the accurate preset, so a worker silent this long is hung or
/// unreachable (e.g. a half-open connection after its host vanished) — it is marked dead
/// and its job fails over, instead of stalling the whole run on a blocked read.  Spawned
/// stdio workers have no pipe deadline (std offers none), but they are same-host children
/// of the broker: if they hang, the operator's signal reaches both.
const BATCH_TIMEOUT: Duration = Duration::from_secs(60);

/// An established, handshook connection to one worker.
struct WorkerConn {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
    /// The subprocess behind the connection, for `--spawn-workers` fleets.
    child: Option<Child>,
}

impl Drop for WorkerConn {
    fn drop(&mut self) {
        if let Some(child) = &mut self.child {
            // The connection is gone (shutdown sent, or the worker was marked dead): make
            // sure the subprocess does not linger.  Kill is a no-op for an already-exited
            // child; wait reaps it either way.
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// One worker slot: its identity plus the (lockable) connection, `None` once dead.
struct WorkerSlot {
    name: String,
    conn: Mutex<Option<WorkerConn>>,
}

/// Farm throughput and failure counters, readable while a run is in flight.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FarmStats {
    /// Jobs answered by a worker.
    pub jobs_completed: u64,
    /// Jobs re-queued because the worker holding them failed.
    pub failovers: u64,
    /// Lanes solved on a worker.
    pub lanes_remote: u64,
    /// Lanes solved by the broker's local fallback.
    pub lanes_local: u64,
}

/// A contiguous run of lanes handed to one worker as one wire batch.
struct Job {
    /// Start offset into the request slice.
    start: usize,
    /// One past the last lane.
    end: usize,
    /// Dispatch attempts so far (drives the local-fallback escape hatch).
    attempts: usize,
}

/// The shared dispatch state of one `solve_batch` call.
struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    in_flight: usize,
}

impl JobQueue {
    fn new(jobs: VecDeque<Job>) -> Self {
        Self {
            state: Mutex::new(QueueState { jobs, in_flight: 0 }),
            ready: Condvar::new(),
        }
    }

    /// Takes the next job, waiting while other dispatchers still hold jobs that might be
    /// failed back onto the queue.  Returns `None` only when the queue is drained and
    /// nothing is in flight.
    fn next(&self) -> Option<Job> {
        // A poisoned queue means a dispatcher panicked; every mutation below is a single
        // statement, so the state is still consistent — recover it and keep dispatching.
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        loop {
            if let Some(job) = state.jobs.pop_front() {
                state.in_flight += 1;
                return Some(job);
            }
            if state.in_flight == 0 {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Marks a held job finished (solved, or handed to the stranded list).
    fn done(&self) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        state.in_flight -= 1;
        self.ready.notify_all();
    }

    /// Returns a held job to the queue for another dispatcher — the failover path.
    fn requeue(&self, job: Job) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        state.in_flight -= 1;
        state.jobs.push_back(job);
        self.ready.notify_all();
    }

    /// Drains whatever is left once every dispatcher has exited.
    fn drain(&self) -> Vec<Job> {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        state.jobs.drain(..).collect()
    }
}

/// A [`SimulationBackend`] that brokers batches to a fleet of farm workers.
pub struct FarmBackend {
    workers: Vec<WorkerSlot>,
    next_id: AtomicU64,
    fallback: LocalBackend,
    jobs_completed: AtomicU64,
    failovers: AtomicU64,
    lanes_remote: AtomicU64,
    lanes_local: AtomicU64,
}

impl std::fmt::Debug for FarmBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FarmBackend")
            .field("workers", &self.workers.len())
            .field("live", &self.live_workers())
            .field("stats", &self.stats())
            .finish()
    }
}

impl FarmBackend {
    /// Connects to TCP workers and/or spawns subprocess workers, in that order.
    ///
    /// `program` is the binary to spawn (`<program> worker`, speaking the protocol on its
    /// stdio) and is required when `spawn` is nonzero — typically the `slic` binary
    /// itself, so a farm run needs nothing installed beyond the one executable.
    ///
    /// # Errors
    ///
    /// Returns a [`FarmError`] when no worker is requested, a connection or spawn fails,
    /// or a handshake reveals an incompatible worker.  Construction is all-or-nothing: a
    /// fleet that starts degraded is an operator error, not a failover case.
    pub fn new(
        addresses: &[String],
        spawn: usize,
        program: Option<&Path>,
    ) -> Result<Self, FarmError> {
        if addresses.is_empty() && spawn == 0 {
            return Err(FarmError::NoWorkers);
        }
        let mut workers = Vec::new();
        for address in addresses {
            let connect = |address: &String| -> std::io::Result<TcpStream> {
                let mut last = None;
                for addr in address.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT) {
                        Ok(stream) => return Ok(stream),
                        Err(err) => last = Some(err),
                    }
                }
                Err(last.unwrap_or_else(|| {
                    std::io::Error::new(std::io::ErrorKind::NotFound, "address resolves to nothing")
                }))
            };
            let stream = connect(address)
                .map_err(|err| FarmError::Connect(address.clone(), err.to_string()))?;
            stream.set_nodelay(true).ok();
            // Silence past the deadline counts as worker death (see BATCH_TIMEOUT).
            stream
                .set_read_timeout(Some(BATCH_TIMEOUT))
                .map_err(|err| FarmError::Connect(address.clone(), err.to_string()))?;
            stream
                .set_write_timeout(Some(BATCH_TIMEOUT))
                .map_err(|err| FarmError::Connect(address.clone(), err.to_string()))?;
            let reader: Box<dyn Read + Send> = Box::new(
                stream
                    .try_clone()
                    .map_err(|err| FarmError::Connect(address.clone(), err.to_string()))?,
            );
            let conn = handshake(reader, Box::new(stream), None)
                .map_err(|err| FarmError::Handshake(address.clone(), err.to_string()))?;
            workers.push(WorkerSlot {
                name: address.clone(),
                conn: Mutex::new(Some(conn)),
            });
        }
        if spawn > 0 {
            let program = program.ok_or_else(|| {
                FarmError::Spawn("no worker program given for --spawn-workers".to_string())
            })?;
            for index in 0..spawn {
                let name = format!("spawned-{index}");
                let mut child = Command::new(program)
                    .arg("worker")
                    .stdin(Stdio::piped())
                    .stdout(Stdio::piped())
                    .spawn()
                    .map_err(|err| FarmError::Spawn(format!("{}: {err}", program.display())))?;
                let stdout = child
                    .stdout
                    .take()
                    .ok_or_else(|| FarmError::Spawn(format!("{name}: no stdout pipe")))?;
                let stdin = child
                    .stdin
                    .take()
                    .ok_or_else(|| FarmError::Spawn(format!("{name}: no stdin pipe")))?;
                let conn = handshake(Box::new(stdout), Box::new(stdin), Some(child))
                    .map_err(|err| FarmError::Handshake(name.clone(), err.to_string()))?;
                workers.push(WorkerSlot {
                    name,
                    conn: Mutex::new(Some(conn)),
                });
            }
        }
        Ok(Self {
            workers,
            next_id: AtomicU64::new(0),
            fallback: LocalBackend::new(),
            jobs_completed: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            lanes_remote: AtomicU64::new(0),
            lanes_local: AtomicU64::new(0),
        })
    }

    /// Connects to an explicit list of TCP worker addresses.
    ///
    /// # Errors
    ///
    /// See [`FarmBackend::new`].
    pub fn connect(addresses: &[String]) -> Result<Self, FarmError> {
        Self::new(addresses, 0, None)
    }

    /// Spawns `count` subprocess workers of `program` (`<program> worker` over stdio).
    ///
    /// # Errors
    ///
    /// See [`FarmBackend::new`].
    pub fn spawn(program: &Path, count: usize) -> Result<Self, FarmError> {
        Self::new(&[], count, Some(program))
    }

    /// Number of workers still considered healthy.
    pub fn live_workers(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| w.conn.lock().is_ok_and(|conn| conn.is_some()))
            .count()
    }

    /// Total workers in the fleet (live or dead).
    pub fn fleet_size(&self) -> usize {
        self.workers.len()
    }

    /// A snapshot of the dispatch counters.
    pub fn stats(&self) -> FarmStats {
        FarmStats {
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            lanes_remote: self.lanes_remote.load(Ordering::Relaxed),
            lanes_local: self.lanes_local.load(Ordering::Relaxed),
        }
    }

    /// Sends one job to one worker and reads its results, holding the worker's lock for
    /// the round trip (the protocol is strictly alternating per connection).  On any
    /// failure the worker is marked dead before the error is returned.
    fn roundtrip(
        &self,
        slot: &WorkerSlot,
        requests: &[WireRequest],
    ) -> Result<Vec<SimResult>, FarmError> {
        let mut guard = match slot.conn.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                *guard = None;
                return Err(FarmError::WorkerDown(slot.name.clone()));
            }
        };
        let outcome = (|| -> Result<Vec<SimResult>, FarmError> {
            let conn = guard
                .as_mut()
                .ok_or_else(|| FarmError::WorkerDown(slot.name.clone()))?;
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            writeln!(
                conn.writer,
                "{}",
                encode_message(&Message::Batch {
                    id,
                    requests: requests.to_vec(),
                })
            )
            .map_err(|err| FarmError::Transport(slot.name.clone(), err.to_string()))?;
            conn.writer
                .flush()
                .map_err(|err| FarmError::Transport(slot.name.clone(), err.to_string()))?;
            let mut line = String::new();
            let read = conn
                .reader
                // slic-lint: allow(L1) -- the protocol is strictly alternating per connection, so the slot lock must span the write+read round trip; other workers use other slots and the read has a deadline.
                .read_line(&mut line)
                .map_err(|err| FarmError::Transport(slot.name.clone(), err.to_string()))?;
            if read == 0 {
                return Err(FarmError::WorkerDown(slot.name.clone()));
            }
            match decode_message(line.trim_end()) {
                Ok(Message::Results {
                    id: reply_id,
                    results,
                }) if reply_id == id && results.len() == requests.len() => results
                    .iter()
                    .map(|entry| {
                        entry
                            .decode()
                            .map_err(|err| FarmError::Protocol(slot.name.clone(), err.to_string()))
                    })
                    .collect(),
                Ok(other) => Err(FarmError::Protocol(
                    slot.name.clone(),
                    format!("expected results for batch {id}, got {other:?}"),
                )),
                Err(err) => Err(FarmError::Protocol(slot.name.clone(), err.to_string())),
            }
        })();
        if outcome.is_err() {
            // Health tracking: a worker that failed a round trip is never trusted again.
            // Dropping the connection also reaps a spawned subprocess.
            *guard = None;
        }
        outcome
    }
}

/// Completes the worker handshake on a fresh connection.
fn handshake(
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
    child: Option<Child>,
) -> Result<WorkerConn, WireError> {
    let mut conn = WorkerConn {
        reader: BufReader::new(reader),
        writer,
        child,
    };
    let mut line = String::new();
    conn.reader
        .read_line(&mut line)
        .map_err(|err| WireError::Malformed(format!("reading hello: {err}")))?;
    match decode_message(line.trim_end())? {
        Message::Hello(hello) => {
            hello.validate()?;
            Ok(conn)
        }
        other => Err(WireError::Malformed(format!(
            "expected hello, got {other:?}"
        ))),
    }
}

/// Lanes per dispatched job: small enough that a fleet interleaves on one engine batch,
/// large enough that the JSON framing stays noise.
fn job_lanes(total: usize, workers: usize) -> usize {
    total.div_ceil(workers.max(1) * 2).clamp(1, 16)
}

impl SimulationBackend for FarmBackend {
    fn name(&self) -> &str {
        "farm"
    }

    fn solve_batch(&self, requests: &[SimRequest]) -> Vec<SimResult> {
        if requests.is_empty() {
            return Vec::new();
        }
        // Encode up front; a lane that cannot travel (e.g. a custom technology outside
        // the worker-side catalogue) is solved by the in-process fallback below, so the
        // farm degrades to local execution instead of failing a run the local backend
        // would complete.
        let mut results: Vec<Option<SimResult>> = vec![None; requests.len()];
        let mut untransportable: Vec<usize> = Vec::new();
        let encoded: Vec<Option<WireRequest>> = requests
            .iter()
            .enumerate()
            .map(|(i, request)| match WireRequest::encode(request) {
                Ok(wire) => Some(wire),
                Err(_) => {
                    untransportable.push(i);
                    None
                }
            })
            .collect();

        // Cut the encodable lanes into jobs of contiguous runs.
        let lanes: Vec<usize> = (0..requests.len())
            .filter(|&i| encoded[i].is_some())
            .collect();
        let chunk = job_lanes(lanes.len(), self.workers.len());
        let queue = JobQueue::new(
            (0..lanes.len())
                .step_by(chunk.max(1))
                .map(|start| Job {
                    start,
                    end: (start + chunk).min(lanes.len()),
                    attempts: 0,
                })
                .collect(),
        );
        // A job that failed on more workers than exist is stranded: no point cycling it
        // through the fleet again; the local fallback owns it.
        let max_attempts = self.workers.len();
        let stranded: Mutex<Vec<Job>> = Mutex::new(Vec::new());
        let completed: Mutex<Vec<(Job, Vec<SimResult>)>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for slot in &self.workers {
                if !slot.conn.lock().is_ok_and(|conn| conn.is_some()) {
                    continue;
                }
                let queue = &queue;
                let stranded = &stranded;
                let completed = &completed;
                let lanes = &lanes;
                let encoded = &encoded;
                scope.spawn(move || {
                    while let Some(mut job) = queue.next() {
                        let wire: Vec<WireRequest> = lanes[job.start..job.end]
                            .iter()
                            // slic-lint: allow(P1) -- structural: `lanes` holds exactly the indices whose encoding succeeded.
                            .map(|&i| encoded[i].clone().expect("encodable lane"))
                            .collect();
                        match self.roundtrip(slot, &wire) {
                            Ok(solved) => {
                                self.jobs_completed.fetch_add(1, Ordering::Relaxed);
                                self.lanes_remote
                                    .fetch_add(solved.len() as u64, Ordering::Relaxed);
                                completed
                                    .lock()
                                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                                    .push((job, solved));
                                queue.done();
                            }
                            Err(err) => {
                                eprintln!(
                                    "slic farm: worker `{}` failed ({err}); failing its job over",
                                    slot.name
                                );
                                self.failovers.fetch_add(1, Ordering::Relaxed);
                                job.attempts += 1;
                                if job.attempts >= max_attempts {
                                    stranded
                                        .lock()
                                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                                        .push(job);
                                    queue.done();
                                } else {
                                    queue.requeue(job);
                                }
                                // This worker is dead; its dispatcher retires.
                                return;
                            }
                        }
                    }
                });
            }
        });

        // Anything the fleet could not finish — stranded jobs, or a queue abandoned when
        // the last worker died — is solved in-process so the run still completes.
        let mut leftovers = stranded
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        leftovers.extend(queue.drain());
        for job in &leftovers {
            let subset: Vec<SimRequest> = lanes[job.start..job.end]
                .iter()
                .map(|&i| requests[i].clone())
                .collect();
            let solved = self.fallback.solve_batch(&subset);
            self.lanes_local
                .fetch_add(solved.len() as u64, Ordering::Relaxed);
            for (&lane, result) in lanes[job.start..job.end].iter().zip(solved) {
                results[lane] = Some(result);
            }
        }
        let completed = completed
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for (job, solved) in completed {
            for (&lane, result) in lanes[job.start..job.end].iter().zip(solved) {
                results[lane] = Some(result);
            }
        }
        if !untransportable.is_empty() {
            let subset: Vec<SimRequest> = untransportable
                .iter()
                .map(|&i| requests[i].clone())
                .collect();
            let solved = self.fallback.solve_batch(&subset);
            self.lanes_local
                .fetch_add(solved.len() as u64, Ordering::Relaxed);
            for (&lane, result) in untransportable.iter().zip(solved) {
                results[lane] = Some(result);
            }
        }
        results
            .into_iter()
            // slic-lint: allow(P1) -- structural: every lane is either untransportable, stranded, or completed, and each path fills its slot.
            .map(|r| r.expect("every lane resolved"))
            .collect()
    }
}

impl Drop for FarmBackend {
    fn drop(&mut self) {
        for slot in &self.workers {
            // A poisoned slot's connection state is unknown; drop it without the
            // orderly shutdown message (the Drop on WorkerConn still reaps a child).
            let mut guard = match slot.conn.lock() {
                Ok(guard) => guard,
                Err(poisoned) => {
                    *poisoned.into_inner() = None;
                    continue;
                }
            };
            if let Some(conn) = guard.as_mut() {
                // Orderly shutdown; a worker that already died ignores us.
                let _ = writeln!(conn.writer, "{}", encode_message(&Message::Shutdown));
                let _ = conn.writer.flush();
                if let Some(child) = &mut conn.child {
                    let _ = child.wait();
                    conn.child = None;
                }
            }
            *guard = None;
        }
    }
}
