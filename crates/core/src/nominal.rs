//! The nominal characterization study (Fig. 6 of the paper).
//!
//! For a cell arc in the *target* technology, three methods are compared as a function of
//! the number of training simulations `k`:
//!
//! * **Proposed model + Bayesian inference** — `k` Latin-hypercube conditions are simulated,
//!   the compact model is extracted by MAP with the historically learned prior and
//!   precisions, and timing everywhere else is predicted by the model;
//! * **Proposed model + LSE** — the same `k` conditions, plain least squares, no prior;
//! * **Lookup table** — the `k` simulations are spent on a characterization grid and timing
//!   elsewhere is interpolated.
//!
//! Accuracy is measured against a dense random-validation baseline (the paper uses 1000
//! points).  From the resulting error-vs-`k` curves the study also derives the paper's
//! headline number: how many times fewer simulations the proposed method needs to reach the
//! same accuracy as the LUT.

use crate::report::markdown_table;
use serde::{Deserialize, Serialize};
use slic_bayes::{
    HistoricalDatabase, MapExtractor, PrecisionConfig, PrecisionModel, PriorBuilder, TimingMetric,
};
use slic_cells::{Cell, TimingArc};
use slic_device::{ProcessSample, TechnologyNode};
use slic_lut::LutBuilder;
use slic_spice::{CharacterizationEngine, InputPoint, TransientConfig};
use slic_stats::distance::mean_relative_error_percent;
use slic_timing_model::{LeastSquaresFitter, TimingParams, TimingSample};
use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The characterization method a result row belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MethodKind {
    /// Compact model extracted by MAP with the historical prior ("Proposed Model + Bayesian
    /// Inference").
    ProposedBayesian,
    /// Compact model extracted by plain least squares ("Proposed Model + LSE").
    ProposedLse,
    /// Lookup-table characterization with interpolation.
    Lut,
}

impl MethodKind {
    /// All methods in presentation order.
    pub const ALL: [MethodKind; 3] = [
        MethodKind::ProposedBayesian,
        MethodKind::ProposedLse,
        MethodKind::Lut,
    ];
}

impl fmt::Display for MethodKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MethodKind::ProposedBayesian => f.write_str("Proposed Model + Bayesian Inference"),
            MethodKind::ProposedLse => f.write_str("Proposed Model + LSE"),
            MethodKind::Lut => f.write_str("Lookup Table"),
        }
    }
}

/// An error-vs-training-samples curve for one method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodCurve {
    /// The method this curve belongs to.
    pub method: MethodKind,
    /// Training sample counts (the x axis of Fig. 6).
    pub training_counts: Vec<usize>,
    /// Mean relative prediction error against the baseline, in percent, per count.
    pub errors_percent: Vec<f64>,
    /// Transient simulations actually spent per count (equals the training count for the
    /// model-based methods; may be smaller for the LUT when the budget does not factor).
    pub simulations: Vec<u64>,
}

impl MethodCurve {
    /// The smallest number of simulations at which the curve reaches `target_percent` error,
    /// if it ever does.
    pub fn simulations_to_reach(&self, target_percent: f64) -> Option<u64> {
        self.errors_percent
            .iter()
            .zip(&self.simulations)
            .filter(|(err, _)| **err <= target_percent)
            .map(|(_, sims)| *sims)
            .min()
    }

    /// The error achieved at the largest training count.
    pub fn final_error(&self) -> f64 {
        *self
            .errors_percent
            .last()
            .expect("curve has at least one point")
    }
}

/// Configuration of the nominal study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NominalStudyConfig {
    /// Number of random validation points that define the baseline (1000 in the paper).
    pub validation_points: usize,
    /// Training sample counts to sweep (the paper uses 1, 2, 3, 5, 10, 20, 50, 100).
    pub training_counts: Vec<usize>,
    /// RNG seed for validation and training-point sampling.
    pub seed: u64,
    /// Transient solver settings for both baseline and training simulations.
    pub transient: TransientConfig,
    /// Whether the prior is restricted to records of the same cell kind (paper behaviour)
    /// or pooled across all cells.
    pub cell_kind_matched_prior: bool,
}

impl Default for NominalStudyConfig {
    fn default() -> Self {
        Self {
            validation_points: 1000,
            training_counts: vec![1, 2, 3, 5, 10, 20, 50, 100],
            seed: 20150313,
            transient: TransientConfig::fast(),
            cell_kind_matched_prior: true,
        }
    }
}

impl NominalStudyConfig {
    /// A reduced configuration for unit tests and quick demos.
    pub fn quick() -> Self {
        Self {
            validation_points: 60,
            training_counts: vec![2, 5, 20],
            ..Self::default()
        }
    }
}

/// The outcome of a nominal study for one (cell, arc, metric).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NominalStudyResult {
    /// The metric that was characterized.
    pub metric: TimingMetric,
    /// The error curves, one per method.
    pub curves: Vec<MethodCurve>,
    /// Simulations spent establishing the validation baseline.
    pub baseline_simulations: u64,
}

impl NominalStudyResult {
    /// The curve of one method.
    ///
    /// # Panics
    ///
    /// Panics if the method was not part of the study (all three always are).
    pub fn curve(&self, method: MethodKind) -> &MethodCurve {
        self.curves
            .iter()
            .find(|c| c.method == method)
            .expect("method present in study")
    }

    /// Speedup of `fast` over `slow` at matched accuracy: the ratio of simulations each
    /// method needs to reach the given target error.  Returns `None` when either method
    /// never reaches the target.
    pub fn speedup_at(
        &self,
        target_percent: f64,
        fast: MethodKind,
        slow: MethodKind,
    ) -> Option<f64> {
        let fast_sims = self.curve(fast).simulations_to_reach(target_percent)? as f64;
        let slow_sims = self.curve(slow).simulations_to_reach(target_percent)? as f64;
        Some(slow_sims / fast_sims)
    }

    /// The paper's headline comparison: the speedup of the Bayesian method over the LUT at
    /// the accuracy the Bayesian method achieves with its largest training budget (clamped
    /// to no tighter than the LUT's own best accuracy so the ratio is defined).
    pub fn headline_speedup(&self) -> Option<f64> {
        let target = self
            .curve(MethodKind::ProposedBayesian)
            .final_error()
            .max(self.curve(MethodKind::Lut).final_error() * 1.0001)
            .max(1e-9);
        self.speedup_at(target, MethodKind::ProposedBayesian, MethodKind::Lut)
    }

    /// Renders the error table as Markdown (rows = training counts, columns = methods).
    pub fn to_markdown(&self) -> String {
        let counts = &self.curves[0].training_counts;
        let mut headers = vec!["training samples".to_string()];
        headers.extend(self.curves.iter().map(|c| format!("{} (%)", c.method)));
        let rows: Vec<Vec<String>> = counts
            .iter()
            .enumerate()
            .map(|(i, k)| {
                let mut row = vec![k.to_string()];
                row.extend(
                    self.curves
                        .iter()
                        .map(|c| format!("{:.2}", c.errors_percent[i])),
                );
                row
            })
            .collect();
        markdown_table(&headers, &rows)
    }
}

/// The nominal characterization study runner.
#[derive(Debug, Clone)]
pub struct NominalStudy<'a> {
    engine: CharacterizationEngine,
    database: &'a HistoricalDatabase,
    config: NominalStudyConfig,
}

impl<'a> NominalStudy<'a> {
    /// Creates a study of `target` using the archived `database` of historical fits.
    ///
    /// # Panics
    ///
    /// Panics if `config.transient` is invalid; use [`try_new`](Self::try_new) to handle
    /// that as an error.
    pub fn new(
        target: TechnologyNode,
        database: &'a HistoricalDatabase,
        config: NominalStudyConfig,
    ) -> Self {
        Self::try_new(target, database, config)
            .expect("study transient configuration must be valid")
    }

    /// Creates a study of `target`, surfacing an invalid transient configuration as an
    /// error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the engine's [`slic_spice::ConfigError`] when `config.transient` fails
    /// validation.
    pub fn try_new(
        target: TechnologyNode,
        database: &'a HistoricalDatabase,
        config: NominalStudyConfig,
    ) -> Result<Self, slic_spice::ConfigError> {
        Ok(Self::with_engine(
            CharacterizationEngine::with_config(target, config.transient)?,
            database,
            config,
        ))
    }

    /// Creates a study running on an existing engine — the reusable-stage entry point for
    /// library-scale pipelines, which share one engine (counter, cache) across studies.
    ///
    /// The engine's transient configuration takes precedence over `config.transient`.
    pub fn with_engine(
        engine: CharacterizationEngine,
        database: &'a HistoricalDatabase,
        config: NominalStudyConfig,
    ) -> Self {
        Self {
            engine,
            database,
            config,
        }
    }

    /// The engine bound to the target technology.
    pub fn engine(&self) -> &CharacterizationEngine {
        &self.engine
    }

    /// The configuration in use.
    pub fn config(&self) -> &NominalStudyConfig {
        &self.config
    }

    /// Builds the MAP extractor (prior + precisions) for one metric and cell.
    pub fn map_extractor(&self, cell: Cell, metric: TimingMetric) -> MapExtractor {
        let cell_kind = if self.config.cell_kind_matched_prior {
            Some(cell.kind().name())
        } else {
            None
        };
        let prior = PriorBuilder::new()
            .build(self.database, metric, cell_kind)
            .or_else(|_| PriorBuilder::new().build(self.database, metric, None))
            .expect("historical database must contain records for the requested metric");
        let precision = PrecisionModel::learn(
            self.database,
            metric,
            &self.engine.input_space(),
            PrecisionConfig::default(),
        );
        MapExtractor::new(prior, precision)
    }

    /// Runs the full study for one arc and metric.
    pub fn run(&self, cell: Cell, arc: &TimingArc, metric: TimingMetric) -> NominalStudyResult {
        let nominal = ProcessSample::nominal();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let space = self.engine.input_space();

        // Baseline: dense random validation set simulated directly.
        let validation = space.sample_uniform(&mut rng, self.config.validation_points);
        let counter_before = self.engine.simulation_count();
        let reference_measurements = self.engine.sweep_nominal(cell, arc, &validation);
        let baseline_simulations = self.engine.simulation_count() - counter_before;
        let reference: Vec<f64> = reference_measurements
            .iter()
            .map(|m| match metric {
                TimingMetric::Delay => m.delay.value(),
                TimingMetric::OutputSlew => m.output_slew.value(),
            })
            .collect();
        let validation_ieffs: Vec<f64> = validation
            .iter()
            .map(|p| self.engine.ieff(arc, p, &nominal).value())
            .collect();

        let extractor = self.map_extractor(cell, metric);
        let lut_builder = LutBuilder::new(&self.engine);
        let fitter = LeastSquaresFitter::new();

        let mut curves: Vec<MethodCurve> = MethodKind::ALL
            .iter()
            .map(|&method| MethodCurve {
                method,
                training_counts: self.config.training_counts.clone(),
                errors_percent: Vec::new(),
                simulations: Vec::new(),
            })
            .collect();

        for &k in &self.config.training_counts {
            // Shared training conditions for both model-based methods.
            let mut training_rng =
                StdRng::seed_from_u64(self.config.seed ^ (k as u64).wrapping_mul(0x9E37_79B9));
            let training_points = space.sample_latin_hypercube(&mut training_rng, k);
            let before = self.engine.simulation_count();
            let training_measurements = self.engine.sweep_nominal(cell, arc, &training_points);
            let model_simulations = self.engine.simulation_count() - before;
            let training_samples: Vec<TimingSample> = training_points
                .iter()
                .zip(&training_measurements)
                .map(|(p, m)| {
                    let observed = match metric {
                        TimingMetric::Delay => m.delay,
                        TimingMetric::OutputSlew => m.output_slew,
                    };
                    TimingSample::new(*p, self.engine.ieff(arc, p, &nominal), observed)
                })
                .collect();

            // Proposed + Bayesian.
            let map_fit = extractor.extract(&training_samples);
            self.push_model_error(
                &mut curves,
                MethodKind::ProposedBayesian,
                &map_fit.params,
                &validation,
                &validation_ieffs,
                &reference,
                model_simulations,
            );

            // Proposed + LSE.
            let lse_fit = fitter.fit(&training_samples);
            self.push_model_error(
                &mut curves,
                MethodKind::ProposedLse,
                &lse_fit.params,
                &validation,
                &validation_ieffs,
                &reference,
                model_simulations,
            );

            // LUT with the same simulation budget.
            let before = self.engine.simulation_count();
            let lut = lut_builder.build_nominal_with_budget(cell, arc, k);
            let lut_simulations = self.engine.simulation_count() - before;
            let lut_predictions: Vec<f64> = validation
                .iter()
                .map(|p| {
                    let m = lut.predict(p);
                    match metric {
                        TimingMetric::Delay => m.delay.value(),
                        TimingMetric::OutputSlew => m.output_slew.value(),
                    }
                })
                .collect();
            let lut_error = mean_relative_error_percent(&lut_predictions, &reference);
            let lut_curve = curves
                .iter_mut()
                .find(|c| c.method == MethodKind::Lut)
                .expect("curve exists");
            lut_curve.errors_percent.push(lut_error);
            lut_curve.simulations.push(lut_simulations);
        }

        NominalStudyResult {
            metric,
            curves,
            baseline_simulations,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_model_error(
        &self,
        curves: &mut [MethodCurve],
        method: MethodKind,
        params: &TimingParams,
        validation: &[InputPoint],
        validation_ieffs: &[f64],
        reference: &[f64],
        simulations: u64,
    ) {
        let predictions: Vec<f64> = validation
            .iter()
            .zip(validation_ieffs)
            .map(|(p, ieff)| params.evaluate(p, slic_units::Amperes(*ieff)).value())
            .collect();
        let error = mean_relative_error_percent(&predictions, reference);
        let curve = curves
            .iter_mut()
            .find(|c| c.method == method)
            .expect("curve exists");
        curve.errors_percent.push(error);
        curve.simulations.push(simulations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::historical::{HistoricalLearner, HistoricalLearningConfig};
    use slic_cells::{CellKind, DriveStrength, Library, Transition};

    fn learned_database() -> HistoricalDatabase {
        let config = HistoricalLearningConfig {
            grid_levels: (3, 3, 2),
            transient: TransientConfig::fast(),
        };
        HistoricalLearner::new(config)
            .learn(
                &[TechnologyNode::n16_finfet(), TechnologyNode::n14_finfet()],
                &Library::paper_trio(),
            )
            .database
    }

    #[test]
    fn study_produces_three_monotone_ish_curves() {
        let db = learned_database();
        let study = NominalStudy::new(
            TechnologyNode::target_14nm(),
            &db,
            NominalStudyConfig::quick(),
        );
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let result = study.run(cell, &arc, TimingMetric::Delay);

        assert_eq!(result.curves.len(), 3);
        assert_eq!(result.baseline_simulations, 60);
        for curve in &result.curves {
            assert_eq!(curve.errors_percent.len(), 3);
            assert!(curve
                .errors_percent
                .iter()
                .all(|e| e.is_finite() && *e >= 0.0));
            // Errors at the largest budget are better than (or close to) the smallest.
            assert!(
                curve.final_error() <= curve.errors_percent[0] + 2.0,
                "{}",
                curve.method
            );
        }
        // The Bayesian curve at k = 2 must already be decent thanks to the prior.
        let bayes = result.curve(MethodKind::ProposedBayesian);
        assert!(
            bayes.errors_percent[0] < 15.0,
            "k=2 error = {}",
            bayes.errors_percent[0]
        );
        // And it must beat the LUT at the same tiny budget.
        let lut = result.curve(MethodKind::Lut);
        assert!(bayes.errors_percent[0] < lut.errors_percent[0]);
        let text = result.to_markdown();
        assert!(text.contains("Lookup Table"));
    }

    #[test]
    fn speedup_accounting_is_consistent() {
        let curve_fast = MethodCurve {
            method: MethodKind::ProposedBayesian,
            training_counts: vec![2, 5, 10],
            errors_percent: vec![6.0, 4.0, 3.0],
            simulations: vec![2, 5, 10],
        };
        let curve_slow = MethodCurve {
            method: MethodKind::Lut,
            training_counts: vec![2, 5, 10],
            errors_percent: vec![40.0, 12.0, 5.0],
            simulations: vec![2, 4, 9],
        };
        let result = NominalStudyResult {
            metric: TimingMetric::Delay,
            curves: vec![curve_fast, curve_slow],
            baseline_simulations: 100,
        };
        assert_eq!(
            result.curve(MethodKind::Lut).simulations_to_reach(5.0),
            Some(9)
        );
        assert_eq!(
            result
                .curve(MethodKind::ProposedBayesian)
                .simulations_to_reach(5.0),
            Some(5)
        );
        assert!(
            (result
                .speedup_at(5.0, MethodKind::ProposedBayesian, MethodKind::Lut)
                .unwrap()
                - 1.8)
                .abs()
                < 1e-12
        );
        assert!(result
            .speedup_at(0.1, MethodKind::ProposedBayesian, MethodKind::Lut)
            .is_none());
    }
}
