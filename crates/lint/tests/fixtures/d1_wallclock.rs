//! D1 wall-clock carve-out fixture: the shape of the observability crate's clock.
//! Under `d1_wallclock_exempt` the `Instant`/`SystemTime` reads below are legal, but the
//! `HashMap` and `thread::current()` uses must still fire — the exemption spares clocks,
//! not determinism at large.

use std::collections::HashMap;
use std::time::{Instant, SystemTime};

pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    pub fn now_ns(&self) -> u64 {
        let _wall = SystemTime::now();
        self.origin.elapsed().as_nanos() as u64
    }

    pub fn still_denied(&self) -> usize {
        let table: HashMap<u64, u64> = HashMap::new();
        let _who = std::thread::current();
        table.len()
    }
}
