//! Simulation-count cost model and speedup decomposition.
//!
//! The paper's complexity argument (end of Section IV): conventional statistical LUT
//! characterization costs `O(NLUT · Nsample)` SPICE runs per arc, the proposed flow costs
//! `O(k · Nsample)`, and if the historical libraries still need to be characterized once the
//! amortized cost is `O(k · Nsample + NTech · NLUT)`.  Section V further decomposes the 15×
//! nominal speedup into ≈6× from the compact model itself and ≈2.5× from the Bayesian
//! prior.  This module provides those formulas plus the decomposition helper used by the
//! cost bench.

use serde::{Deserialize, Serialize};

/// Inputs of the cost model for one timing arc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Number of LUT grid conditions a conventional flow characterizes (`NLUT`).
    pub n_lut: usize,
    /// Number of training conditions the proposed flow needs (`k`).
    pub k: usize,
    /// Number of process-variation seeds (`Nsample`).
    pub n_sample: usize,
    /// Number of historical technologies that would need re-characterization (`NTech`).
    pub n_tech: usize,
}

impl CostModel {
    /// Creates a cost model.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    pub fn new(n_lut: usize, k: usize, n_sample: usize, n_tech: usize) -> Self {
        assert!(
            n_lut > 0 && k > 0 && n_sample > 0 && n_tech > 0,
            "all cost-model counts must be positive"
        );
        Self {
            n_lut,
            k,
            n_sample,
            n_tech,
        }
    }

    /// The paper's representative operating point: a 60-condition LUT, 4 training
    /// conditions, 1000 Monte Carlo seeds and 6 historical technologies.
    pub fn paper_defaults() -> Self {
        Self::new(60, 4, 1000, 6)
    }

    /// Simulations of the conventional statistical LUT flow: `NLUT · Nsample`.
    pub fn lut_cost(&self) -> u64 {
        (self.n_lut * self.n_sample) as u64
    }

    /// Simulations of the proposed flow when historical characterizations already exist:
    /// `k · Nsample`.
    pub fn proposed_cost(&self) -> u64 {
        (self.k * self.n_sample) as u64
    }

    /// Simulations of the proposed flow including one-time re-characterization of the
    /// historical libraries: `k · Nsample + NTech · NLUT`.
    pub fn proposed_cost_with_history(&self) -> u64 {
        self.proposed_cost() + (self.n_tech * self.n_lut) as u64
    }

    /// Speedup over the LUT flow when the historical data already exists.
    pub fn speedup(&self) -> f64 {
        self.lut_cost() as f64 / self.proposed_cost() as f64
    }

    /// Speedup over the LUT flow when the historical characterization cost is charged to
    /// this arc as well.
    pub fn speedup_with_history(&self) -> f64 {
        self.lut_cost() as f64 / self.proposed_cost_with_history() as f64
    }
}

/// Decomposition of a measured nominal speedup into its two ingredients, mirroring the
/// Section V claim "6× from the timing model, an extra 2.5× from the Bayesian inference".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupDecomposition {
    /// Simulations the LUT needs to reach the target accuracy.
    pub lut_simulations: u64,
    /// Simulations the compact model with plain LSE needs.
    pub lse_simulations: u64,
    /// Simulations the compact model with the Bayesian prior needs.
    pub bayesian_simulations: u64,
}

impl SpeedupDecomposition {
    /// Contribution of the compact model alone: `LUT / LSE`.
    pub fn model_contribution(&self) -> f64 {
        self.lut_simulations as f64 / self.lse_simulations as f64
    }

    /// Additional contribution of the Bayesian prior: `LSE / Bayesian`.
    pub fn bayesian_contribution(&self) -> f64 {
        self.lse_simulations as f64 / self.bayesian_simulations as f64
    }

    /// Total speedup `LUT / Bayesian` (the product of the two contributions).
    pub fn total(&self) -> f64 {
        self.lut_simulations as f64 / self.bayesian_simulations as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_operating_point_reproduces_order_of_magnitude() {
        let cost = CostModel::paper_defaults();
        assert_eq!(cost.lut_cost(), 60_000);
        assert_eq!(cost.proposed_cost(), 4_000);
        assert_eq!(cost.proposed_cost_with_history(), 4_360);
        assert!((cost.speedup() - 15.0).abs() < 1e-12);
        assert!(cost.speedup_with_history() > 10.0 && cost.speedup_with_history() < 15.0);
    }

    #[test]
    fn speedup_scales_with_training_count() {
        let cheap = CostModel::new(60, 2, 1000, 6);
        let pricey = CostModel::new(60, 20, 1000, 6);
        assert!(cheap.speedup() > pricey.speedup());
        assert!((cheap.speedup() - 30.0).abs() < 1e-12);
        assert!((pricey.speedup() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_counts_rejected() {
        let _ = CostModel::new(0, 4, 1000, 6);
    }

    #[test]
    fn decomposition_multiplies_out() {
        let d = SpeedupDecomposition {
            lut_simulations: 60,
            lse_simulations: 10,
            bayesian_simulations: 4,
        };
        assert!((d.model_contribution() - 6.0).abs() < 1e-12);
        assert!((d.bayesian_contribution() - 2.5).abs() < 1e-12);
        assert!((d.total() - 15.0).abs() < 1e-12);
        assert!(
            (d.model_contribution() * d.bayesian_contribution() - d.total()).abs() < 1e-12,
            "contributions must compose multiplicatively"
        );
    }
}
