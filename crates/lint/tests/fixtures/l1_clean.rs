//! L1 must-not-fire: the guard is dropped before the blocking call, or its scope
//! closes first.

fn drain_dropped(queue: &std::sync::Mutex<Vec<u32>>, solver: &Solver) {
    let mut guard = queue.lock().unwrap_or_else(|p| p.into_inner());
    let batch = guard.split_off(0);
    drop(guard);
    let _results = solver.solve_batch(&batch);
}

fn drain_scoped(queue: &std::sync::Mutex<Vec<u32>>, solver: &Solver) {
    let mut batch = Vec::new();
    {
        let mut guard = queue.lock().unwrap_or_else(|p| p.into_inner());
        batch.append(&mut *guard);
    }
    let _results = solver.solve_batch(&batch);
}
