//! Regression test for run-to-run determinism (lint rule D1's runtime contract).
//!
//! The characterization pipeline used to iterate `HashMap`s when assembling unit
//! results, Liberty groups, and cache shards, so two identical runs could emit
//! differently-ordered (though semantically equal) artifacts.  After the BTree
//! conversion sweep, identical configurations must produce *byte-identical*
//! artifacts: equality of parsed structures is not enough, because downstream
//! consumers diff, hash, and cache the serialized files themselves.

use slic_pipeline::{PipelineRunner, RunConfig};

fn quick_config() -> RunConfig {
    RunConfig {
        seed: Some(7),
        ..RunConfig::default()
    }
}

/// One complete cold run: learn, characterize, serialize, export.
fn run_once() -> (String, String) {
    let resolved = quick_config().resolve().expect("quick config resolves");
    let runner = PipelineRunner::new(resolved).expect("runner builds");
    let (_, artifact) = runner.run().expect("pipeline runs");
    let json = artifact.to_json().expect("artifact serializes");
    let liberty = artifact
        .characterized
        .to_liberty(runner.engine(), runner.config().export_grid)
        .expect("fitted arcs exist");
    (json, liberty)
}

#[test]
fn repeated_runs_emit_byte_identical_artifacts() {
    let (first_json, first_liberty) = run_once();
    let (second_json, second_liberty) = run_once();

    assert_eq!(
        first_json, second_json,
        "two cold runs of the same seeded config must serialize identically"
    );
    assert_eq!(
        first_liberty, second_liberty,
        "Liberty export must not depend on iteration order"
    );
}
