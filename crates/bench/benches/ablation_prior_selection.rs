//! Ablation A2 (Section IV bias–variance discussion): which historical technologies should
//! contribute to the prior?  Matched-flavor nodes give a sharper, better-centred prior;
//! mismatched nodes bias it; pooling everything sits in between.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use slic::prelude::*;
use slic::report::markdown_table;
use slic_bench::{banner, bench_historical_db};

/// Validation error of a two-simulation MAP extraction with the given prior source.
fn k2_error(
    engine: &CharacterizationEngine,
    cell: Cell,
    arc: &TimingArc,
    db: &HistoricalDatabase,
    validation: &[(InputPoint, f64, Amperes)],
) -> f64 {
    let prior = PriorBuilder::new()
        .build(db, TimingMetric::Delay, Some(cell.kind().name()))
        .expect("delay records for the cell kind");
    let precision = PrecisionModel::learn(
        db,
        TimingMetric::Delay,
        &engine.input_space(),
        PrecisionConfig::default(),
    );
    let extractor = MapExtractor::new(prior, precision);
    let nominal = ProcessSample::nominal();
    let mut rng = StdRng::seed_from_u64(77);
    let points = engine.input_space().sample_latin_hypercube(&mut rng, 2);
    let samples: Vec<TimingSample> = points
        .iter()
        .map(|p| {
            let m = engine.simulate_nominal(cell, arc, p);
            TimingSample::new(*p, engine.ieff(arc, p, &nominal), m.delay)
        })
        .collect();
    let fit = extractor.extract(&samples);
    let errors: Vec<f64> = validation
        .iter()
        .map(|(p, reference, ieff)| {
            100.0 * (fit.params.evaluate(p, *ieff).value() - reference).abs() / reference
        })
        .collect();
    errors.iter().sum::<f64>() / errors.len() as f64
}

fn regenerate(db: &HistoricalDatabase) -> (CharacterizationEngine, HistoricalDatabase) {
    banner(
        "Ablation A2",
        "Prior source selection for the 14-nm target: matched FinFET vs mismatched planar vs pooled history",
    );
    let engine =
        CharacterizationEngine::with_config(TechnologyNode::target_14nm(), TransientConfig::fast())
            .expect("valid transient configuration");
    let cell = Cell::new(CellKind::Nor2, DriveStrength::X1);
    let arc = TimingArc::new(cell, 0, Transition::Fall);
    let nominal = ProcessSample::nominal();
    let mut rng = StdRng::seed_from_u64(13);
    let validation: Vec<(InputPoint, f64, Amperes)> = engine
        .input_space()
        .sample_uniform(&mut rng, 200)
        .into_iter()
        .map(|p| {
            let reference = engine.simulate_nominal(cell, &arc, &p).delay.value();
            (p, reference, engine.ieff(&arc, &p, &nominal))
        })
        .collect();

    let matched = db.select_technologies(&["hist-16nm-finfet", "hist-14nm-finfet"]);
    let mismatched = db.select_technologies(&["hist-45nm-bulk", "hist-32nm-soi"]);
    let headers: Vec<String> = [
        "prior source",
        "historical records",
        "delay error @ k=2 (%)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for (label, subset) in [
        ("matched FinFET nodes", &matched),
        ("mismatched planar nodes", &mismatched),
        ("all historical nodes", db),
    ] {
        let err = k2_error(&engine, cell, &arc, subset, &validation);
        rows.push(vec![
            label.to_string(),
            subset.len().to_string(),
            format!("{err:.2}"),
        ]);
    }
    println!("{}", markdown_table(&headers, &rows));
    println!("(paper: historical libraries sharing the target's process choices give the most useful prior)");
    (engine, matched)
}

fn bench(c: &mut Criterion) {
    let db = bench_historical_db(&TechnologyNode::historical_suite());
    let (_engine, matched) = regenerate(&db);
    c.bench_function("ablation_prior_learning", |b| {
        b.iter(|| {
            PriorBuilder::new()
                .build(&matched, TimingMetric::Delay, Some("NOR2"))
                .expect("records present")
        })
    });
}

criterion_group! {
    name = benches;
    config = slic_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
