//! Broker integration tests: real TCP transport against in-process worker serve loops,
//! including failover when a worker dies mid-run and local fallback when the whole fleet
//! is gone.  Equality is always asserted bitwise against the default local backend — the
//! farm must be a pure deployment change, never a numerical one.

use slic_cells::{Cell, CellKind, DriveStrength, TimingArc, Transition};
use slic_device::TechnologyNode;
use slic_farm::{serve_listener, FarmBackend, FarmTuning, ServeOutcome, WorkerOptions};
use slic_spice::{
    CharacterizationEngine, InMemorySimCache, InputPoint, SimulationCache, TransientConfig,
};
use slic_units::{Farads, Seconds, Volts};
use std::net::TcpListener;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Starts a worker serve loop on an ephemeral port; returns its address and join handle.
fn spawn_tcp_worker(name: &str, max_batches: Option<u64>) -> (String, JoinHandle<ServeOutcome>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
    let address = listener.local_addr().expect("bound address").to_string();
    let options = WorkerOptions {
        name: name.to_string(),
        max_batches,
        ..WorkerOptions::default()
    };
    let handle =
        std::thread::spawn(move || serve_listener(&listener, &options).expect("serve loop io"));
    (address, handle)
}

/// Millisecond-scale backoff so tests that exercise worker death do not pay the
/// production re-dial schedule against a listener that is gone for good.
fn fast_tuning() -> FarmTuning {
    FarmTuning {
        reconnect_attempts: 2,
        backoff_base_ms: 1,
        backoff_cap_ms: 4,
        ..FarmTuning::default()
    }
}

fn engine() -> CharacterizationEngine {
    CharacterizationEngine::with_config(TechnologyNode::n14_finfet(), TransientConfig::fast())
        .expect("fast preset validates")
}

fn inv_fall() -> (Cell, TimingArc) {
    let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
    (cell, TimingArc::new(cell, 0, Transition::Fall))
}

fn grid(n: usize) -> Vec<InputPoint> {
    (0..n)
        .map(|i| {
            InputPoint::new(
                Seconds::from_picoseconds(1.0 + 0.37 * i as f64),
                Farads::from_femtofarads(0.5 + 0.11 * i as f64),
                Volts(0.7 + 0.003 * (i % 40) as f64),
            )
        })
        .collect()
}

#[test]
fn two_worker_farm_is_bitwise_identical_to_local_and_pays_each_key_once() {
    let (addr_a, handle_a) = spawn_tcp_worker("a", None);
    let (addr_b, handle_b) = spawn_tcp_worker("b", None);
    let farm = Arc::new(FarmBackend::connect(&[addr_a, addr_b]).expect("fleet connects"));
    assert_eq!(farm.live_workers(), 2);

    let cache = Arc::new(InMemorySimCache::new());
    let farmed = engine()
        .with_cache(cache.clone())
        .with_backend(farm.clone());
    let local = engine();
    let (cell, arc) = inv_fall();
    let points = grid(24);

    let remote = farmed.sweep_nominal(cell, &arc, &points);
    let reference = local.sweep_nominal(cell, &arc, &points);
    assert_eq!(remote, reference, "farm lanes must be bitwise local lanes");
    assert_eq!(farmed.simulation_count(), 24);
    assert_eq!(cache.misses(), 24, "every unique coordinate paid once");

    // Warm replay: everything from the broker-side cache, the fleet is not consulted.
    let before = farm.stats();
    let replay = farmed.sweep_nominal(cell, &arc, &points);
    assert_eq!(replay, reference);
    assert_eq!(farmed.simulation_count(), 24, "replay pays nothing");
    assert_eq!(farm.stats(), before, "replay dispatches nothing");
    assert!(before.lanes_remote >= 24, "the fleet solved the cold run");
    assert_eq!(before.lanes_local, 0, "no fallback was needed");

    // Orderly teardown: dropping the backend shuts both serve loops down.
    drop(farmed);
    drop(farm);
    assert_eq!(handle_a.join().expect("worker a"), ServeOutcome::Shutdown);
    assert_eq!(handle_b.join().expect("worker b"), ServeOutcome::Shutdown);
}

#[test]
fn killing_a_worker_mid_run_fails_over_and_preserves_bitwise_results() {
    // Worker `b` dies abruptly after two batches — the deterministic stand-in for
    // `kill -9` mid-batch: it reads its third batch and drops the connection without
    // replying.
    let (addr_a, handle_a) = spawn_tcp_worker("a", None);
    let (addr_b, handle_b) = spawn_tcp_worker("b", Some(2));
    let farm = Arc::new(
        FarmBackend::with_tuning(&[addr_a, addr_b], 0, None, fast_tuning())
            .expect("fleet connects"),
    );

    let farmed = engine().with_backend(farm.clone());
    let local = engine();
    let (cell, arc) = inv_fall();
    let points = grid(96);

    let remote = farmed.sweep_batch(cell, &arc, &points, &slic_device::ProcessSample::nominal());
    let reference = local.sweep_batch(cell, &arc, &points, &slic_device::ProcessSample::nominal());
    assert_eq!(
        remote, reference,
        "a mid-run worker death must not change a single bit"
    );
    assert_eq!(handle_b.join().expect("worker b"), ServeOutcome::BatchLimit);
    assert_eq!(farm.live_workers(), 1, "the dead worker is tracked as dead");
    let stats = farm.stats();
    assert!(stats.failovers >= 1, "the orphaned job was failed over");
    assert_eq!(
        stats.lanes_remote + stats.lanes_local,
        96,
        "every lane was solved exactly once somewhere"
    );

    drop(farmed);
    drop(farm);
    assert_eq!(handle_a.join().expect("worker a"), ServeOutcome::Shutdown);
}

#[test]
fn a_fully_dead_fleet_falls_back_to_local_solving() {
    // The only worker dies on its very first batch.
    let (addr, handle) = spawn_tcp_worker("doomed", Some(0));
    let farm =
        Arc::new(FarmBackend::with_tuning(&[addr], 0, None, fast_tuning()).expect("connects"));
    let farmed = engine().with_backend(farm.clone());
    let local = engine();
    let (cell, arc) = inv_fall();
    let points = grid(8);
    let remote = farmed.sweep_batch(cell, &arc, &points, &slic_device::ProcessSample::nominal());
    let reference = local.sweep_batch(cell, &arc, &points, &slic_device::ProcessSample::nominal());
    assert_eq!(remote, reference);
    assert_eq!(farm.live_workers(), 0);
    let stats = farm.stats();
    assert_eq!(stats.lanes_remote, 0);
    assert_eq!(stats.lanes_local, 8, "the broker solved everything itself");
    assert_eq!(handle.join().expect("worker"), ServeOutcome::BatchLimit);
}

#[test]
fn a_custom_technology_outside_the_catalogue_degrades_to_local_solving() {
    use slic_device::TechnologyKind;
    // Same name as a catalogue node but a different node value: the wire must refuse to
    // send it (the worker would rebuild a different node by name), and the broker's
    // local fallback must solve it instead — matching what LocalBackend alone would do.
    let custom = TechnologyNode::n14_finfet().with_kind(TechnologyKind::Target);
    let (addr, handle) = spawn_tcp_worker("w", None);
    let farm = Arc::new(FarmBackend::connect(&[addr]).expect("connects"));
    let farmed = CharacterizationEngine::with_config(custom.clone(), TransientConfig::fast())
        .expect("fast preset validates")
        .with_backend(farm.clone());
    let local = CharacterizationEngine::with_config(custom, TransientConfig::fast())
        .expect("fast preset validates");
    let (cell, arc) = inv_fall();
    let points = grid(6);
    let seed = slic_device::ProcessSample::nominal();
    let remote = farmed.sweep_batch(cell, &arc, &points, &seed);
    let reference = local.sweep_batch(cell, &arc, &points, &seed);
    assert_eq!(remote, reference, "fallback must match the local backend");
    let stats = farm.stats();
    assert_eq!(stats.lanes_remote, 0, "nothing travelled");
    assert_eq!(stats.lanes_local, 6, "every lane was solved broker-side");
    assert_eq!(farm.live_workers(), 1, "the worker is healthy, just unused");
    drop(farmed);
    drop(farm);
    assert_eq!(handle.join().expect("worker"), ServeOutcome::Shutdown);
}

#[test]
fn incompatible_handshakes_are_rejected_at_connect_time() {
    // A fake "worker" that speaks a future kernel version.
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
    let address = listener.local_addr().expect("bound").to_string();
    let fake = std::thread::spawn(move || {
        use std::io::Write;
        let (mut stream, _) = listener.accept().expect("accept");
        let protocol = slic_farm::PROTOCOL_VERSION;
        let kernel = slic_spice::KERNEL_VERSION + 1;
        writeln!(
            stream,
            "{{\"type\":\"hello\",\"protocol\":{protocol},\"kernel\":\"{kernel:x}\",\"worker\":\"future\"}}"
        )
        .expect("write hello");
    });
    let err = FarmBackend::connect(&[address]).expect_err("mixed kernels must be rejected");
    assert!(err.to_string().contains("kernel"), "{err}");
    fake.join().expect("fake worker");

    let err = FarmBackend::new(&[], 0, None).expect_err("zero workers is not a farm");
    assert!(err.to_string().contains("at least one worker"), "{err}");
}
