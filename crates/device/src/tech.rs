//! Synthetic technology nodes.
//!
//! The paper learns its priors from six historical technologies "from 14-nm to 45-nm, with
//! both bulk-Silicon and SOI technologies and non-FINFET and FINFET technologies" and then
//! characterizes new 14-nm and 28-nm libraries.  The constructors in this module provide an
//! equivalent synthetic family: each node has its own nominal NMOS/PMOS virtual-source
//! parameters, supply range, parasitics and variation level, arranged so that
//!
//! * drive currents and capacitances scale plausibly from node to node, and
//! * the compact-timing-model parameters extracted from them land close to (but not exactly
//!   on) one another — the property Table I demonstrates and the prior-learning step relies
//!   on.
//!
//! The two `target_*` constructors intentionally perturb their parent node: they play the
//! role of the "unknown" new technology that the Bayesian flow must characterize from a
//! handful of simulations.

use crate::mosfet::{DeviceParams, Mosfet, Polarity};
use crate::variation::ProcessVariation;
use serde::{Deserialize, Serialize};
use slic_units::{Farads, Volts};

/// Whether a node is used as historical training data or as the characterization target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TechnologyKind {
    /// A previously characterized library; contributes to the prior.
    Historical,
    /// The new technology being characterized.
    Target,
}

/// Structural / substrate flavor of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProcessFlavor {
    /// `true` for FinFET devices, `false` for planar.
    pub finfet: bool,
    /// `true` for silicon-on-insulator, `false` for bulk silicon.
    pub soi: bool,
    /// `true` for a low-power (high-Vt, low-leakage) process variant.
    pub low_power: bool,
}

impl ProcessFlavor {
    /// Convenience constructor.
    pub fn new(finfet: bool, soi: bool, low_power: bool) -> Self {
        Self {
            finfet,
            soi,
            low_power,
        }
    }
}

/// A complete description of one technology node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechnologyNode {
    name: String,
    node_nm: u32,
    kind: TechnologyKind,
    flavor: ProcessFlavor,
    nmos: DeviceParams,
    pmos: DeviceParams,
    vdd_nominal: Volts,
    vdd_min: Volts,
    vdd_max: Volts,
    cell_parasitic_cap: Farads,
    variation: ProcessVariation,
}

impl TechnologyNode {
    /// Creates a technology node from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if either device fails validation or the supply range is inverted.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        node_nm: u32,
        kind: TechnologyKind,
        flavor: ProcessFlavor,
        nmos: DeviceParams,
        pmos: DeviceParams,
        vdd_nominal: Volts,
        vdd_range: (Volts, Volts),
        cell_parasitic_cap: Farads,
        variation: ProcessVariation,
    ) -> Self {
        if let Err(msg) = nmos.validate() {
            panic!("invalid NMOS parameters for technology: {msg}");
        }
        if let Err(msg) = pmos.validate() {
            panic!("invalid PMOS parameters for technology: {msg}");
        }
        assert!(
            vdd_range.0.value() > 0.0 && vdd_range.0 <= vdd_range.1,
            "invalid supply range"
        );
        Self {
            name: name.into(),
            node_nm,
            kind,
            flavor,
            nmos,
            pmos,
            vdd_nominal,
            vdd_min: vdd_range.0,
            vdd_max: vdd_range.1,
            cell_parasitic_cap,
            variation,
        }
    }

    /// Human-readable name, e.g. `"hist-28nm-bulk"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Feature size in nanometres.
    pub fn node_nm(&self) -> u32 {
        self.node_nm
    }

    /// Whether this node is historical training data or the characterization target.
    pub fn kind(&self) -> TechnologyKind {
        self.kind
    }

    /// Structural flavor of the node.
    pub fn flavor(&self) -> ProcessFlavor {
        self.flavor
    }

    /// Nominal NMOS parameters of the unit device.
    pub fn nmos(&self) -> &DeviceParams {
        &self.nmos
    }

    /// Nominal PMOS parameters of the unit device.
    pub fn pmos(&self) -> &DeviceParams {
        &self.pmos
    }

    /// Nominal device of the requested polarity.
    pub fn device(&self, polarity: Polarity) -> &DeviceParams {
        match polarity {
            Polarity::Nmos => &self.nmos,
            Polarity::Pmos => &self.pmos,
        }
    }

    /// Nominal supply voltage.
    pub fn vdd_nominal(&self) -> Volts {
        self.vdd_nominal
    }

    /// Supported supply range `(min, max)` — the `Vdd` axis of the characterization space.
    pub fn vdd_range(&self) -> (Volts, Volts) {
        (self.vdd_min, self.vdd_max)
    }

    /// Fixed parasitic capacitance added at every cell output (junctions, local wiring).
    pub fn cell_parasitic_cap(&self) -> Farads {
        self.cell_parasitic_cap
    }

    /// Process-variation magnitudes of the node.
    pub fn variation(&self) -> &ProcessVariation {
        &self.variation
    }

    /// Builds the nominal unit NMOS transistor.
    pub fn unit_nmos(&self) -> Mosfet {
        Mosfet::nmos(self.nmos.clone())
    }

    /// Builds the nominal unit PMOS transistor.
    pub fn unit_pmos(&self) -> Mosfet {
        Mosfet::pmos(self.pmos.clone())
    }

    /// Returns a renamed copy re-tagged with a different [`TechnologyKind`].
    pub fn with_kind(mut self, kind: TechnologyKind) -> Self {
        self.kind = kind;
        self
    }

    // --- The synthetic node family --------------------------------------------------------

    /// 45-nm bulk planar node (oldest historical node).
    pub fn n45_bulk() -> Self {
        Self::node_from_recipe(
            "hist-45nm-bulk",
            45,
            false,
            false,
            false,
            1.1,
            (0.85, 1.2),
            1.0,
        )
    }

    /// 32-nm SOI planar node.
    pub fn n32_soi() -> Self {
        Self::node_from_recipe(
            "hist-32nm-soi",
            32,
            false,
            true,
            false,
            1.0,
            (0.8, 1.15),
            0.9,
        )
    }

    /// 28-nm bulk planar node (low-power flavor).
    pub fn n28_bulk() -> Self {
        Self::node_from_recipe(
            "hist-28nm-bulk",
            28,
            false,
            false,
            true,
            0.95,
            (0.75, 1.1),
            0.85,
        )
    }

    /// 20-nm bulk planar node.
    pub fn n20_bulk() -> Self {
        Self::node_from_recipe(
            "hist-20nm-bulk",
            20,
            false,
            false,
            false,
            0.9,
            (0.7, 1.05),
            0.8,
        )
    }

    /// 16-nm bulk FinFET node.
    pub fn n16_finfet() -> Self {
        Self::node_from_recipe(
            "hist-16nm-finfet",
            16,
            true,
            false,
            false,
            0.8,
            (0.65, 1.0),
            0.75,
        )
    }

    /// 14-nm SOI FinFET node (newest historical node).
    pub fn n14_finfet() -> Self {
        Self::node_from_recipe(
            "hist-14nm-finfet",
            14,
            true,
            true,
            false,
            0.8,
            (0.65, 1.0),
            0.7,
        )
    }

    /// Looks a node of the synthetic family up by name, accepting both the constructor
    /// spelling (`"n28_bulk"`, `"target_14nm"`) and the node's display name
    /// (`"hist-28nm-bulk"`, `"target-14nm-finfet"`) — the name → node mapping used by run
    /// configs and the CLI.
    pub fn by_name(name: &str) -> Option<Self> {
        let shorts = [
            "n45_bulk",
            "n32_soi",
            "n28_bulk",
            "n20_bulk",
            "n16_finfet",
            "n14_finfet",
            "target_14nm",
            "target_28nm",
        ];
        let nodes = [
            Self::n45_bulk(),
            Self::n32_soi(),
            Self::n28_bulk(),
            Self::n20_bulk(),
            Self::n16_finfet(),
            Self::n14_finfet(),
            Self::target_14nm(),
            Self::target_28nm(),
        ];
        shorts
            .iter()
            .zip(nodes)
            .find(|(short, node)| {
                short.eq_ignore_ascii_case(name) || node.name().eq_ignore_ascii_case(name)
            })
            .map(|(_, node)| node)
    }

    /// The full historical suite used to learn priors (6 nodes, mirroring the paper's
    /// `Ntech = 6`).
    pub fn historical_suite() -> Vec<Self> {
        vec![
            Self::n45_bulk(),
            Self::n32_soi(),
            Self::n28_bulk(),
            Self::n20_bulk(),
            Self::n16_finfet(),
            Self::n14_finfet(),
        ]
    }

    /// The "unknown" state-of-the-art 14-nm FinFET target of the paper's first experiment.
    ///
    /// Derived from [`TechnologyNode::n14_finfet`] but with deliberately shifted threshold,
    /// velocity and parasitics, so the prior is informative yet not exact.
    pub fn target_14nm() -> Self {
        let mut node = Self::node_from_recipe(
            "target-14nm-finfet",
            14,
            true,
            true,
            false,
            0.8,
            (0.65, 1.0),
            0.7,
        );
        node.kind = TechnologyKind::Target;
        node.nmos.vth0 *= 1.06;
        node.pmos.vth0 *= 1.04;
        node.nmos.vx0 *= 1.08;
        node.pmos.vx0 *= 1.05;
        node.nmos.dibl *= 0.9;
        node.pmos.dibl *= 0.92;
        node.cell_parasitic_cap = Farads(node.cell_parasitic_cap.value() * 1.07);
        node.name = "target-14nm-finfet".to_string();
        node
    }

    /// The 28-nm bulk target of the paper's second (statistical) experiment.
    pub fn target_28nm() -> Self {
        let mut node = Self::node_from_recipe(
            "target-28nm-bulk",
            28,
            false,
            false,
            true,
            0.95,
            (0.7, 1.1),
            0.85,
        );
        node.kind = TechnologyKind::Target;
        node.nmos.vth0 *= 0.95;
        node.pmos.vth0 *= 1.05;
        node.nmos.vx0 *= 0.94;
        node.pmos.vx0 *= 0.96;
        node.cell_parasitic_cap = Farads(node.cell_parasitic_cap.value() * 1.1);
        // The 28-nm target is characterized statistically; give it slightly larger local
        // variation than its historical sibling to stress the statistical flow.
        node.variation = ProcessVariation::new(0.026, 0.02, 0.06, 0.025, 0.1);
        node
    }

    /// Shared recipe that turns a coarse node description into concrete device parameters.
    ///
    /// The scaling rules are deliberately simple monotone functions of the feature size and
    /// flavor flags; they produce the ±10 %-ish node-to-node parameter spread that makes
    /// historical priors informative.
    #[allow(clippy::too_many_arguments)]
    fn node_from_recipe(
        name: &str,
        node_nm: u32,
        finfet: bool,
        soi: bool,
        low_power: bool,
        vdd_nom: f64,
        vdd_range: (f64, f64),
        cap_scale: f64,
    ) -> Self {
        let shrink = 45.0 / node_nm as f64; // 1.0 at 45 nm, ≈3.2 at 14 nm
        let fin_boost = if finfet { 1.25 } else { 1.0 };
        let soi_boost = if soi { 1.08 } else { 1.0 };
        let lp_vth = if low_power { 1.40 } else { 1.0 };

        let nmos = DeviceParams {
            vth0: 0.30 * lp_vth + 0.02 * (node_nm as f64 / 45.0),
            dibl: (0.045 + 0.05 / shrink.sqrt()) * if finfet { 0.7 } else { 1.0 },
            ss_factor: if finfet { 1.12 } else { 1.28 + 0.04 / shrink },
            vx0: 6.0e4 * (1.0 + 0.35 * (shrink - 1.0) / 2.2) * fin_boost * soi_boost,
            cinv: 1.3e-2 * (1.0 + 0.25 * (shrink - 1.0) / 2.2),
            width: 3.0e-7 / shrink.sqrt(),
            vdsat: 0.26 - 0.03 * (shrink - 1.0) / 2.2,
            beta_sat: if finfet { 1.9 } else { 1.7 },
            gate_cap: 0.5e-15 * cap_scale,
            drain_cap: 0.3e-15 * cap_scale,
        };
        let pmos = DeviceParams {
            vth0: nmos.vth0 * 1.03,
            dibl: nmos.dibl * 1.1,
            ss_factor: nmos.ss_factor * 1.02,
            vx0: nmos.vx0 * if finfet { 0.85 } else { 0.72 },
            width: nmos.width * if finfet { 1.15 } else { 1.4 },
            gate_cap: nmos.gate_cap * if finfet { 1.15 } else { 1.4 },
            drain_cap: nmos.drain_cap * if finfet { 1.15 } else { 1.4 },
            ..nmos.clone()
        };
        let variation = ProcessVariation::new(
            0.014 + 0.004 * (shrink - 1.0) / 2.2,
            0.009 + 0.004 * (shrink - 1.0) / 2.2,
            0.04 + 0.015 * (shrink - 1.0) / 2.2,
            0.02,
            0.08,
        );
        Self::new(
            name,
            node_nm,
            TechnologyKind::Historical,
            ProcessFlavor::new(finfet, soi, low_power),
            nmos,
            pmos,
            Volts(vdd_nom),
            (Volts(vdd_range.0), Volts(vdd_range.1)),
            Farads(0.9e-15 * cap_scale),
            variation,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn historical_suite_has_six_distinct_nodes() {
        let suite = TechnologyNode::historical_suite();
        assert_eq!(suite.len(), 6);
        let mut names: Vec<&str> = suite.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6, "node names must be unique");
        assert!(suite.iter().all(|t| t.kind() == TechnologyKind::Historical));
    }

    #[test]
    fn all_nodes_have_valid_devices() {
        for node in TechnologyNode::historical_suite()
            .into_iter()
            .chain([TechnologyNode::target_14nm(), TechnologyNode::target_28nm()])
        {
            assert!(node.nmos().validate().is_ok(), "{}", node.name());
            assert!(node.pmos().validate().is_ok(), "{}", node.name());
            let (lo, hi) = node.vdd_range();
            assert!(lo < hi);
            assert!(node.vdd_nominal() >= lo && node.vdd_nominal() <= hi);
            assert!(node.cell_parasitic_cap().value() > 0.0);
        }
    }

    #[test]
    fn newer_nodes_drive_more_current_per_width() {
        let old = TechnologyNode::n45_bulk();
        let new = TechnologyNode::n14_finfet();
        // Compare current density (A/m) at each node's own nominal Vdd.
        let i_old = old.unit_nmos().ieff(old.vdd_nominal()).value() / old.nmos().width;
        let i_new = new.unit_nmos().ieff(new.vdd_nominal()).value() / new.nmos().width;
        assert!(i_new > i_old, "old = {i_old}, new = {i_new}");
    }

    #[test]
    fn newer_nodes_have_smaller_parasitics_and_lower_vdd() {
        let old = TechnologyNode::n45_bulk();
        let new = TechnologyNode::n14_finfet();
        assert!(new.cell_parasitic_cap().value() < old.cell_parasitic_cap().value());
        assert!(new.vdd_nominal() < old.vdd_nominal());
    }

    #[test]
    fn finfet_nodes_have_steeper_subthreshold_slope() {
        let finfet = TechnologyNode::n16_finfet();
        let planar = TechnologyNode::n28_bulk();
        assert!(finfet.nmos().ss_factor < planar.nmos().ss_factor);
        assert!(finfet.flavor().finfet);
        assert!(!planar.flavor().finfet);
        assert!(planar.flavor().low_power);
    }

    #[test]
    fn targets_differ_from_their_historical_siblings_but_not_wildly() {
        let hist = TechnologyNode::n14_finfet();
        let target = TechnologyNode::target_14nm();
        assert_eq!(target.kind(), TechnologyKind::Target);
        let rel = (target.nmos().vth0 - hist.nmos().vth0).abs() / hist.nmos().vth0;
        assert!(rel > 0.0 && rel < 0.2, "relative vth shift = {rel}");
        let rel_v = (target.nmos().vx0 - hist.nmos().vx0).abs() / hist.nmos().vx0;
        assert!(rel_v > 0.0 && rel_v < 0.2);
    }

    #[test]
    fn target_28nm_has_enhanced_variation() {
        let hist = TechnologyNode::n28_bulk();
        let target = TechnologyNode::target_28nm();
        assert!(target.variation().vth_sigma_total() > hist.variation().vth_sigma_total());
    }

    #[test]
    fn pmos_is_weaker_than_nmos_at_same_width() {
        for node in TechnologyNode::historical_suite() {
            let n = node.unit_nmos();
            let p = node
                .unit_pmos()
                .scaled_width(node.nmos().width / node.pmos().width);
            let vdd = node.vdd_nominal();
            assert!(
                p.ieff(vdd).value() < n.ieff(vdd).value(),
                "{} PMOS should be weaker per width",
                node.name()
            );
        }
    }

    #[test]
    fn device_accessor_matches_polarity() {
        let node = TechnologyNode::n14_finfet();
        assert_eq!(node.device(Polarity::Nmos), node.nmos());
        assert_eq!(node.device(Polarity::Pmos), node.pmos());
    }

    #[test]
    fn with_kind_retags_node() {
        let node = TechnologyNode::n45_bulk().with_kind(TechnologyKind::Target);
        assert_eq!(node.kind(), TechnologyKind::Target);
    }

    #[test]
    fn nodes_resolve_by_either_name_spelling() {
        assert_eq!(
            TechnologyNode::by_name("n28_bulk").unwrap().name(),
            "hist-28nm-bulk"
        );
        assert_eq!(
            TechnologyNode::by_name("hist-28nm-bulk").unwrap().node_nm(),
            28
        );
        assert_eq!(
            TechnologyNode::by_name("TARGET_14NM").unwrap().name(),
            "target-14nm-finfet"
        );
        assert_eq!(
            TechnologyNode::by_name("target-28nm-bulk")
                .unwrap()
                .node_nm(),
            28
        );
        assert!(TechnologyNode::by_name("n7_gaafet").is_none());
    }

    #[test]
    fn delays_scale_into_picoseconds() {
        // Sanity-check the absolute magnitude: a fanout-of-4-ish load driven by the unit
        // NMOS should give a CV/I time constant in the 1–100 ps range for every node.
        for node in TechnologyNode::historical_suite() {
            let ieff = node.unit_nmos().ieff(node.vdd_nominal());
            let cload = Farads(3.0e-15) + node.cell_parasitic_cap();
            let t = (node.vdd_nominal() * cload) / ieff;
            let ps = t.picoseconds();
            assert!(ps > 1.0 && ps < 500.0, "{}: {ps} ps", node.name());
        }
    }
}
