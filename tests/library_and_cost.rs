//! Integration tests of the supporting deliverables: Liberty export, LUT baseline behaviour
//! through the public facade, and the simulation-cost accounting that underlies every
//! speedup number.

use slic::liberty::{export_library, ExportGrid};
use slic::prelude::*;
use slic::CostModel;

#[test]
fn liberty_export_is_complete_and_costed() {
    let engine =
        CharacterizationEngine::with_config(TechnologyNode::target_14nm(), TransientConfig::fast())
            .expect("valid transient configuration");
    let library = Library::new(
        "ship",
        [
            Cell::new(CellKind::Inv, DriveStrength::X1),
            Cell::new(CellKind::Nand2, DriveStrength::X1),
            Cell::new(CellKind::Nor2, DriveStrength::X1),
        ],
    );
    let grid = ExportGrid {
        slew_levels: 3,
        load_levels: 3,
    };
    let text = export_library(&engine, &library, grid).expect("export succeeds");

    // Structure: one library group, three cells, both transitions per cell.
    assert_eq!(text.matches("cell (").count(), 3);
    assert_eq!(text.matches("cell_rise").count(), 3);
    assert_eq!(text.matches("cell_fall").count(), 3);
    assert_eq!(text.matches("rise_transition").count(), 3);
    assert_eq!(text.matches('{').count(), text.matches('}').count());
    // Cost: 3 cells x 2 transitions x 9 grid points.
    assert_eq!(engine.simulation_count(), 54);
}

#[test]
fn lut_baseline_converges_through_public_facade() {
    let engine =
        CharacterizationEngine::with_config(TechnologyNode::n14_finfet(), TransientConfig::fast())
            .expect("valid transient configuration");
    let cell = Cell::new(CellKind::Nand2, DriveStrength::X1);
    let arc = TimingArc::new(cell, 0, Transition::Fall);
    let builder = LutBuilder::new(&engine);
    let coarse = builder.build_nominal_with_budget(cell, &arc, 8);
    let fine = builder.build_nominal_with_budget(cell, &arc, 48);

    let probe = InputPoint::new(
        Seconds::from_picoseconds(6.3),
        Farads::from_femtofarads(2.7),
        Volts(0.82),
    );
    let reference = engine.simulate_nominal(cell, &arc, &probe);
    let coarse_err = (coarse.predict(&probe).delay.value() - reference.delay.value()).abs()
        / reference.delay.value();
    let fine_err = (fine.predict(&probe).delay.value() - reference.delay.value()).abs()
        / reference.delay.value();
    assert!(
        fine_err < coarse_err,
        "finer LUT must be closer ({fine_err} vs {coarse_err})"
    );
    assert!(fine_err < 0.05);
    assert!(coarse.simulation_cost <= 8);
    assert!(fine.simulation_cost <= 48);
}

#[test]
fn cost_model_matches_the_papers_complexity_claims() {
    // The paper's representative numbers: k about 4 vs a 60-entry LUT at 1000 seeds gives
    // the 15x headline; charging the historical re-characterization leaves it above 10x.
    let cost = CostModel::paper_defaults();
    assert!((cost.speedup() - 15.0).abs() < 1e-9);
    assert!(cost.speedup_with_history() > 10.0);
    // Statistical case: 7 conditions vs a 60-entry statistical LUT is the Fig. 9 setup.
    let statistical = CostModel::new(60, 7, 1000, 6);
    assert!(statistical.speedup() > 8.0 && statistical.speedup() < 9.0);
}

#[test]
fn simulation_counters_isolate_per_engine_campaigns() {
    // Two engines over different technologies keep independent counts, so per-experiment
    // cost attribution in the studies is trustworthy.
    let a =
        CharacterizationEngine::with_config(TechnologyNode::n45_bulk(), TransientConfig::fast())
            .expect("valid transient configuration");
    let b =
        CharacterizationEngine::with_config(TechnologyNode::n14_finfet(), TransientConfig::fast())
            .expect("valid transient configuration");
    let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
    let arc = TimingArc::new(cell, 0, Transition::Fall);
    let point = InputPoint::new(
        Seconds::from_picoseconds(5.0),
        Farads::from_femtofarads(2.0),
        Volts(0.9),
    );
    let _ = a.simulate_nominal(cell, &arc, &point);
    let _ = a.simulate_nominal(cell, &arc, &point);
    let _ = b.simulate_nominal(cell, &arc, &point);
    assert_eq!(a.simulation_count(), 2);
    assert_eq!(b.simulation_count(), 1);
}

#[test]
fn public_prelude_covers_the_full_stack() {
    // A compile-time smoke test that the facade exposes every layer: units, device, cells,
    // simulator, LUT, model, Bayesian engine and statistics.
    let _v: Volts = Volts(0.8);
    let _tech: TechnologyNode = TechnologyNode::n28_bulk();
    let _cell: Cell = Cell::new(CellKind::Aoi21, DriveStrength::X2);
    let _params: TimingParams = TimingParams::initial_guess();
    let _prior_builder: PriorBuilder = PriorBuilder::new();
    let _gauss: Gaussian = Gaussian::standard();
    let _cfg: TransientConfig = TransientConfig::fast();
    let _levels = grid_levels_for_budget(10);
}
