//! Seeded, deterministic reconnection backoff.
//!
//! The broker re-dials a dead worker on a capped-exponential schedule with jitter, so a
//! restarting fleet does not hammer one address in lock-step ("thundering herd").  The
//! jitter is **not** sampled from wall-clock entropy: the whole schedule is a pure
//! function of `(seed, attempt)`, which keeps the resilience layer inside the workspace
//! determinism rules (slic-lint D1 bans wall-clock reads in the farm crate) and makes
//! every chaos test replayable — the same seed always waits the same milliseconds.
//!
//! Timing never reaches an artifact: a backoff delay decides *when* a reconnect happens,
//! while *what* is computed is pinned by the handshake and the hex-exact wire encoding.

use std::time::Duration;

/// SplitMix64: the statistically solid 64-bit mixer used for all farm-side seeding.
///
/// One multiply-xor-shift round trip; good enough to decorrelate per-worker jitter
/// streams derived from one run seed, and dependency-free.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A capped-exponential backoff schedule with seeded jitter.
///
/// Attempt `n` waits between half and all of `min(base_ms << n, cap_ms)` milliseconds;
/// the position inside that window is drawn from [`splitmix64`] keyed on
/// `(seed, attempt)`, so the schedule is a pure function of its inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First-attempt ceiling in milliseconds.
    pub base_ms: u64,
    /// The schedule never waits longer than this, however many attempts have failed.
    pub cap_ms: u64,
    /// Jitter seed; give each worker its own (e.g. `run_seed ^ splitmix64(index)`) so a
    /// fleet's re-dials spread out instead of synchronizing.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self {
            base_ms: 50,
            cap_ms: 2_000,
            seed: 0,
        }
    }
}

impl BackoffPolicy {
    /// The delay before reconnect attempt `attempt` (0-based), in milliseconds.
    ///
    /// Pure: equal `(seed, attempt)` pairs always produce equal delays, and the result
    /// never exceeds `max(cap_ms, 1)`.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let base = self.base_ms.max(1);
        let cap = self.cap_ms.max(base);
        // Capped exponential ceiling; the shift saturates well past any real cap.
        let ceiling = base
            .checked_shl(attempt.min(63))
            .unwrap_or(u64::MAX)
            .min(cap);
        // Decorrelated jitter inside [ceiling/2, ceiling]: half the window is guaranteed
        // (a reconnect storm still spaces out), half is seeded spread.
        let floor = ceiling / 2;
        let span = ceiling - floor;
        let draw = splitmix64(self.seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9));
        floor + if span == 0 { 0 } else { draw % (span + 1) }
    }

    /// [`delay_ms`](Self::delay_ms) as a [`Duration`] ready for `thread::sleep`.
    pub fn delay(&self, attempt: u32) -> Duration {
        Duration::from_millis(self.delay_ms(attempt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_capped() {
        let policy = BackoffPolicy {
            base_ms: 50,
            cap_ms: 2_000,
            seed: 0xfeed_beef,
        };
        for attempt in 0..40 {
            let delay = policy.delay_ms(attempt);
            assert_eq!(delay, policy.delay_ms(attempt), "pure in (seed, attempt)");
            assert!(delay <= 2_000, "attempt {attempt} waited {delay} ms");
        }
        // The exponential ramp is visible before the cap bites: later ceilings dominate.
        assert!(policy.delay_ms(5) > policy.delay_ms(0));
    }

    #[test]
    fn different_seeds_decorrelate_the_jitter() {
        let a = BackoffPolicy {
            seed: 1,
            ..BackoffPolicy::default()
        };
        let b = BackoffPolicy {
            seed: 2,
            ..BackoffPolicy::default()
        };
        // Not a hard guarantee per attempt, but across a handful of attempts two seeds
        // must not produce the identical schedule — that would be the thundering herd.
        let schedule = |p: &BackoffPolicy| (0..8).map(|n| p.delay_ms(n)).collect::<Vec<_>>();
        assert_ne!(schedule(&a), schedule(&b));
    }

    #[test]
    fn degenerate_knobs_stay_sane() {
        let zero = BackoffPolicy {
            base_ms: 0,
            cap_ms: 0,
            seed: 9,
        };
        for attempt in [0, 1, 63, u32::MAX] {
            assert!(zero.delay_ms(attempt) <= 1);
        }
        let inverted = BackoffPolicy {
            base_ms: 500,
            cap_ms: 10,
            seed: 9,
        };
        // cap below base: base wins as the effective cap instead of underflowing.
        assert!(inverted.delay_ms(7) <= 500);
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]
        #[test]
        fn delay_is_a_pure_function_of_seed_and_attempt_and_never_exceeds_the_cap(
            base_ms in 0u64..10_000,
            cap_ms in 0u64..100_000,
            seed in 0u64..u64::MAX,
            attempt in 0u32..200,
        ) {
            let policy = BackoffPolicy { base_ms, cap_ms, seed };
            let delay = policy.delay_ms(attempt);
            // Purity: a reconstructed policy replays the identical schedule.
            let replay = BackoffPolicy { base_ms, cap_ms, seed };
            proptest::prop_assert_eq!(delay, replay.delay_ms(attempt));
            // Cap: whatever the knobs, the wait is bounded by max(cap, base, 1).
            proptest::prop_assert!(delay <= cap_ms.max(base_ms).max(1));
        }
    }
}
