//! Tracing is display-only: a traced run's artifact and Liberty export are
//! byte-identical to an untraced run's, and the trace sidecar itself is well-formed
//! JSON-lines that `slic profile` can reconstruct a span tree from.

use slic_obs::profile::parse_trace;
use slic_obs::{Observability, TraceRecorder};
use slic_pipeline::{PipelineRunner, RunConfig};

fn quick_config() -> RunConfig {
    RunConfig {
        seed: Some(4242),
        ..RunConfig::default()
    }
}

#[test]
fn traced_and_untraced_runs_produce_byte_identical_artifacts() {
    let resolved = quick_config().resolve().expect("config resolves");

    let untraced = PipelineRunner::new(resolved.clone()).expect("runner builds");
    let (_, untraced_artifact) = untraced.run().expect("untraced run completes");
    let untraced_json = untraced_artifact.to_json().expect("artifact serializes");
    let untraced_liberty = untraced_artifact
        .characterized
        .to_liberty(untraced.engine(), untraced.config().export_grid)
        .expect("liberty exports");

    let dir = std::env::temp_dir().join(format!("slic-trace-invariance-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join("run.trace.jsonl");
    let obs = Observability {
        trace: TraceRecorder::to_file(&trace_path).expect("trace file opens"),
        ..Observability::default()
    };
    let traced = PipelineRunner::new(resolved)
        .expect("runner builds")
        .with_observability(obs.clone());
    let (_, traced_artifact) = traced.run().expect("traced run completes");
    let traced_json = traced_artifact.to_json().expect("artifact serializes");
    let traced_liberty = traced_artifact
        .characterized
        .to_liberty(traced.engine(), traced.config().export_grid)
        .expect("liberty exports");
    obs.trace.flush();

    assert_eq!(
        traced_json, untraced_json,
        "tracing must not change a single artifact byte"
    );
    assert_eq!(
        traced_liberty, untraced_liberty,
        "tracing must not change a single exported Liberty byte"
    );

    // The sidecar is parseable in full, and the span names the profiler keys on are
    // all present, with every unit span parented under the characterize root.
    let text = std::fs::read_to_string(&trace_path).expect("trace file exists");
    let parsed = parse_trace(&text);
    assert_eq!(parsed.dropped, 0, "every trace line parses");
    let span_names: Vec<&str> = parsed
        .records
        .iter()
        .map(|record| record.name.as_str())
        .collect();
    for expected in ["plan.build", "learn", "characterize", "unit", "solve_batch"] {
        assert!(
            span_names.contains(&expected),
            "trace must contain a `{expected}` span; got {span_names:?}"
        );
    }
    let root = parsed
        .records
        .iter()
        .find(|record| record.name == "characterize")
        .expect("characterize root span");
    assert!(
        parsed
            .records
            .iter()
            .filter(|record| record.name == "unit")
            .all(|unit| unit.parent == Some(root.id)),
        "unit spans run on rayon threads and must still be parented to the root"
    );
    std::fs::remove_dir_all(&dir).ok();
}
