//! Live run progress: periodic `progress` trace events plus an optional stderr line.
//!
//! The runner tells the meter how many work units the plan holds, ticks it as each
//! unit completes, and the farm broker adds remotely-solved lanes as round trips
//! land.  The meter turns those ticks into two displays, both rate-limited off the
//! monotonic clock so a thousand fast units cost a handful of emissions:
//!
//! * a `progress` trace event (units done/total, sims paid vs cached, farmed lanes,
//!   elapsed and ETA milliseconds) — greppable from the trace and visible as instants
//!   in the Perfetto export;
//! * a `\r`-rewritten stderr line when the CLI decided stderr is worth drawing on (a
//!   TTY, or `--progress` forcing it) — stderr only, so piped stdout artifacts and
//!   reports never see it.
//!
//! Like the rest of `slic-obs` the meter is display-only: it reads counters, never
//! feeds a result path, and the default [`ProgressMeter::disabled`] no-ops at the
//! cost of one `Option` check.

use crate::clock::{Clock, MonotonicClock};
use crate::trace::TraceRecorder;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Minimum nanoseconds between emissions (the begin/finish edges always emit).
const DEFAULT_INTERVAL_NS: u64 = 200_000_000;

struct Meter {
    clock: Box<dyn Clock + Send + Sync>,
    trace: TraceRecorder,
    /// The stderr (or test) line target; `None` emits trace events only.
    line_sink: Option<Mutex<Box<dyn Write + Send>>>,
    interval_ns: u64,
    units_total: AtomicU64,
    units_done: AtomicU64,
    sims_paid: AtomicU64,
    sims_cached: AtomicU64,
    lanes_farmed: AtomicU64,
    started_ns: AtomicU64,
    last_emit_ns: AtomicU64,
    /// Length of the last rendered line, so finish() can blank it.
    last_line_len: AtomicU64,
}

/// The cloneable handle threaded through [`crate::Observability`].
#[derive(Clone, Default)]
pub struct ProgressMeter {
    shared: Option<Arc<Meter>>,
}

impl std::fmt::Debug for ProgressMeter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressMeter")
            .field("enabled", &self.shared.is_some())
            .finish()
    }
}

impl ProgressMeter {
    /// The no-op meter; every call is one `Option` check.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A live meter on the monotonic clock.  `trace` receives the periodic
    /// `progress` events (free when the recorder is disabled); `render_line` adds
    /// the `\r`-rewritten stderr display.
    pub fn new(trace: TraceRecorder, render_line: bool) -> Self {
        let sink: Option<Box<dyn Write + Send>> = if render_line {
            Some(Box::new(std::io::stderr()))
        } else {
            None
        };
        Self::with_parts(
            Box::new(MonotonicClock::new()),
            trace,
            sink,
            DEFAULT_INTERVAL_NS,
        )
    }

    /// Full-control constructor for tests: inject the clock, the line sink and the
    /// rate-limit interval.
    pub fn with_parts(
        clock: Box<dyn Clock + Send + Sync>,
        trace: TraceRecorder,
        line_sink: Option<Box<dyn Write + Send>>,
        interval_ns: u64,
    ) -> Self {
        Self {
            shared: Some(Arc::new(Meter {
                clock,
                trace,
                line_sink: line_sink.map(Mutex::new),
                interval_ns,
                units_total: AtomicU64::new(0),
                units_done: AtomicU64::new(0),
                sims_paid: AtomicU64::new(0),
                sims_cached: AtomicU64::new(0),
                lanes_farmed: AtomicU64::new(0),
                started_ns: AtomicU64::new(0),
                last_emit_ns: AtomicU64::new(0),
                last_line_len: AtomicU64::new(0),
            })),
        }
    }

    /// Whether any display (trace events or stderr line) is live.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Declares the total unit count and stamps the start time; emits immediately.
    pub fn begin(&self, units_total: u64) {
        let Some(meter) = &self.shared else { return };
        meter.units_total.store(units_total, Ordering::Relaxed);
        meter.units_done.store(0, Ordering::Relaxed);
        meter
            .started_ns
            .store(meter.clock.now_ns(), Ordering::Relaxed);
        self.emit(true);
    }

    /// Ticks one completed unit and refreshes the paid/cached simulation totals
    /// (absolute values, read from the run counters — not deltas).
    pub fn unit_done(&self, sims_paid: u64, sims_cached: u64) {
        let Some(meter) = &self.shared else { return };
        let done = meter.units_done.fetch_add(1, Ordering::Relaxed) + 1;
        meter.sims_paid.store(sims_paid, Ordering::Relaxed);
        meter.sims_cached.store(sims_cached, Ordering::Relaxed);
        self.emit(done == meter.units_total.load(Ordering::Relaxed));
    }

    /// Adds remotely-solved lanes (farm round trips land in lane batches).
    pub fn add_lanes(&self, lanes: u64) {
        let Some(meter) = &self.shared else { return };
        meter.lanes_farmed.fetch_add(lanes, Ordering::Relaxed);
        self.emit(false);
    }

    /// Emits one final progress event and blanks the stderr line.
    pub fn finish(&self) {
        let Some(meter) = &self.shared else { return };
        self.emit(true);
        if let Some(sink) = &meter.line_sink {
            let blank = meter.last_line_len.swap(0, Ordering::Relaxed) as usize;
            if blank > 0 {
                let mut sink = sink.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                let _ = write!(sink, "\r{}\r", " ".repeat(blank));
                let _ = sink.flush();
            }
        }
    }

    fn emit(&self, force: bool) {
        let Some(meter) = &self.shared else { return };
        let now = meter.clock.now_ns();
        let last = meter.last_emit_ns.load(Ordering::Relaxed);
        if !force && now.saturating_sub(last) < meter.interval_ns {
            return;
        }
        // One winner per interval: losers of the race skip this emission (unless
        // forced — the begin/final edges must always land).
        if meter
            .last_emit_ns
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
            && !force
        {
            return;
        }

        let done = meter.units_done.load(Ordering::Relaxed);
        let total = meter.units_total.load(Ordering::Relaxed);
        let paid = meter.sims_paid.load(Ordering::Relaxed);
        let cached = meter.sims_cached.load(Ordering::Relaxed);
        let lanes = meter.lanes_farmed.load(Ordering::Relaxed);
        let elapsed_ns = now.saturating_sub(meter.started_ns.load(Ordering::Relaxed));
        // ETA by linear extrapolation over completed units; unknowable until the
        // first unit lands.
        let eta_ms = if done > 0 && total > done {
            Some(elapsed_ns / 1_000_000 * (total - done) / done)
        } else {
            None
        };

        meter.trace.event(
            "progress",
            &[
                ("units_done", done.to_string()),
                ("units_total", total.to_string()),
                ("sims_paid", paid.to_string()),
                ("sims_cached", cached.to_string()),
                ("lanes_farmed", lanes.to_string()),
                ("elapsed_ms", (elapsed_ns / 1_000_000).to_string()),
                (
                    "eta_ms",
                    eta_ms.map_or_else(|| "unknown".to_string(), |ms| ms.to_string()),
                ),
            ],
        );

        if let Some(sink) = &meter.line_sink {
            let mut line =
                format!("slic: {done}/{total} units · {paid} sims paid, {cached} cached");
            if lanes > 0 {
                line.push_str(&format!(" · {lanes} lanes farmed"));
            }
            if let Some(ms) = eta_ms {
                line.push_str(&format!(" · eta {}.{}s", ms / 1000, ms % 1000 / 100));
            }
            let previous = meter
                .last_line_len
                .swap(line.chars().count() as u64, Ordering::Relaxed)
                as usize;
            let pad = previous.saturating_sub(line.chars().count());
            let mut sink = sink.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            let _ = write!(sink, "\r{line}{}", " ".repeat(pad));
            let _ = sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::trace::TraceRecorder;

    /// A cloneable in-memory sink for both the trace recorder and the line display.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// `ManualClock` is not `Clone`, so share one behind an `Arc` for meter + test.
    struct ArcClock(Arc<ManualClock>);

    impl Clock for ArcClock {
        fn now_ns(&self) -> u64 {
            self.0.now_ns()
        }
    }

    fn meter(
        interval_ns: u64,
        with_line: bool,
    ) -> (ProgressMeter, Arc<ManualClock>, SharedBuf, SharedBuf) {
        let clock = Arc::new(ManualClock::default());
        let trace_buf = SharedBuf::default();
        let line_buf = SharedBuf::default();
        let trace = TraceRecorder::with_sink(
            Box::new(ArcClock(Arc::clone(&clock))),
            Box::new(trace_buf.clone()),
        );
        let sink: Option<Box<dyn Write + Send>> =
            with_line.then(|| Box::new(line_buf.clone()) as Box<dyn Write + Send>);
        let meter = ProgressMeter::with_parts(
            Box::new(ArcClock(Arc::clone(&clock))),
            trace,
            sink,
            interval_ns,
        );
        (meter, clock, trace_buf, line_buf)
    }

    #[test]
    fn disabled_meter_is_a_no_op() {
        let meter = ProgressMeter::disabled();
        assert!(!meter.is_enabled());
        meter.begin(10);
        meter.unit_done(1, 0);
        meter.add_lanes(4);
        meter.finish();
    }

    #[test]
    fn emissions_are_rate_limited_by_the_clock() {
        let (meter, clock, trace_buf, _) = meter(1_000, false);
        meter.begin(4); // forced emission at t=0
        meter.unit_done(1, 0); // same instant: suppressed
        meter.unit_done(2, 0); // same instant: suppressed
        clock.advance(1_000);
        meter.unit_done(3, 1); // past the interval: emits
        let text = trace_buf.text();
        let events = text.lines().filter(|l| l.contains("\"progress\"")).count();
        assert_eq!(events, 2, "{text}");
        assert!(text.contains("\"units_done\":\"3\""), "{text}");
        assert!(text.contains("\"sims_paid\":\"3\""), "{text}");
    }

    #[test]
    fn final_unit_and_finish_always_emit() {
        let (meter, _clock, trace_buf, _) = meter(u64::MAX, false);
        meter.begin(2);
        meter.unit_done(1, 0); // suppressed: interval never elapses
        meter.unit_done(2, 0); // forced: last unit
        meter.finish(); // forced
        let text = trace_buf.text();
        let events = text.lines().filter(|l| l.contains("\"progress\"")).count();
        assert_eq!(events, 3, "{text}");
        assert!(text.contains("\"units_done\":\"2\""), "{text}");
    }

    #[test]
    fn eta_extrapolates_from_completed_units() {
        let (meter, clock, trace_buf, _) = meter(0, false);
        meter.begin(4);
        clock.advance(2_000_000); // 2 ms for the first unit
        meter.unit_done(10, 5);
        let text = trace_buf.text();
        // 3 units left at 2 ms per unit.
        assert!(text.contains("\"eta_ms\":\"6\""), "{text}");
        assert!(text.contains("\"eta_ms\":\"unknown\""), "{text}"); // the begin edge
        assert!(text.contains("\"lanes_farmed\":\"0\""), "{text}");
    }

    #[test]
    fn stderr_line_rewrites_in_place_and_finish_blanks_it() {
        let (meter, clock, _trace, line_buf) = meter(0, true);
        meter.begin(2);
        clock.advance(1_000_000);
        meter.unit_done(7, 3);
        meter.add_lanes(16);
        meter.finish();
        let text = line_buf.text();
        assert!(text.contains("\rslic: 0/2 units"), "{text:?}");
        assert!(
            text.contains("\rslic: 1/2 units · 7 sims paid, 3 cached"),
            "{text:?}"
        );
        assert!(text.contains("16 lanes farmed"), "{text:?}");
        // finish() blanks the line: the last carriage-return group is spaces only.
        let tail = text.rsplit('\r').next().unwrap();
        assert!(tail.is_empty(), "line not blanked: {text:?}");
        let blank = text.rsplit('\r').nth(1).unwrap();
        assert!(blank.chars().all(|c| c == ' '), "{text:?}");
    }

    #[test]
    fn trace_only_meter_writes_no_line() {
        let (meter, _clock, _trace, line_buf) = meter(0, false);
        meter.begin(1);
        meter.unit_done(1, 0);
        meter.finish();
        assert!(line_buf.text().is_empty());
    }
}
