//! Waveform measurement conventions and results.

use serde::{Deserialize, Serialize};
use slic_units::Seconds;

/// Fraction of the supply at which propagation delay is measured (50 %).
pub const DELAY_THRESHOLD: f64 = 0.5;

/// Lower threshold of the output-slew measurement window (20 %).
pub const SLEW_LOW_THRESHOLD: f64 = 0.2;

/// Upper threshold of the output-slew measurement window (80 %).
pub const SLEW_HIGH_THRESHOLD: f64 = 0.8;

/// Scale factor converting the 20–80 % crossing time into an equivalent full-swing
/// transition time (`1 / (0.8 − 0.2)`), the convention used consistently for both the input
/// stimulus and the reported output slew.
pub const SLEW_SCALE: f64 = 1.0 / (SLEW_HIGH_THRESHOLD - SLEW_LOW_THRESHOLD);

/// The result of one switching-event simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingMeasurement {
    /// Propagation delay: 50 % of input swing to 50 % of output swing.
    pub delay: Seconds,
    /// Output transition time: 20–80 % crossing time scaled to full swing.
    pub output_slew: Seconds,
}

impl TimingMeasurement {
    /// Creates a measurement.
    ///
    /// # Panics
    ///
    /// Panics if either value is non-finite, or if the slew is non-positive (a delay of
    /// exactly zero is tolerated; a *negative* delay indicates the output crossed before the
    /// input, which the solver never produces for the supported single-arc stimuli).
    pub fn new(delay: Seconds, output_slew: Seconds) -> Self {
        assert!(
            delay.is_finite() && delay.value() >= 0.0,
            "delay must be finite and non-negative (got {delay})"
        );
        assert!(
            output_slew.is_finite() && output_slew.value() > 0.0,
            "output slew must be finite and positive (got {output_slew})"
        );
        Self { delay, output_slew }
    }

    /// Returns the delay in picoseconds (convenience for reports).
    pub fn delay_ps(&self) -> f64 {
        self.delay.picoseconds()
    }

    /// Returns the output slew in picoseconds (convenience for reports).
    pub fn output_slew_ps(&self) -> f64 {
        self.output_slew.picoseconds()
    }
}

/// Extracts the mean delay and mean slew of an ensemble of measurements.
///
/// Returns `(mean_delay, mean_slew)` in seconds; `(0, 0)` for an empty slice.
pub fn ensemble_means(measurements: &[TimingMeasurement]) -> (f64, f64) {
    if measurements.is_empty() {
        return (0.0, 0.0);
    }
    let n = measurements.len() as f64;
    let d = measurements.iter().map(|m| m.delay.value()).sum::<f64>() / n;
    let s = measurements
        .iter()
        .map(|m| m.output_slew.value())
        .sum::<f64>()
        / n;
    (d, s)
}

/// Extracts the delay and slew standard deviations of an ensemble of measurements
/// (unbiased); zeros when fewer than two measurements are given.
pub fn ensemble_std_devs(measurements: &[TimingMeasurement]) -> (f64, f64) {
    if measurements.len() < 2 {
        return (0.0, 0.0);
    }
    let (md, ms) = ensemble_means(measurements);
    let n = (measurements.len() - 1) as f64;
    let vd = measurements
        .iter()
        .map(|m| (m.delay.value() - md).powi(2))
        .sum::<f64>()
        / n;
    let vs = measurements
        .iter()
        .map(|m| (m.output_slew.value() - ms).powi(2))
        .sum::<f64>()
        / n;
    (vd.sqrt(), vs.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn thresholds_are_consistent() {
        assert!(SLEW_LOW_THRESHOLD < DELAY_THRESHOLD);
        assert!(DELAY_THRESHOLD < SLEW_HIGH_THRESHOLD);
        assert!((SLEW_SCALE - 1.0 / 0.6).abs() < 1e-12);
    }

    #[test]
    fn measurement_construction_and_conversion() {
        let m = TimingMeasurement::new(
            Seconds::from_picoseconds(12.5),
            Seconds::from_picoseconds(8.0),
        );
        assert!((m.delay_ps() - 12.5).abs() < 1e-9);
        assert!((m.output_slew_ps() - 8.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "delay must be finite")]
    fn negative_delay_rejected() {
        let _ = TimingMeasurement::new(Seconds(-1e-12), Seconds(1e-12));
    }

    #[test]
    #[should_panic(expected = "output slew must be finite")]
    fn zero_slew_rejected() {
        let _ = TimingMeasurement::new(Seconds(1e-12), Seconds(0.0));
    }

    #[test]
    fn ensemble_statistics() {
        let ms = vec![
            TimingMeasurement::new(Seconds(10e-12), Seconds(6e-12)),
            TimingMeasurement::new(Seconds(14e-12), Seconds(10e-12)),
        ];
        let (md, msl) = ensemble_means(&ms);
        assert!((md - 12e-12).abs() < 1e-20);
        assert!((msl - 8e-12).abs() < 1e-20);
        let (sd, ss) = ensemble_std_devs(&ms);
        assert!(sd > 0.0 && ss > 0.0);
        assert_eq!(ensemble_means(&[]), (0.0, 0.0));
        assert_eq!(ensemble_std_devs(&ms[..1]), (0.0, 0.0));
    }
}
