//! P1 must-fire: the full catalogue of panicking constructs in library code.

fn lookup(values: &[f64], index: usize) -> f64 {
    let first = values.first().unwrap();
    let indexed = values.get(index).expect("index in range");
    if *first > *indexed {
        panic!("unsorted");
    }
    match index {
        0 => *first,
        _ => unreachable!(),
    }
}

fn later() -> f64 {
    todo!()
}

fn never() -> f64 {
    unimplemented!()
}
