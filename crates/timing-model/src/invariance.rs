//! Collapse diagnostics behind Figs. 2 and 3 of the paper.
//!
//! The paper motivates the compact model by showing that, for a NOR2 cell in a 14-nm
//! technology,
//!
//! * `Td · Ieff / (Vdd + V')` is approximately constant across supply voltages for each
//!   fixed `(Cload, Sin)` group (Fig. 2), and
//! * `Td / (Cload + Cpar + α·Sin)` is approximately constant across load/slew combinations
//!   for each fixed `Vdd` (Fig. 3).
//!
//! The functions here compute exactly those collapsed quantities from measured samples and
//! report how constant they are (coefficient of variation per group), which is what the
//! Fig. 2 / Fig. 3 benches print.

use crate::model::{TimingParams, TimingSample};
use serde::{Deserialize, Serialize};

/// One collapsed series: a group label, the x-axis values, the collapsed y values, and the
/// coefficient of variation of the y values (σ/µ — lower is flatter).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollapseSeries {
    /// Human-readable group label (e.g. `"Cload=2.0fF, Sin=5.0ps"` or `"Vdd=0.85V"`).
    pub label: String,
    /// X-axis values of the series (supply voltage for Fig. 2, combination index for Fig. 3).
    pub x: Vec<f64>,
    /// Collapsed quantity per point.
    pub y: Vec<f64>,
    /// Coefficient of variation of `y` (0 means perfectly collapsed).
    pub coefficient_of_variation: f64,
}

impl CollapseSeries {
    fn new(label: String, x: Vec<f64>, y: Vec<f64>) -> Self {
        let cv = coefficient_of_variation(&y);
        Self {
            label,
            x,
            y,
            coefficient_of_variation: cv,
        }
    }
}

fn coefficient_of_variation(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt() / mean.abs()
}

/// Fig. 2 collapse: groups samples by `(Cload, Sin)` and returns `T·Ieff/(Vdd + V')` versus
/// `Vdd` for each group.
///
/// `v_prime` is the supply-correction parameter extracted for this arc (delay and slew use
/// different values, as in the paper).
pub fn vdd_collapse(samples: &[TimingSample], v_prime: f64) -> Vec<CollapseSeries> {
    // Quantized (load, slew) group key paired with the group's collapsed (x, y) points.
    type Group = ((i64, i64), Vec<(f64, f64)>);
    let mut groups: Vec<Group> = Vec::new();
    for s in samples {
        // Group key: load and slew quantized to 1 aF / 1 fs so float jitter does not split
        // groups.
        let key = (
            (s.point.cload.value() * 1e18).round() as i64,
            (s.point.sin.value() * 1e15).round() as i64,
        );
        let collapsed = s.observed.value() * s.ieff.value() / (s.point.vdd.value() + v_prime);
        let entry = groups.iter_mut().find(|(k, _)| *k == key);
        match entry {
            Some((_, points)) => points.push((s.point.vdd.value(), collapsed)),
            None => groups.push((key, vec![(s.point.vdd.value(), collapsed)])),
        }
    }
    groups
        .into_iter()
        .map(|((cload_af, sin_fs), mut points)| {
            points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN in collapse input"));
            let label = format!(
                "Cload={:.2}fF, Sin={:.2}ps",
                cload_af as f64 / 1e3,
                sin_fs as f64 / 1e3
            );
            let (x, y): (Vec<f64>, Vec<f64>) = points.into_iter().unzip();
            CollapseSeries::new(label, x, y)
        })
        .collect()
}

/// Fig. 3 collapse: groups samples by `Vdd` and returns `T/(Cload + Cpar + α·Sin)` versus a
/// combination index for each group.
///
/// The `(Cpar, α)` pair comes from the extracted parameters for this arc; only those two
/// entries of `params` are used.
pub fn load_slew_collapse(samples: &[TimingSample], params: &TimingParams) -> Vec<CollapseSeries> {
    let mut groups: Vec<(i64, Vec<f64>)> = Vec::new();
    for s in samples {
        let key = (s.point.vdd.value() * 1e4).round() as i64; // 0.1 mV quantization
        let collapsed = s.observed.value() / params.effective_capacitance(&s.point).value();
        let entry = groups.iter_mut().find(|(k, _)| *k == key);
        match entry {
            Some((_, values)) => values.push(collapsed),
            None => groups.push((key, vec![collapsed])),
        }
    }
    groups.sort_by_key(|(k, _)| *k);
    groups
        .into_iter()
        .map(|(vdd_tenth_mv, y)| {
            let label = format!("Vdd={:.3}V", vdd_tenth_mv as f64 / 1e4);
            let x: Vec<f64> = (1..=y.len()).map(|i| i as f64).collect();
            CollapseSeries::new(label, x, y)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slic_spice::InputPoint;
    use slic_units::{Amperes, Farads, Seconds, Volts};

    fn params() -> TimingParams {
        TimingParams::new(0.39, 1.0, -0.26, 0.09)
    }

    /// Samples generated exactly from the model: both collapses must then be perfect.
    fn model_samples() -> Vec<TimingSample> {
        let p = params();
        let mut out = Vec::new();
        for &vdd in &[0.65, 0.75, 0.85, 0.95] {
            for &(cload, sin) in &[(1.0, 2.0), (2.0, 5.0), (4.0, 10.0)] {
                let point = InputPoint::new(
                    Seconds::from_picoseconds(sin),
                    Farads::from_femtofarads(cload),
                    Volts(vdd),
                );
                // Ieff varies with Vdd; the collapse divides it back out.
                let ieff = Amperes(25e-6 + 50e-6 * (vdd - 0.6));
                let observed = p.evaluate(&point, ieff);
                out.push(TimingSample::new(point, ieff, observed));
            }
        }
        out
    }

    #[test]
    fn vdd_collapse_is_flat_for_model_generated_data() {
        let series = vdd_collapse(&model_samples(), params().v_prime);
        assert_eq!(series.len(), 3, "one series per (Cload, Sin) group");
        for s in &series {
            assert_eq!(s.x.len(), 4, "one point per Vdd");
            assert!(
                s.coefficient_of_variation < 1e-9,
                "{}: cv = {}",
                s.label,
                s.coefficient_of_variation
            );
            assert!(s.x.windows(2).all(|w| w[1] > w[0]), "x must be sorted");
        }
    }

    #[test]
    fn load_slew_collapse_is_flat_for_model_generated_data() {
        let series = load_slew_collapse(&model_samples(), &params());
        assert_eq!(series.len(), 4, "one series per Vdd");
        for s in &series {
            assert_eq!(s.y.len(), 3, "one point per (Cload, Sin) combination");
            assert!(
                s.coefficient_of_variation < 1e-9,
                "{}: cv = {}",
                s.label,
                s.coefficient_of_variation
            );
        }
    }

    #[test]
    fn wrong_v_prime_breaks_the_vdd_collapse() {
        let good = vdd_collapse(&model_samples(), params().v_prime);
        let bad = vdd_collapse(&model_samples(), 0.3);
        let good_cv: f64 = good.iter().map(|s| s.coefficient_of_variation).sum();
        let bad_cv: f64 = bad.iter().map(|s| s.coefficient_of_variation).sum();
        assert!(bad_cv > 10.0 * (good_cv + 1e-12));
    }

    #[test]
    fn labels_identify_the_groups() {
        let series = vdd_collapse(&model_samples(), params().v_prime);
        assert!(series.iter().any(|s| s.label.contains("Cload=1.00fF")));
        let series = load_slew_collapse(&model_samples(), &params());
        assert!(series.iter().any(|s| s.label.contains("Vdd=0.650V")));
    }

    #[test]
    fn degenerate_groups_have_zero_cv() {
        let one = &model_samples()[..1];
        let series = vdd_collapse(one, params().v_prime);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].coefficient_of_variation, 0.0);
    }
}
