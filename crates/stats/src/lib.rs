//! Statistics toolkit for the `slic` workspace.
//!
//! Statistical library characterization needs a fairly small but carefully chosen set of
//! statistical tools, all provided here:
//!
//! * [`moments`] — sample mean / variance / skewness / quantiles, the metrics compared in
//!   Eqs. (16)–(19) of the paper.
//! * [`gaussian`] — univariate and multivariate normal distributions.  The multivariate
//!   normal is the workhorse of the Bayesian engine: the parameter prior `µ_P ~ N(µ0, Σ0)`
//!   learned from historical technologies is represented with it.
//! * [`histogram`] and [`kde`] — empirical densities for the Fig. 9 delay-PDF comparison.
//! * [`sampling`] — uniform / Latin-hypercube / factorial sampling plans over the library
//!   input space `ξ = (Sin, Cload, Vdd)` and over process-variation space.
//! * [`distance`] — Kolmogorov–Smirnov and moment-error metrics used to score how well a
//!   characterization method reproduces the baseline distribution.
//!
//! # Examples
//!
//! ```
//! use slic_stats::moments::Summary;
//!
//! let samples = [1.0, 2.0, 3.0, 4.0];
//! let summary = Summary::from_samples(&samples);
//! assert!((summary.mean - 2.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distance;
pub mod gaussian;
pub mod histogram;
pub mod kde;
pub mod moments;
pub mod sampling;

pub use distance::{ks_statistic, relative_error};
pub use gaussian::{Gaussian, MultivariateGaussian};
pub use histogram::Histogram;
pub use kde::KernelDensity;
pub use moments::Summary;
pub use sampling::{full_factorial, latin_hypercube, uniform_box};
