//! The extended (five-parameter) timing model with a `Sin·Cload` cross term.
//!
//! The paper notes at the end of Section III that "for some technologies there might be an
//! offset between the proposed model and circuit simulations.  In those cases, extra fitting
//! terms (e.g. `Sin·Cload`) might be needed.  The optimal model complexity will be given by
//! a trade-off between model accuracy and degree of data compression."  This module provides
//! that extension so the model-complexity ablation can quantify the trade-off.

use crate::model::{TimingParams, TimingSample};
use serde::{Deserialize, Serialize};
use slic_linalg::Vector;
use slic_spice::InputPoint;
use slic_units::{Amperes, Seconds};
use std::fmt;

/// Number of parameters in the extended model.
pub const EXTENDED_PARAM_COUNT: usize = 5;

/// Conversion of the cross-term coefficient from fF/ps/fF (i.e. 1/ps) to SI (1/s) times the
/// farad conversions: `γ · Sin · Cload` must come out in farads when `γ` is expressed in
/// `fF / (ps·fF)` = 1/ps.
const GAMMA_TO_SI: f64 = 1.0e12;

/// Parameters of the extended model `{kd, Cpar, V', α, γ}` where the effective capacitance
/// becomes `Cload + Cpar + α·Sin + γ·Sin·Cload`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtendedTimingParams {
    /// The four base parameters.
    pub base: TimingParams,
    /// Cross-term coefficient, in 1/ps (so that `γ·Sin·Cload` is a capacitance).
    pub gamma: f64,
}

impl ExtendedTimingParams {
    /// Creates extended parameters from a base model and a cross-term coefficient.
    pub fn new(base: TimingParams, gamma: f64) -> Self {
        Self { base, gamma }
    }

    /// Starting point for extraction: the base initial guess with no cross term.
    pub fn initial_guess() -> Self {
        Self::new(TimingParams::initial_guess(), 0.0)
    }

    /// Converts to a dense vector `[kd, cpar, v_prime, alpha, gamma]`.
    pub fn to_vector(self) -> Vector {
        let mut v = self.base.to_vector().into_vec();
        v.push(self.gamma);
        Vector::from(v)
    }

    /// Builds parameters from a dense vector of length [`EXTENDED_PARAM_COUNT`].
    ///
    /// # Panics
    ///
    /// Panics if the vector does not have exactly five entries.
    pub fn from_vector(v: &Vector) -> Self {
        assert_eq!(
            v.len(),
            EXTENDED_PARAM_COUNT,
            "parameter vector must have 5 entries"
        );
        Self::new(TimingParams::new(v[0], v[1], v[2], v[3]), v[4])
    }

    /// Effective capacitance including the cross term, in farads.
    pub fn effective_capacitance(&self, point: &InputPoint) -> f64 {
        self.base.effective_capacitance(point).value()
            + self.gamma * GAMMA_TO_SI * point.sin.value() * point.cload.value()
    }

    /// Evaluates the extended model.
    pub fn evaluate(&self, point: &InputPoint, ieff: Amperes) -> Seconds {
        let v_term = point.vdd.value() + self.base.v_prime;
        Seconds(self.base.kd * v_term * self.effective_capacitance(point) / ieff.value())
    }

    /// Residual `observed − predicted` for one sample, in seconds.
    pub fn residual(&self, sample: &TimingSample) -> f64 {
        sample.observed.value() - self.evaluate(&sample.point, sample.ieff).value()
    }

    /// Mean absolute relative fitting error in percent.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn mean_relative_error_percent(&self, samples: &[TimingSample]) -> f64 {
        assert!(!samples.is_empty(), "fit error over empty sample set");
        100.0
            * samples
                .iter()
                .map(|s| (self.residual(s) / s.observed.value()).abs())
                .sum::<f64>()
            / samples.len() as f64
    }

    /// Gradient of the prediction with respect to the five parameters.
    pub fn gradient(&self, point: &InputPoint, ieff: Amperes) -> Vector {
        let i = ieff.value();
        let v_term = point.vdd.value() + self.base.v_prime;
        let c_eff = self.effective_capacitance(point);
        let base_grad = self.base.gradient(point, ieff);
        Vector::from_slice(&[
            v_term * c_eff / i,
            base_grad[1],
            self.base.kd * c_eff / i,
            base_grad[3],
            self.base.kd * v_term * GAMMA_TO_SI * point.sin.value() * point.cload.value() / i,
        ])
    }
}

impl Default for ExtendedTimingParams {
    fn default() -> Self {
        Self::initial_guess()
    }
}

impl fmt::Display for ExtendedTimingParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}, gamma = {:.4} 1/ps", self.base, self.gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slic_units::{Farads, Volts};

    fn point(sin_ps: f64, cload_ff: f64, vdd: f64) -> InputPoint {
        InputPoint::new(
            Seconds::from_picoseconds(sin_ps),
            Farads::from_femtofarads(cload_ff),
            Volts(vdd),
        )
    }

    #[test]
    fn zero_gamma_reduces_to_base_model() {
        let base = TimingParams::new(0.39, 1.0, -0.26, 0.09);
        let ext = ExtendedTimingParams::new(base, 0.0);
        let pt = point(5.0, 2.0, 0.8);
        let ieff = Amperes(40e-6);
        assert!((ext.evaluate(&pt, ieff).value() - base.evaluate(&pt, ieff).value()).abs() < 1e-30);
    }

    #[test]
    fn cross_term_adds_capacitance() {
        let base = TimingParams::new(0.39, 1.0, -0.26, 0.09);
        let with_cross = ExtendedTimingParams::new(base, 0.01);
        let pt = point(10.0, 4.0, 0.8);
        // gamma * Sin * Cload = 0.01/ps * 10 ps * 4 fF = 0.4 fF extra.
        let extra = with_cross.effective_capacitance(&pt) - base.effective_capacitance(&pt).value();
        assert!((extra - 0.4e-15).abs() < 1e-20, "extra = {extra}");
        assert!(with_cross.evaluate(&pt, Amperes(40e-6)) > base.evaluate(&pt, Amperes(40e-6)));
    }

    #[test]
    fn vector_round_trip() {
        let ext = ExtendedTimingParams::new(TimingParams::new(0.4, 1.1, -0.2, 0.05), 0.02);
        let back = ExtendedTimingParams::from_vector(&ext.to_vector());
        assert_eq!(ext, back);
    }

    #[test]
    #[should_panic(expected = "5 entries")]
    fn wrong_vector_length_rejected() {
        let _ = ExtendedTimingParams::from_vector(&Vector::zeros(4));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let ext = ExtendedTimingParams::new(TimingParams::new(0.39, 1.0, -0.26, 0.09), 0.015);
        let pt = point(7.0, 2.5, 0.75);
        let ieff = Amperes(35e-6);
        let analytic = ext.gradient(&pt, ieff);
        let h = 1e-6;
        let base_vec = ext.to_vector();
        for j in 0..EXTENDED_PARAM_COUNT {
            let mut plus = base_vec.clone();
            plus[j] += h;
            let mut minus = base_vec.clone();
            minus[j] -= h;
            let fd = (ExtendedTimingParams::from_vector(&plus)
                .evaluate(&pt, ieff)
                .value()
                - ExtendedTimingParams::from_vector(&minus)
                    .evaluate(&pt, ieff)
                    .value())
                / (2.0 * h);
            let denom = analytic[j].abs().max(1e-30);
            assert!(
                (analytic[j] - fd).abs() / denom < 1e-4,
                "component {j}: analytic {}, fd {fd}",
                analytic[j]
            );
        }
    }

    #[test]
    fn residual_and_error_metrics() {
        let ext = ExtendedTimingParams::new(TimingParams::new(0.39, 1.0, -0.26, 0.09), 0.01);
        let pt = point(5.0, 2.0, 0.8);
        let ieff = Amperes(40e-6);
        let truth = ext.evaluate(&pt, ieff);
        let sample = TimingSample::new(pt, ieff, truth);
        assert!(ext.residual(&sample).abs() < 1e-25);
        assert!(ext.mean_relative_error_percent(&[sample]) < 1e-9);
    }

    #[test]
    fn display_mentions_gamma() {
        let text = format!("{}", ExtendedTimingParams::initial_guess());
        assert!(text.contains("gamma"));
    }
}
