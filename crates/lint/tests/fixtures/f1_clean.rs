//! F1 must-not-fire: integer equality, non-float derives, epsilon comparisons.

#[derive(Hash, PartialEq, Eq)]
struct IntKeyed {
    width_nm: u64,
    name: String,
}

fn compare(x: f64, y: f64, n: u32) -> bool {
    if n == 3 {
        return true;
    }
    // The sanctioned float comparison: tolerance, not equality.
    (x - y).abs() < 1e-12
}
