//! `slic-farm` — the distributed simulation farm.
//!
//! The paper's premise is that transient simulation is the scarce resource: belief
//! propagation exists to spend fewer sims.  This crate makes the sims that *are* spent a
//! distributed workload.  It turns the engine's
//! [`SimulationBackend`](slic_spice::SimulationBackend) boundary into a client/server
//! system with three pieces:
//!
//! * [`wire`] — the versioned JSON-lines protocol: one message per line over TCP or
//!   stdio, floats as the same hex-exact bit patterns
//!   [`SimKey`](slic_spice::SimKey)/`DiskSimCache` use, and a handshake that pins both
//!   the protocol version and the transient-kernel version so mixed-kernel fleets are
//!   rejected instead of silently blending solver generations into one artifact;
//! * [`worker`] — the stateless serve loop behind `slic worker`: decode a batch, solve it
//!   through the in-process [`LocalBackend`](slic_spice::LocalBackend), stream the
//!   results back;
//! * [`broker`] — [`FarmBackend`], the engine-facing client: work-stealing dispatch over
//!   N workers, per-worker health tracking, retry-on-another-worker failover, and an
//!   in-process fallback so a run completes even if the whole fleet dies.
//!
//! Around those sits the **resilience layer** (PR 8): [`backoff`] (seeded, deterministic
//! exponential re-dial schedules), heartbeat `ping`/`pong` probes between batches, a
//! per-job retry budget with a degradation ladder (retry elsewhere → wait for
//! re-admission → local fallback), and [`fault`] — a seeded [`FaultPlan`] a worker can
//! run to misbehave deterministically, so every recovery path is exercised end-to-end in
//! tests and CI.  A dead worker is no longer dead forever: the broker re-dials it with
//! backoff and re-admits it after a fresh [`Hello`] handshake.
//!
//! Because the engine keeps its counter / cache / single-flight layering on its own side
//! of the backend boundary, a farm run pays each unique simulation coordinate exactly
//! once across the whole fleet and produces a `RunArtifact` byte-identical to a local
//! run's — the acceptance bar every transport change in this crate is tested against.
//!
//! ```no_run
//! use slic_farm::FarmBackend;
//! use std::sync::Arc;
//!
//! // Two workers started elsewhere with `slic worker --listen <addr>`:
//! let farm = FarmBackend::connect(&[
//!     "10.0.0.5:9200".to_string(),
//!     "10.0.0.6:9200".to_string(),
//! ])
//! .expect("workers reachable and kernel-compatible");
//! let engine = slic_spice::CharacterizationEngine::new(slic_device::TechnologyNode::n14_finfet())
//!     .with_backend(Arc::new(farm));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod broker;
pub mod fault;
pub mod wire;
pub mod worker;

pub use backoff::{splitmix64, BackoffPolicy};
pub use broker::{FarmBackend, FarmStats, FarmTuning};
pub use fault::FaultPlan;
pub use wire::{Hello, Message, WireError, WireRequest, WireResultEntry, PROTOCOL_VERSION};
pub use worker::{serve_connection, serve_listener, serve_stdio, ServeOutcome, WorkerOptions};

use std::fmt;

/// Anything that can go wrong building or driving a worker fleet.
#[derive(Debug)]
pub enum FarmError {
    /// Neither addresses nor a spawn count were given.
    NoWorkers,
    /// A TCP worker could not be reached.
    Connect(String, String),
    /// A subprocess worker could not be started.
    Spawn(String),
    /// A worker's handshake failed or revealed an incompatible build.
    Handshake(String, String),
    /// A round trip failed at the transport level.
    Transport(String, String),
    /// A worker replied with something other than the expected results.
    Protocol(String, String),
    /// A dispatch was attempted against a worker already marked dead.
    WorkerDown(String),
}

impl fmt::Display for FarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FarmError::NoWorkers => {
                write!(
                    f,
                    "a farm needs at least one worker (addresses or a spawn count)"
                )
            }
            FarmError::Connect(worker, err) => write!(f, "cannot connect to `{worker}`: {err}"),
            FarmError::Spawn(err) => write!(f, "cannot spawn worker: {err}"),
            FarmError::Handshake(worker, err) => {
                write!(f, "handshake with `{worker}` failed: {err}")
            }
            FarmError::Transport(worker, err) => write!(f, "worker `{worker}` transport: {err}"),
            FarmError::Protocol(worker, err) => {
                write!(f, "worker `{worker}` protocol violation: {err}")
            }
            FarmError::WorkerDown(worker) => write!(f, "worker `{worker}` is down"),
        }
    }
}

impl std::error::Error for FarmError {}
