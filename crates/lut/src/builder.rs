//! Filling nominal and statistical LUTs from the characterization engine.

use crate::table::Lut3d;
use serde::{Deserialize, Serialize};
use slic_cells::{Cell, TimingArc};
use slic_device::ProcessSample;
use slic_spice::{CharacterizationEngine, InputPoint, InputSpace, TimingMeasurement};
use slic_stats::moments;
use slic_units::{Farads, Seconds, Volts};

/// Splits a simulation budget of `k` runs into grid levels `(sin, cload, vdd)` with
/// `sin·cload·vdd ≤ k`, keeping the factors as balanced as possible and prioritizing the
/// slew and load axes (delay is more sensitive to them than to `Vdd` over the paper's
/// ranges — the same priority a production LUT uses).
pub fn grid_levels_for_budget(k: usize) -> (usize, usize, usize) {
    assert!(k > 0, "LUT budget must be at least one simulation");
    let mut best = (1usize, 1usize, 1usize);
    let mut best_count = 1usize;
    let mut best_imbalance = 0usize;
    for a in 1..=k {
        for b in 1..=a {
            let c_max = k / (a * b);
            if c_max == 0 {
                continue;
            }
            let c = c_max.min(b);
            let count = a * b * c;
            let imbalance = a - c;
            let better = count > best_count || (count == best_count && imbalance < best_imbalance);
            if better {
                best = (a, b, c);
                best_count = count;
                best_imbalance = imbalance;
            }
        }
    }
    best
}

/// A nominal (no process variation) delay/slew table pair for one timing arc.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NominalLut {
    /// Delay table (seconds).
    pub delay: Lut3d,
    /// Output-slew table (seconds).
    pub slew: Lut3d,
    /// Number of transient simulations spent building the tables.
    pub simulation_cost: u64,
}

impl NominalLut {
    /// Interpolated delay and slew prediction at an arbitrary input point.
    pub fn predict(&self, point: &InputPoint) -> TimingMeasurement {
        TimingMeasurement::new(
            Seconds(self.delay.interpolate(point)),
            Seconds(self.slew.interpolate(point)),
        )
    }
}

/// A statistical table pair: mean and standard deviation of delay and slew per grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatisticalLut {
    /// Mean delay table (seconds).
    pub mean_delay: Lut3d,
    /// Delay standard-deviation table (seconds).
    pub std_delay: Lut3d,
    /// Mean output-slew table (seconds).
    pub mean_slew: Lut3d,
    /// Output-slew standard-deviation table (seconds).
    pub std_slew: Lut3d,
    /// Number of transient simulations spent building the tables.
    pub simulation_cost: u64,
}

impl StatisticalLut {
    /// Interpolated `(mean delay, σ delay, mean slew, σ slew)` at an arbitrary input point.
    pub fn predict(&self, point: &InputPoint) -> (f64, f64, f64, f64) {
        (
            self.mean_delay.interpolate(point),
            self.std_delay.interpolate(point),
            self.mean_slew.interpolate(point),
            self.std_slew.interpolate(point),
        )
    }
}

/// Builds LUTs by driving a [`CharacterizationEngine`].
#[derive(Debug, Clone)]
pub struct LutBuilder<'a> {
    engine: &'a CharacterizationEngine,
    space: InputSpace,
}

impl<'a> LutBuilder<'a> {
    /// Creates a builder over the engine's default input space.
    pub fn new(engine: &'a CharacterizationEngine) -> Self {
        Self {
            engine,
            space: engine.input_space(),
        }
    }

    /// Creates a builder over an explicit input space.
    pub fn with_space(engine: &'a CharacterizationEngine, space: InputSpace) -> Self {
        Self { engine, space }
    }

    /// The input space the grids are laid over.
    pub fn space(&self) -> &InputSpace {
        &self.space
    }

    fn axes(&self, levels: (usize, usize, usize)) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let axis = |lo: f64, hi: f64, n: usize| -> Vec<f64> {
            if n == 1 {
                vec![0.5 * (lo + hi)]
            } else {
                (0..n)
                    .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
                    .collect()
            }
        };
        let (slo, shi) = self.space.sin_range();
        let (clo, chi) = self.space.cload_range();
        let (vlo, vhi) = self.space.vdd_range();
        (
            axis(slo.value(), shi.value(), levels.0),
            axis(clo.value(), chi.value(), levels.1),
            axis(vlo.value(), vhi.value(), levels.2),
        )
    }

    /// Builds a nominal LUT for one arc with an explicit grid shape.
    pub fn build_nominal(
        &self,
        cell: Cell,
        arc: &TimingArc,
        levels: (usize, usize, usize),
    ) -> NominalLut {
        let before = self.engine.simulation_count();
        let (sin_axis, cload_axis, vdd_axis) = self.axes(levels);
        let mut delays = Vec::new();
        let mut slews = Vec::new();
        for &s in &sin_axis {
            for &c in &cload_axis {
                for &v in &vdd_axis {
                    let point = InputPoint::new(Seconds(s), Farads(c), Volts(v));
                    let m = self.engine.simulate_nominal(cell, arc, &point);
                    delays.push(m.delay.value());
                    slews.push(m.output_slew.value());
                }
            }
        }
        NominalLut {
            delay: Lut3d::from_values(
                sin_axis.clone(),
                cload_axis.clone(),
                vdd_axis.clone(),
                delays,
            ),
            slew: Lut3d::from_values(sin_axis, cload_axis, vdd_axis, slews),
            simulation_cost: self.engine.simulation_count() - before,
        }
    }

    /// Builds a nominal LUT whose grid uses at most `budget` simulations.
    pub fn build_nominal_with_budget(
        &self,
        cell: Cell,
        arc: &TimingArc,
        budget: usize,
    ) -> NominalLut {
        self.build_nominal(cell, arc, grid_levels_for_budget(budget))
    }

    /// Builds a statistical LUT for one arc: every grid point is simulated under every
    /// process seed and the per-point mean / standard deviation are stored.
    pub fn build_statistical(
        &self,
        cell: Cell,
        arc: &TimingArc,
        levels: (usize, usize, usize),
        seeds: &[ProcessSample],
    ) -> StatisticalLut {
        assert!(
            !seeds.is_empty(),
            "statistical LUT needs at least one process seed"
        );
        let before = self.engine.simulation_count();
        let (sin_axis, cload_axis, vdd_axis) = self.axes(levels);
        let mut mean_d = Vec::new();
        let mut std_d = Vec::new();
        let mut mean_s = Vec::new();
        let mut std_s = Vec::new();
        for &s in &sin_axis {
            for &c in &cload_axis {
                for &v in &vdd_axis {
                    let point = InputPoint::new(Seconds(s), Farads(c), Volts(v));
                    let ensemble = self.engine.monte_carlo(cell, arc, &point, seeds);
                    let delays: Vec<f64> = ensemble.iter().map(|m| m.delay.value()).collect();
                    let slews: Vec<f64> = ensemble.iter().map(|m| m.output_slew.value()).collect();
                    mean_d.push(moments::mean(&delays));
                    std_d.push(moments::std_dev(&delays));
                    mean_s.push(moments::mean(&slews));
                    std_s.push(moments::std_dev(&slews));
                }
            }
        }
        StatisticalLut {
            mean_delay: Lut3d::from_values(
                sin_axis.clone(),
                cload_axis.clone(),
                vdd_axis.clone(),
                mean_d,
            ),
            std_delay: Lut3d::from_values(
                sin_axis.clone(),
                cload_axis.clone(),
                vdd_axis.clone(),
                std_d,
            ),
            mean_slew: Lut3d::from_values(
                sin_axis.clone(),
                cload_axis.clone(),
                vdd_axis.clone(),
                mean_s,
            ),
            std_slew: Lut3d::from_values(sin_axis, cload_axis, vdd_axis, std_s),
            simulation_cost: self.engine.simulation_count() - before,
        }
    }

    /// Builds a statistical LUT whose grid uses at most `budget` input conditions (the total
    /// simulation cost is `grid size × seeds.len()`).
    pub fn build_statistical_with_budget(
        &self,
        cell: Cell,
        arc: &TimingArc,
        budget: usize,
        seeds: &[ProcessSample],
    ) -> StatisticalLut {
        self.build_statistical(cell, arc, grid_levels_for_budget(budget), seeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use slic_cells::{CellKind, DriveStrength, Transition};
    use slic_device::TechnologyNode;
    use slic_spice::TransientConfig;

    fn engine() -> CharacterizationEngine {
        CharacterizationEngine::with_config(TechnologyNode::n14_finfet(), TransientConfig::fast())
            .expect("valid transient configuration")
    }

    fn inv_fall() -> (Cell, TimingArc) {
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        (cell, TimingArc::new(cell, 0, Transition::Fall))
    }

    #[test]
    fn budget_split_is_balanced_and_within_budget() {
        assert_eq!(grid_levels_for_budget(1), (1, 1, 1));
        assert_eq!(grid_levels_for_budget(2), (2, 1, 1));
        assert_eq!(grid_levels_for_budget(8), (2, 2, 2));
        assert_eq!(grid_levels_for_budget(12), (3, 2, 2));
        assert_eq!(grid_levels_for_budget(27), (3, 3, 3));
        for k in 1..=120 {
            let (a, b, c) = grid_levels_for_budget(k);
            assert!(a * b * c <= k, "budget {k} exceeded: {a}x{b}x{c}");
            assert!(a >= b && b >= c, "levels must be ordered: {a} {b} {c}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one simulation")]
    fn zero_budget_rejected() {
        let _ = grid_levels_for_budget(0);
    }

    #[test]
    fn nominal_lut_matches_direct_simulation_at_grid_nodes() {
        let eng = engine();
        let (cell, arc) = inv_fall();
        let lut = LutBuilder::new(&eng).build_nominal(cell, &arc, (3, 2, 2));
        assert_eq!(lut.simulation_cost, 12);
        assert_eq!(lut.delay.len(), 12);
        // The grid-node prediction equals the direct simulation.
        let node = InputPoint::new(
            Seconds(lut.delay.sin_axis()[0]),
            Farads(lut.delay.cload_axis()[1]),
            Volts(lut.delay.vdd_axis()[1]),
        );
        let direct = eng.simulate_nominal(cell, &arc, &node);
        let predicted = lut.predict(&node);
        assert!(
            (predicted.delay.value() - direct.delay.value()).abs() / direct.delay.value() < 1e-9
        );
        assert!(
            (predicted.output_slew.value() - direct.output_slew.value()).abs()
                / direct.output_slew.value()
                < 1e-9
        );
    }

    #[test]
    fn denser_nominal_lut_is_more_accurate() {
        let eng = engine();
        let (cell, arc) = inv_fall();
        let builder = LutBuilder::new(&eng);
        let coarse = builder.build_nominal_with_budget(cell, &arc, 4);
        let fine = builder.build_nominal_with_budget(cell, &arc, 60);
        // Validation points off the grid.
        let mut rng = StdRng::seed_from_u64(17);
        let validation = eng.input_space().sample_uniform(&mut rng, 40);
        let reference: Vec<TimingMeasurement> = validation
            .iter()
            .map(|p| eng.simulate_nominal(cell, &arc, p))
            .collect();
        let err = |lut: &NominalLut| -> f64 {
            validation
                .iter()
                .zip(&reference)
                .map(|(p, r)| {
                    let pred = lut.predict(p);
                    (pred.delay.value() - r.delay.value()).abs() / r.delay.value()
                })
                .sum::<f64>()
                / validation.len() as f64
        };
        assert!(
            err(&fine) < err(&coarse),
            "finer grid must interpolate better"
        );
        assert!(err(&fine) < 0.05, "60-point LUT should be within 5 %");
    }

    #[test]
    fn statistical_lut_reports_spread_and_cost() {
        let eng = engine();
        let (cell, arc) = inv_fall();
        let mut rng = StdRng::seed_from_u64(3);
        let seeds = eng.tech().variation().sample_n(&mut rng, 24);
        let lut = LutBuilder::new(&eng).build_statistical(cell, &arc, (2, 2, 1), &seeds);
        assert_eq!(lut.simulation_cost, 4 * 24);
        let probe = eng.input_space().center();
        let (md, sd, ms, ss) = lut.predict(&probe);
        assert!(md > 0.0 && ms > 0.0);
        assert!(
            sd > 0.0 && ss > 0.0,
            "process variation must produce spread"
        );
        assert!(
            sd < md && ss < ms,
            "spread should be a fraction of the mean"
        );
    }

    #[test]
    #[should_panic(expected = "at least one process seed")]
    fn statistical_lut_rejects_empty_seeds() {
        let eng = engine();
        let (cell, arc) = inv_fall();
        let _ = LutBuilder::new(&eng).build_statistical(cell, &arc, (1, 1, 1), &[]);
    }

    #[test]
    fn custom_space_is_respected() {
        let eng = engine();
        let space = InputSpace::new(
            (
                Seconds::from_picoseconds(2.0),
                Seconds::from_picoseconds(4.0),
            ),
            (Farads::from_femtofarads(1.0), Farads::from_femtofarads(2.0)),
            (Volts(0.7), Volts(0.9)),
        );
        let builder = LutBuilder::with_space(&eng, space);
        let (cell, arc) = inv_fall();
        let lut = builder.build_nominal(cell, &arc, (2, 2, 2));
        assert!((lut.delay.sin_axis()[0] - 2.0e-12).abs() < 1e-18);
        assert!((lut.delay.sin_axis()[1] - 4.0e-12).abs() < 1e-18);
        assert_eq!(builder.space().vdd_range(), (Volts(0.7), Volts(0.9)));
    }
}
