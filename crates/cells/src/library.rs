//! Cell-library containers.

use crate::arc::TimingArc;
use crate::cell::{Cell, CellKind, DriveStrength};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named collection of standard cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Library {
    name: String,
    cells: Vec<Cell>,
}

impl Library {
    /// Creates a library from an explicit cell list.  Duplicate cells are removed while
    /// preserving first-occurrence order.
    pub fn new(name: impl Into<String>, cells: impl IntoIterator<Item = Cell>) -> Self {
        let mut seen = Vec::new();
        for cell in cells {
            if !seen.contains(&cell) {
                seen.push(cell);
            }
        }
        Self {
            name: name.into(),
            cells: seen,
        }
    }

    /// The default experiment library: every supported kind at X1 plus the paper's
    /// INV/NAND2/NOR2 trio at X2.
    pub fn standard() -> Self {
        let mut cells: Vec<Cell> = CellKind::ALL
            .iter()
            .map(|&k| Cell::new(k, DriveStrength::X1))
            .collect();
        cells.extend(
            CellKind::PAPER_TRIO
                .iter()
                .map(|&k| Cell::new(k, DriveStrength::X2)),
        );
        Self::new("slic-standard", cells)
    }

    /// The minimal library used in the paper's figures: INV, NAND2 and NOR2 at unit drive.
    pub fn paper_trio() -> Self {
        Self::new(
            "paper-trio",
            CellKind::PAPER_TRIO
                .iter()
                .map(|&k| Cell::new(k, DriveStrength::X1)),
        )
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cells in catalogue order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` when the library has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Looks a cell up by its full name (e.g. `"NAND2_X1"`).
    pub fn find(&self, name: &str) -> Option<Cell> {
        self.cells.iter().copied().find(|c| c.name() == name)
    }

    /// Returns every primary timing arc (input pin 0, rise and fall) across the library.
    pub fn primary_arcs(&self) -> Vec<TimingArc> {
        self.cells
            .iter()
            .flat_map(|&c| TimingArc::primary_arcs(c))
            .collect()
    }

    /// Returns every timing arc (all pins, rise and fall) across the library.
    pub fn all_arcs(&self) -> Vec<TimingArc> {
        self.cells
            .iter()
            .flat_map(|&c| TimingArc::all_arcs(c))
            .collect()
    }

    /// Iterator over the cells.
    pub fn iter(&self) -> std::slice::Iter<'_, Cell> {
        self.cells.iter()
    }

    /// Looks a built-in library up by name: `"paper-trio"` or `"standard"`.
    ///
    /// This is the name → catalogue mapping used by run configs and the CLI.
    pub fn builtin(name: &str) -> Option<Self> {
        match name {
            "paper-trio" | "paper_trio" => Some(Self::paper_trio()),
            "standard" | "slic-standard" => Some(Self::standard()),
            _ => None,
        }
    }

    /// A sub-library containing only the cells whose kind name matches `pattern`
    /// (a case-insensitive glob supporting `*` and `?`, e.g. `"NAND*"`).
    pub fn filter_kinds(&self, pattern: &str) -> Self {
        Self {
            name: self.name.clone(),
            cells: self
                .cells
                .iter()
                .copied()
                .filter(|c| glob_match(pattern, c.kind().name()))
                .collect(),
        }
    }

    /// A sub-library containing only the cells at one of the given drive strengths.
    pub fn filter_drives(&self, drives: &[DriveStrength]) -> Self {
        Self {
            name: self.name.clone(),
            cells: self
                .cells
                .iter()
                .copied()
                .filter(|c| drives.contains(&c.drive()))
                .collect(),
        }
    }
}

/// Case-insensitive glob matching with `*` (any run) and `?` (any single character) — the
/// cell-kind selector used by characterization plans.
pub fn glob_match(pattern: &str, name: &str) -> bool {
    fn rec(pat: &[u8], txt: &[u8]) -> bool {
        match (pat.first(), txt.first()) {
            (None, None) => true,
            (Some(b'*'), _) => rec(&pat[1..], txt) || (!txt.is_empty() && rec(pat, &txt[1..])),
            (Some(b'?'), Some(_)) => rec(&pat[1..], &txt[1..]),
            (Some(p), Some(t)) => p.eq_ignore_ascii_case(t) && rec(&pat[1..], &txt[1..]),
            _ => false,
        }
    }
    rec(pattern.as_bytes(), name.as_bytes())
}

impl fmt::Display for Library {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} cells)", self.name, self.cells.len())
    }
}

impl<'a> IntoIterator for &'a Library {
    type Item = &'a Cell;
    type IntoIter = std::slice::Iter<'a, Cell>;
    fn into_iter(self) -> Self::IntoIter {
        self.cells.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_contents() {
        let lib = Library::standard();
        assert_eq!(lib.len(), CellKind::ALL.len() + 3);
        assert!(lib.find("INV_X1").is_some());
        assert!(lib.find("NAND2_X2").is_some());
        assert!(lib.find("NAND3_X4").is_none());
        assert!(!lib.is_empty());
        assert_eq!(lib.name(), "slic-standard");
    }

    #[test]
    fn paper_trio_library() {
        let lib = Library::paper_trio();
        assert_eq!(lib.len(), 3);
        let names: Vec<String> = lib.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["INV_X1", "NAND2_X1", "NOR2_X1"]);
    }

    #[test]
    fn duplicates_are_removed() {
        let c = Cell::new(CellKind::Inv, DriveStrength::X1);
        let lib = Library::new("dups", vec![c, c, c]);
        assert_eq!(lib.len(), 1);
    }

    #[test]
    fn arc_enumeration() {
        let lib = Library::paper_trio();
        assert_eq!(lib.primary_arcs().len(), 6);
        // INV: 2 arcs, NAND2: 4, NOR2: 4.
        assert_eq!(lib.all_arcs().len(), 10);
    }

    #[test]
    fn display_and_iteration() {
        let lib = Library::paper_trio();
        assert!(format!("{lib}").contains("3 cells"));
        assert_eq!((&lib).into_iter().count(), 3);
    }

    #[test]
    fn builtin_lookup() {
        assert_eq!(Library::builtin("paper-trio").unwrap().len(), 3);
        assert_eq!(
            Library::builtin("standard").unwrap().len(),
            Library::standard().len()
        );
        assert!(Library::builtin("no-such-library").is_none());
    }

    #[test]
    fn kind_and_drive_filters() {
        let lib = Library::standard();
        let nands = lib.filter_kinds("NAND*");
        assert!(nands.iter().all(|c| c.kind().name().starts_with("NAND")));
        assert_eq!(nands.len(), 3, "NAND2_X1, NAND3_X1, NAND2_X2");
        let x2 = lib.filter_drives(&[DriveStrength::X2]);
        assert_eq!(x2.len(), 3, "the paper trio at X2");
        assert!(
            lib.filter_kinds("inv").find("INV_X1").is_some(),
            "matching is case-insensitive"
        );
        assert!(lib.filter_kinds("XYZ*").is_empty());
    }

    #[test]
    fn glob_matching_semantics() {
        assert!(glob_match("NAND*", "NAND2"));
        assert!(glob_match("*", "ANYTHING"));
        assert!(glob_match("N?R2", "NOR2"));
        assert!(glob_match("inv", "INV"));
        assert!(!glob_match("NAND", "NAND2"));
        assert!(!glob_match("N?R2", "NAND2"));
        assert!(glob_match("*2", "NOR2"));
    }
}
