//! Work-unit enumeration: from a library and a resolved config to a flat, parallelizable
//! list of `(cell, arc, metric, method, kind)` units.

use crate::config::ResolvedConfig;
use crate::error::PipelineError;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use slic::nominal::MethodKind;
use slic_bayes::TimingMetric;
use slic_cells::{Cell, Library, TimingArc};
use std::fmt;

/// What a work unit characterizes: the nominal corner, or the Monte Carlo process
/// ensemble reduced to moment tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnitKind {
    /// Nominal-corner extraction (the original workload).
    Nominal,
    /// Monte Carlo variation: every export-grid point under every process seed, reduced
    /// to a mean/sigma/skew [`VariationTable`](slic_variation::VariationTable).
    MonteCarlo,
}

impl fmt::Display for UnitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitKind::Nominal => f.write_str("nominal"),
            UnitKind::MonteCarlo => f.write_str("monte-carlo"),
        }
    }
}

// Hand-written (not derived) so `absent_field` can default to `Nominal`: plans and
// artifacts persisted before the kind dimension existed were nominal-only, and must keep
// loading.
impl Serialize for UnitKind {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for UnitKind {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        match value
            .as_str()
            .ok_or_else(|| SerdeError::expected("string", value))?
        {
            "nominal" => Ok(UnitKind::Nominal),
            "monte-carlo" => Ok(UnitKind::MonteCarlo),
            other => Err(SerdeError::custom(format!(
                "unknown unit kind `{other}` (expected `nominal` or `monte-carlo`)"
            ))),
        }
    }

    fn absent_field(_name: &str) -> Result<Self, SerdeError> {
        Ok(UnitKind::Nominal)
    }
}

/// The stable identity shared by a [`WorkUnit`] and its
/// [`UnitResult`](crate::artifact::UnitResult) — the shard-hash input, merge key and
/// canonical sort key.
///
/// Nominal units keep the pre-variation format (`"ARC#metric#Method"`) so shard
/// assignments of existing plans are unchanged; Monte Carlo units append a kind marker
/// (the extraction method does not apply to direct moment estimation).
pub fn unit_identity(
    arc_id: &str,
    metric: TimingMetric,
    method: MethodKind,
    kind: UnitKind,
) -> String {
    match kind {
        UnitKind::Nominal => format!("{arc_id}#{metric}#{method:?}"),
        UnitKind::MonteCarlo => format!("{arc_id}#{metric}#MonteCarlo"),
    }
}

/// One independently executable unit of characterization work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkUnit {
    /// The cell being characterized.
    pub cell: Cell,
    /// The timing arc.
    pub arc: TimingArc,
    /// The timing quantity.
    pub metric: TimingMetric,
    /// The extraction method (for Monte Carlo units a placeholder; direct moment
    /// estimation has no extraction method).
    pub method: MethodKind,
    /// Nominal extraction or Monte Carlo variation.
    pub kind: UnitKind,
}

impl WorkUnit {
    /// Stable identifier, e.g. `"NAND2_X1/A0/FALL#delay#ProposedBayesian"` (nominal) or
    /// `"NAND2_X1/A0/FALL#delay#MonteCarlo"` (variation).
    pub fn id(&self) -> String {
        unit_identity(&self.arc.id(), self.metric, self.method, self.kind)
    }

    /// Deterministic sampling seed shared by every unit of the same arc.
    ///
    /// Sharing across metrics *and* methods is deliberate: all units of one arc then
    /// request identical training/validation sweeps, so the simulation cache serves every
    /// unit after the first for free (one transient yields both measurements), and the
    /// per-method errors in the artifact are measured on the same validation set and are
    /// directly comparable.
    pub fn sampling_seed(&self, run_seed: u64) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in self.arc.id().bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash ^ run_seed
    }

    /// The shard (out of `shards`) this unit belongs to.
    ///
    /// The assignment is a pure function of the unit's `(arc, metric, method)` identity —
    /// never of its position in a plan — so any worker that enumerates any plan containing
    /// this unit agrees on who owns it, and re-filtered or re-ordered plans still split
    /// into disjoint, stable shards.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn shard_of(&self, shards: usize) -> usize {
        assert!(shards > 0, "a plan cannot be split into zero shards");
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in self.id().bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // Avalanche finalizer (splitmix64): FNV-1a's low bit is a plain parity of the
        // input bytes, so `hash % shards` alone can collapse whole plans onto one shard
        // (every unit id of a default plan has equal byte parity). Mixing spreads every
        // input bit over the low bits the modulo actually consumes.
        hash ^= hash >> 30;
        hash = hash.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        hash ^= hash >> 27;
        hash = hash.wrapping_mul(0x94d0_49bb_1331_11eb);
        hash ^= hash >> 31;
        (hash % shards as u64) as usize
    }
}

/// The full enumeration of work units for one run — or one shard of it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationPlan {
    library_name: String,
    /// Size of the *full* run this plan belongs to: `units.len()` for an enumerated plan,
    /// the parent's total for a shard.  Lets a merge detect missing shards.
    planned_units: usize,
    units: Vec<WorkUnit>,
}

impl CharacterizationPlan {
    /// Enumerates `cells × primary arcs × metrics × methods` from a resolved
    /// configuration — plus one Monte Carlo unit per `(arc, metric)` when the
    /// configuration enables variation.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError::Config`] when the enumeration is empty.
    pub fn from_config(config: &ResolvedConfig) -> Result<Self, PipelineError> {
        Self::enumerate_with_variation(
            &config.library,
            &config.metrics,
            &config.methods,
            config.variation.is_some(),
        )
    }

    /// Enumerates a nominal-only plan from explicit parts (the library is assumed
    /// pre-filtered).
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError::Config`] when the enumeration is empty.
    pub fn enumerate(
        library: &Library,
        metrics: &[TimingMetric],
        methods: &[MethodKind],
    ) -> Result<Self, PipelineError> {
        Self::enumerate_with_variation(library, metrics, methods, false)
    }

    /// [`enumerate`](Self::enumerate) with an optional Monte Carlo dimension: when
    /// `variation` is set, every `(cell, arc, metric)` additionally plans one
    /// [`UnitKind::MonteCarlo`] unit.  Delay and slew variation units of one arc request
    /// identical `(seed, point)` sweeps, so — exactly like the nominal metric pairing —
    /// the simulation cache serves the second for free.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError::Config`] when the enumeration is empty.
    pub fn enumerate_with_variation(
        library: &Library,
        metrics: &[TimingMetric],
        methods: &[MethodKind],
        variation: bool,
    ) -> Result<Self, PipelineError> {
        let mut units = Vec::new();
        for &cell in library.cells() {
            for arc in TimingArc::primary_arcs(cell) {
                for &metric in metrics {
                    for &method in methods {
                        units.push(WorkUnit {
                            cell,
                            arc,
                            metric,
                            method,
                            kind: UnitKind::Nominal,
                        });
                    }
                    if variation {
                        units.push(WorkUnit {
                            cell,
                            arc,
                            metric,
                            // Direct moment estimation has no extraction method; the
                            // placeholder never reaches the unit identity.
                            method: MethodKind::Lut,
                            kind: UnitKind::MonteCarlo,
                        });
                    }
                }
            }
        }
        if units.is_empty() {
            return Err(PipelineError::config(
                "characterization plan is empty (no cells, metrics or methods selected)",
            ));
        }
        Ok(Self {
            library_name: library.name().to_string(),
            planned_units: units.len(),
            units,
        })
    }

    /// Splits the plan into `shards` disjoint sub-plans for distributed execution.
    ///
    /// Every unit lands in exactly one shard, chosen by [`WorkUnit::shard_of`] — a stable
    /// hash of the unit's `(arc, metric, method)` identity — so shard membership survives
    /// re-enumeration and does not depend on unit order.  Shards may be empty when
    /// `shards` exceeds the number of units; running an empty shard is a no-op and merging
    /// it is harmless.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError::Config`] when `shards` is zero.
    pub fn split(&self, shards: usize) -> Result<Vec<CharacterizationPlan>, PipelineError> {
        if shards == 0 {
            return Err(PipelineError::config(
                "cannot split a plan into zero shards",
            ));
        }
        let mut parts: Vec<Vec<WorkUnit>> = vec![Vec::new(); shards];
        for unit in &self.units {
            parts[unit.shard_of(shards)].push(*unit);
        }
        Ok(parts
            .into_iter()
            .map(|units| Self {
                library_name: self.library_name.clone(),
                planned_units: self.planned_units,
                units,
            })
            .collect())
    }

    /// The units in execution order.
    pub fn units(&self) -> &[WorkUnit] {
        &self.units
    }

    /// Number of units in this plan (for a shard: in this shard).
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Number of units in the full run this plan belongs to: [`len`](Self::len) for an
    /// enumerated plan, the parent plan's total for a shard.  Shard artifacts carry this
    /// so [`RunArtifact::merge`](crate::artifact::RunArtifact::merge) can detect a
    /// missing shard.
    pub fn planned_units(&self) -> usize {
        self.planned_units
    }

    /// Returns `true` when the plan holds no units — possible only for a shard of a
    /// [`split`](Self::split) with more shards than units; enumeration rejects emptiness.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Name of the library the plan was enumerated from.
    pub fn library_name(&self) -> &str {
        &self.library_name
    }

    /// The distinct arcs covered by the plan, in first-appearance order.
    pub fn arcs(&self) -> Vec<TimingArc> {
        let mut arcs = Vec::new();
        for unit in &self.units {
            if !arcs.contains(&unit.arc) {
                arcs.push(unit.arc);
            }
        }
        arcs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunConfig;

    #[test]
    fn default_plan_covers_trio_both_metrics() {
        let config = RunConfig::default().resolve().unwrap();
        let plan = CharacterizationPlan::from_config(&config).unwrap();
        // 3 cells x 2 primary arcs x 2 metrics x 1 method.
        assert_eq!(plan.len(), 12);
        assert_eq!(plan.arcs().len(), 6);
        assert_eq!(plan.library_name(), "paper-trio");
        assert!(!plan.is_empty());
    }

    #[test]
    fn filters_shrink_the_plan() {
        let config = RunConfig {
            library: Some("standard".into()),
            cell_pattern: Some("INV".into()),
            drives: Some(vec!["X1".into()]),
            metrics: Some(vec!["delay".into()]),
            methods: Some(vec!["bayesian".into(), "lse".into()]),
            ..Default::default()
        }
        .resolve()
        .unwrap();
        let plan = CharacterizationPlan::from_config(&config).unwrap();
        // 1 cell (INV_X1; the standard library also has INV_X2) x 2 arcs x 1 metric x 2 methods.
        assert_eq!(plan.len(), 4);
        assert!(plan.units().iter().all(|u| u.cell.kind().name() == "INV"));
    }

    #[test]
    fn sampling_seeds_pair_metrics_and_separate_arcs() {
        let config = RunConfig::default().resolve().unwrap();
        let plan = CharacterizationPlan::from_config(&config).unwrap();
        let units = plan.units();
        let delay = units
            .iter()
            .find(|u| u.metric == TimingMetric::Delay)
            .unwrap();
        let slew = units
            .iter()
            .find(|u| u.arc == delay.arc && u.metric == TimingMetric::OutputSlew)
            .unwrap();
        assert_eq!(
            delay.sampling_seed(1),
            slew.sampling_seed(1),
            "metrics of one arc must share sampling points for cache reuse"
        );
        let lse_twin = WorkUnit {
            method: MethodKind::ProposedLse,
            ..*delay
        };
        assert_eq!(
            delay.sampling_seed(1),
            lse_twin.sampling_seed(1),
            "methods of one arc must share sampling points so their errors are comparable"
        );
        let other = units.iter().find(|u| u.arc != delay.arc).unwrap();
        assert_ne!(delay.sampling_seed(1), other.sampling_seed(1));
        assert_ne!(delay.sampling_seed(1), delay.sampling_seed(2));
    }

    #[test]
    fn split_covers_every_unit_exactly_once() {
        let config = RunConfig::default().resolve().unwrap();
        let plan = CharacterizationPlan::from_config(&config).unwrap();
        for shards in [1usize, 2, 3, 4, 7, 20] {
            let parts = plan.split(shards).unwrap();
            assert_eq!(parts.len(), shards);
            let mut ids: Vec<String> = parts
                .iter()
                .flat_map(|p| p.units().iter().map(WorkUnit::id))
                .collect();
            ids.sort();
            let mut expected: Vec<String> = plan.units().iter().map(WorkUnit::id).collect();
            expected.sort();
            assert_eq!(ids, expected, "split({shards}) must partition the plan");
            for (index, part) in parts.iter().enumerate() {
                assert_eq!(part.library_name(), plan.library_name());
                assert!(part.units().iter().all(|u| u.shard_of(shards) == index));
            }
        }
    }

    #[test]
    fn shard_assignment_is_stable_across_plans() {
        let full = RunConfig::default().resolve().unwrap();
        let filtered = RunConfig {
            cell_pattern: Some("INV".into()),
            ..Default::default()
        }
        .resolve()
        .unwrap();
        let full_plan = CharacterizationPlan::from_config(&full).unwrap();
        let inv_plan = CharacterizationPlan::from_config(&filtered).unwrap();
        for unit in inv_plan.units() {
            let twin = full_plan
                .units()
                .iter()
                .find(|u| u.id() == unit.id())
                .expect("filtered plan is a subset");
            assert_eq!(unit.shard_of(4), twin.shard_of(4));
        }
    }

    #[test]
    fn default_plan_actually_distributes() {
        // Guards the avalanche finalizer in `shard_of`: with a plain FNV hash the default
        // plan's unit ids all share byte parity and `split(2)` put all 12 units in one
        // shard. Every shard of the small splits must receive work.
        let config = RunConfig::default().resolve().unwrap();
        let plan = CharacterizationPlan::from_config(&config).unwrap();
        for shards in [2usize, 4] {
            let parts = plan.split(shards).unwrap();
            assert!(
                parts.iter().all(|p| !p.is_empty()),
                "split({shards}) sizes: {:?}",
                parts
                    .iter()
                    .map(CharacterizationPlan::len)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn variation_adds_one_monte_carlo_unit_per_arc_and_metric() {
        let config = RunConfig {
            variation: Some(crate::config::VariationKnobs::default()),
            ..RunConfig::default()
        }
        .resolve()
        .unwrap();
        let plan = CharacterizationPlan::from_config(&config).unwrap();
        // 12 nominal units + 3 cells x 2 arcs x 2 metrics Monte Carlo units.
        assert_eq!(plan.len(), 24);
        assert_eq!(plan.planned_units(), 24);
        let mc: Vec<&WorkUnit> = plan
            .units()
            .iter()
            .filter(|u| u.kind == UnitKind::MonteCarlo)
            .collect();
        assert_eq!(mc.len(), 12);
        for unit in &mc {
            assert!(unit.id().ends_with("#MonteCarlo"), "{}", unit.id());
        }
        // Nominal identities are untouched by the new dimension, so shard membership of
        // pre-variation plans is stable.
        let nominal_only = RunConfig::default().resolve().unwrap();
        let nominal_plan = CharacterizationPlan::from_config(&nominal_only).unwrap();
        for unit in nominal_plan.units() {
            let twin = plan
                .units()
                .iter()
                .find(|u| u.id() == unit.id())
                .expect("nominal units persist in a variation plan");
            assert_eq!(unit.shard_of(4), twin.shard_of(4));
            assert!(!unit.id().contains("MonteCarlo"));
        }
        // Monte Carlo units distribute across shards like any other unit.
        let parts = plan.split(4).unwrap();
        let mc_shards = parts
            .iter()
            .filter(|p| p.units().iter().any(|u| u.kind == UnitKind::MonteCarlo))
            .count();
        assert!(mc_shards >= 2, "MC units must spread over shards");
    }

    #[test]
    fn unit_kind_serializes_and_defaults_to_nominal_when_absent() {
        let config = RunConfig {
            variation: Some(crate::config::VariationKnobs::default()),
            ..RunConfig::default()
        }
        .resolve()
        .unwrap();
        let plan = CharacterizationPlan::from_config(&config).unwrap();
        let text = serde_json::to_string(&plan).unwrap();
        let back: CharacterizationPlan = serde_json::from_str(&text).unwrap();
        assert_eq!(back, plan);
        // A unit persisted before the kind field existed deserializes as nominal.
        let nominal = plan
            .units()
            .iter()
            .find(|u| u.kind == UnitKind::Nominal)
            .unwrap();
        let unit_text = serde_json::to_string(nominal).unwrap();
        let legacy_text = unit_text.replace(",\"kind\":\"nominal\"", "");
        assert_ne!(legacy_text, unit_text, "the kind field is persisted");
        let legacy: WorkUnit = serde_json::from_str(&legacy_text).unwrap();
        assert_eq!(legacy, *nominal);
        assert!(
            serde_json::from_str::<WorkUnit>(&unit_text.replace("\"nominal\"", "\"warp\""))
                .is_err()
        );
    }

    #[test]
    fn zero_shards_is_rejected() {
        let config = RunConfig::default().resolve().unwrap();
        let plan = CharacterizationPlan::from_config(&config).unwrap();
        assert!(plan
            .split(0)
            .unwrap_err()
            .to_string()
            .contains("zero shards"));
    }

    #[test]
    fn plan_serializes() {
        let config = RunConfig::default().resolve().unwrap();
        let plan = CharacterizationPlan::from_config(&config).unwrap();
        let text = serde_json::to_string(&plan).unwrap();
        let back: CharacterizationPlan = serde_json::from_str(&text).unwrap();
        assert_eq!(plan, back);
    }
}
