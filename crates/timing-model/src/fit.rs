//! Damped Gauss–Newton / Levenberg–Marquardt extraction of the compact-model parameters.
//!
//! Both extraction flavors of the paper are built on the same solver:
//!
//! * **"Proposed Model + LSE"** — plain weighted least squares on the relative residuals
//!   `(T_obs − f(ξ, P))/T_obs`;
//! * **"Proposed Model + Bayesian Inference"** — the MAP problem of Eq. (15), which simply
//!   adds a Gaussian penalty `½(P − µ0)ᵀ Σ0⁻¹ (P − µ0)` and per-sample precisions `β(ξ)` to
//!   the same objective.  `slic-bayes` learns `µ0`, `Σ0` and `β` and calls
//!   [`LeastSquaresFitter::fit_weighted`] with a [`GaussianPenalty`].
//!
//! The model is mildly nonlinear in its parameters (products of `kd`, `V'` and `α`), so the
//! normal equations are re-linearized every iteration; with the paper's near-linear
//! parameterization the solver converges in a handful of steps.

use crate::model::{TimingParams, TimingSample, PARAM_COUNT};
use serde::{Deserialize, Serialize};
use slic_linalg::{Cholesky, LinalgError, Matrix, Vector};

/// Gaussian prior penalty `½ (p − mean)ᵀ Σ⁻¹ (p − mean)` added to the fit objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianPenalty {
    mean: Vector,
    /// Whitening matrix `W = L⁻¹` where `Σ = L·Lᵀ`; the penalty residual is `W·(p − mean)`.
    whitening: Matrix,
}

impl GaussianPenalty {
    /// Builds a penalty from a mean vector and covariance matrix.
    ///
    /// # Errors
    ///
    /// Returns a [`LinalgError`] if the covariance is not symmetric positive definite or its
    /// dimension does not match the mean.
    pub fn from_covariance(mean: Vector, covariance: &Matrix) -> Result<Self, LinalgError> {
        if covariance.rows() != mean.len() || covariance.cols() != mean.len() {
            return Err(LinalgError::DimensionMismatch {
                context: format!(
                    "penalty mean has {} entries but covariance is {}x{}",
                    mean.len(),
                    covariance.rows(),
                    covariance.cols()
                ),
            });
        }
        let chol = Cholesky::decompose(covariance)?;
        // W = L^{-1}: solve L X = I column by column.
        let n = mean.len();
        let mut whitening = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = Vector::zeros(n);
            e[j] = 1.0;
            let col = chol.forward_substitute(&e);
            for i in 0..n {
                whitening[(i, j)] = col[i];
            }
        }
        Ok(Self { mean, whitening })
    }

    /// The prior mean.
    pub fn mean(&self) -> &Vector {
        &self.mean
    }

    /// Dimension of the penalized parameter vector.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Whitened residual `W·(p − mean)`.
    pub fn residual(&self, params: &Vector) -> Vector {
        self.whitening.mat_vec(&(params - &self.mean))
    }

    /// The whitening matrix (also the Jacobian of the penalty residual).
    pub fn jacobian(&self) -> &Matrix {
        &self.whitening
    }

    /// The penalty value `½‖W(p − mean)‖²`.
    pub fn cost(&self, params: &Vector) -> f64 {
        let r = self.residual(params);
        0.5 * r.dot(&r)
    }
}

/// Configuration of the Levenberg–Marquardt solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitConfig {
    /// Maximum number of outer iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the infinity norm of the parameter step.
    pub step_tolerance: f64,
    /// Initial damping factor λ.
    pub initial_lambda: f64,
    /// Multiplier applied to λ after a rejected step.
    pub lambda_up: f64,
    /// Multiplier applied to λ after an accepted step.
    pub lambda_down: f64,
}

impl FitConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    // The negated comparison forms are deliberate: `!(x > 0.0)` also rejects NaN, which
    // the positive `x <= 0.0` would let through.
    #[allow(clippy::neg_cmp_op_on_partial_ord, clippy::nonminimal_bool)]
    pub fn validate(&self) -> Result<(), String> {
        if self.max_iterations == 0 {
            return Err("max_iterations must be positive".to_string());
        }
        if !(self.step_tolerance > 0.0) {
            return Err("step_tolerance must be positive".to_string());
        }
        if !(self.initial_lambda >= 0.0) {
            return Err("initial_lambda must be non-negative".to_string());
        }
        if !(self.lambda_up > 1.0) || !(self.lambda_down > 0.0 && self.lambda_down < 1.0) {
            return Err("lambda multipliers must satisfy up > 1 and 0 < down < 1".to_string());
        }
        Ok(())
    }
}

impl Default for FitConfig {
    fn default() -> Self {
        Self {
            max_iterations: 60,
            step_tolerance: 1e-9,
            initial_lambda: 1e-3,
            lambda_up: 8.0,
            lambda_down: 0.35,
        }
    }
}

/// Result of a parameter extraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitResult {
    /// Extracted compact-model parameters.
    pub params: TimingParams,
    /// Number of outer iterations performed.
    pub iterations: usize,
    /// Whether the step-size convergence criterion was met before hitting the iteration cap.
    pub converged: bool,
    /// Final value of the objective (half the weighted sum of squared residuals, including
    /// any prior penalty).
    pub cost: f64,
}

/// Parameter box keeping the optimizer inside the physically meaningful region.
///
/// Bounds are expressed in model units (`kd`, fF, V, fF/ps).  `V'` is bounded above −0.64 V
/// so that `Vdd + V'` stays positive over every supported supply range.
const PARAM_BOUNDS: [(f64, f64); PARAM_COUNT] =
    [(1e-3, 10.0), (-2.0, 50.0), (-0.6, 0.6), (-1.0, 5.0)];

/// Levenberg–Marquardt extractor for the four-parameter compact model.
#[derive(Debug, Clone, Default)]
pub struct LeastSquaresFitter {
    config: FitConfig,
}

impl LeastSquaresFitter {
    /// Creates a fitter with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a fitter with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn with_config(config: FitConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid fit configuration: {msg}");
        }
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FitConfig {
        &self.config
    }

    /// Plain relative least-squares extraction ("Proposed Model + LSE").
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn fit(&self, samples: &[TimingSample]) -> FitResult {
        let weights = vec![1.0; samples.len()];
        self.fit_weighted(samples, &weights, None, TimingParams::initial_guess())
    }

    /// Weighted extraction with an optional Gaussian prior (the MAP problem of Eq. 15).
    ///
    /// `weights[i]` multiplies the squared relative residual of sample `i`; for the MAP
    /// estimator it is the learned precision `β(ξ_i)`.  `start` is the initial iterate (the
    /// prior mean is the natural choice when a prior is supplied).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, if `weights` has a different length than `samples`, if
    /// any weight is negative or non-finite, or if a supplied prior does not have
    /// [`PARAM_COUNT`] dimensions.
    pub fn fit_weighted(
        &self,
        samples: &[TimingSample],
        weights: &[f64],
        prior: Option<&GaussianPenalty>,
        start: TimingParams,
    ) -> FitResult {
        assert!(!samples.is_empty(), "cannot fit to an empty sample set");
        assert_eq!(
            samples.len(),
            weights.len(),
            "one weight per sample required"
        );
        assert!(
            weights.iter().all(|w| *w >= 0.0 && w.is_finite()),
            "weights must be non-negative and finite"
        );
        if let Some(p) = prior {
            assert_eq!(p.dim(), PARAM_COUNT, "prior dimension must match the model");
        }

        let residual_fn = |p: &Vector| -> Vector {
            let params = TimingParams::from_vector(p);
            let mut rows: Vec<f64> = samples
                .iter()
                .zip(weights)
                .map(|(s, w)| w.sqrt() * params.relative_error(s))
                .collect();
            if let Some(pen) = prior {
                rows.extend(pen.residual(p).into_vec());
            }
            Vector::from(rows)
        };
        let jacobian_fn = |p: &Vector| -> Matrix {
            let params = TimingParams::from_vector(p);
            let n_rows = samples.len() + prior.map_or(0, |pen| pen.dim());
            let mut jac = Matrix::zeros(n_rows, PARAM_COUNT);
            for (i, (s, w)) in samples.iter().zip(weights).enumerate() {
                // r_i = sqrt(w) (obs - pred)/obs  =>  dr_i/dp = -sqrt(w)/obs * df/dp.
                let g = params.gradient(&s.point, s.ieff);
                let scale = -w.sqrt() / s.observed.value();
                for j in 0..PARAM_COUNT {
                    jac[(i, j)] = scale * g[j];
                }
            }
            if let Some(pen) = prior {
                let w = pen.jacobian();
                for i in 0..pen.dim() {
                    for j in 0..PARAM_COUNT {
                        jac[(samples.len() + i, j)] = w[(i, j)];
                    }
                }
            }
            jac
        };

        let (solution, iterations, converged, cost) = levenberg_marquardt(
            &self.config,
            start.to_vector(),
            &PARAM_BOUNDS,
            residual_fn,
            jacobian_fn,
        );
        FitResult {
            params: TimingParams::from_vector(&solution),
            iterations,
            converged,
            cost,
        }
    }
}

/// Generic bounded Levenberg–Marquardt driver shared by the 4- and 5-parameter models.
///
/// Returns `(solution, iterations, converged, final_cost)`.
pub(crate) fn levenberg_marquardt(
    config: &FitConfig,
    start: Vector,
    bounds: &[(f64, f64)],
    residual_fn: impl Fn(&Vector) -> Vector,
    jacobian_fn: impl Fn(&Vector) -> Matrix,
) -> (Vector, usize, bool, f64) {
    let clamp = |v: &Vector| -> Vector {
        Vector::from_fn(v.len(), |i| v[i].clamp(bounds[i].0, bounds[i].1))
    };
    let cost_of = |r: &Vector| 0.5 * r.dot(r);

    let mut p = clamp(&start);
    let mut r = residual_fn(&p);
    let mut cost = cost_of(&r);
    let mut lambda = config.initial_lambda;
    let mut converged = false;
    let mut iterations = 0;

    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        let jac = jacobian_fn(&p);
        let jtj = jac.gram();
        let jtr = jac.transpose().mat_vec(&r);

        // Try steps with increasing damping until one reduces the cost.
        let mut accepted = false;
        for _ in 0..12 {
            // Marquardt scaling: λ·(diag(JᵀJ) + ε) keeps the step well-defined even when a
            // column of J is zero (e.g. fewer samples than parameters).
            let mut damped = jtj.clone();
            for i in 0..damped.rows() {
                damped[(i, i)] += lambda * (jtj[(i, i)] + 1e-12);
            }
            let step = match damped.solve(&(-&jtr)) {
                Ok(s) => s,
                Err(_) => {
                    lambda = (lambda * config.lambda_up).max(1e-9);
                    continue;
                }
            };
            let candidate = clamp(&p.axpy(1.0, &step));
            let r_new = residual_fn(&candidate);
            let cost_new = cost_of(&r_new);
            if cost_new.is_finite() && cost_new <= cost {
                let step_size = (&candidate - &p).norm_inf();
                p = candidate;
                r = r_new;
                cost = cost_new;
                lambda = (lambda * config.lambda_down).max(1e-12);
                accepted = true;
                if step_size < config.step_tolerance {
                    converged = true;
                }
                break;
            }
            lambda = (lambda * config.lambda_up).max(1e-9);
        }
        if !accepted {
            // No productive step found at any damping level: declare convergence at the
            // current iterate.
            converged = true;
        }
        if converged {
            break;
        }
    }
    (p, iterations, converged, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TimingSample;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use slic_spice::InputPoint;
    use slic_units::{Amperes, Farads, Seconds, Volts};

    /// Generates synthetic samples from known parameters over a small grid, with optional
    /// multiplicative noise.
    fn synthetic_samples(
        truth: &TimingParams,
        noise: f64,
        seed: u64,
        n: usize,
    ) -> Vec<TimingSample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let sin = 1.0 + 14.0 * (i as f64 / n.max(2) as f64);
                let cload = 0.4 + 5.0 * ((i * 7 % n) as f64 / n as f64);
                let vdd = 0.65 + 0.35 * ((i * 3 % n) as f64 / n as f64);
                let point = InputPoint::new(
                    Seconds::from_picoseconds(sin),
                    Farads::from_femtofarads(cload),
                    Volts(vdd),
                );
                // Ieff varies with Vdd the way a real device's would (roughly quadratically).
                let ieff = Amperes(20e-6 + 60e-6 * (vdd - 0.5).powi(2) / 0.25);
                let clean = truth.evaluate(&point, ieff).value();
                let noisy = clean * (1.0 + noise * (rng.gen::<f64>() - 0.5) * 2.0);
                TimingSample::new(point, ieff, Seconds(noisy))
            })
            .collect()
    }

    fn truth() -> TimingParams {
        TimingParams::new(0.39, 0.95, -0.27, 0.09)
    }

    #[test]
    fn recovers_exact_parameters_from_clean_data() {
        let samples = synthetic_samples(&truth(), 0.0, 1, 30);
        let result = LeastSquaresFitter::new().fit(&samples);
        assert!(result.converged);
        assert!(result.params.mean_relative_error_percent(&samples) < 0.01);
        assert!((result.params.kd - truth().kd).abs() < 0.01);
        assert!((result.params.v_prime - truth().v_prime).abs() < 0.02);
    }

    #[test]
    fn fits_noisy_data_to_noise_floor() {
        let samples = synthetic_samples(&truth(), 0.03, 2, 60);
        let result = LeastSquaresFitter::new().fit(&samples);
        let err = result.params.mean_relative_error_percent(&samples);
        assert!(err < 3.0, "error {err}% should be at the noise floor");
    }

    #[test]
    fn underdetermined_fit_is_poor_but_finite() {
        // Two samples, four parameters: the LSE solution exists but generalizes badly —
        // exactly the regime where the Bayesian prior pays off (Fig. 6).
        let train = synthetic_samples(&truth(), 0.0, 3, 2);
        let test = synthetic_samples(&truth(), 0.0, 4, 50);
        let result = LeastSquaresFitter::new().fit(&train);
        assert!(result.cost.is_finite());
        let train_err = result.params.mean_relative_error_percent(&train);
        let test_err = result.params.mean_relative_error_percent(&test);
        assert!(
            train_err < 1.0,
            "training error should be tiny ({train_err}%)"
        );
        assert!(test_err.is_finite());
    }

    #[test]
    fn prior_pulls_underdetermined_fit_toward_truth() {
        // Use slew-like truth parameters that sit far from the generic initial guess: the
        // value of the historical prior is precisely that it knows which region of parameter
        // space this arc lives in, while the LSE baseline does not.
        let truth = TimingParams::new(1.05, 1.8, -0.12, 0.28);
        let train = synthetic_samples(&truth, 0.0, 5, 2);
        let test = synthetic_samples(&truth, 0.0, 6, 50);
        let fitter = LeastSquaresFitter::new();

        let lse = fitter.fit(&train);
        let lse_err = lse.params.mean_relative_error_percent(&test);

        // Prior centred near (but not exactly at) the truth, with a Table I-like spread.
        let prior_mean = Vector::from_slice(&[1.0, 1.7, -0.13, 0.26]);
        let prior_cov = Matrix::from_diagonal(&[0.01, 0.05, 0.002, 0.002]);
        let penalty = GaussianPenalty::from_covariance(prior_mean.clone(), &prior_cov).unwrap();
        // Realistic likelihood precisions: the historical model uncertainty is ~2 % of the
        // observed value, so beta = 1/0.02^2 — this is what slic-bayes learns from Eq. (9).
        let weights = vec![2500.0; train.len()];
        let map = fitter.fit_weighted(
            &train,
            &weights,
            Some(&penalty),
            TimingParams::from_vector(&prior_mean),
        );
        let map_err = map.params.mean_relative_error_percent(&test);
        assert!(
            map_err < lse_err,
            "MAP ({map_err}%) should beat LSE ({lse_err}%) with 2 samples"
        );
        assert!(map_err < 5.0, "MAP error should be small ({map_err}%)");
    }

    #[test]
    fn weights_emphasize_high_precision_samples() {
        // Corrupt one sample badly; give it a tiny weight and the fit should ignore it.
        let mut samples = synthetic_samples(&truth(), 0.0, 7, 20);
        let corrupted = TimingSample::new(
            samples[0].point,
            samples[0].ieff,
            Seconds(samples[0].observed.value() * 3.0),
        );
        samples[0] = corrupted;
        let fitter = LeastSquaresFitter::new();
        let mut weights = vec![1.0; samples.len()];
        weights[0] = 1e-6;
        let weighted = fitter.fit_weighted(&samples, &weights, None, TimingParams::initial_guess());
        let uniform = fitter.fit(&samples);
        let clean_tail = &samples[1..];
        assert!(
            weighted.params.mean_relative_error_percent(clean_tail)
                < uniform.params.mean_relative_error_percent(clean_tail)
        );
    }

    #[test]
    fn penalty_cost_and_residual_are_consistent() {
        let mean = Vector::from_slice(&[0.4, 1.0, -0.25, 0.08]);
        let cov = Matrix::from_diagonal(&[0.01, 0.04, 0.01, 0.004]);
        let pen = GaussianPenalty::from_covariance(mean.clone(), &cov).unwrap();
        assert_eq!(pen.dim(), 4);
        assert_eq!(pen.mean(), &mean);
        // At the mean the penalty is zero.
        assert!(pen.cost(&mean) < 1e-20);
        // One σ away in the first coordinate costs 0.5.
        let mut off = mean.clone();
        off[0] += 0.1; // σ = sqrt(0.01) = 0.1
        assert!((pen.cost(&off) - 0.5).abs() < 1e-9);
        let r = pen.residual(&off);
        assert!((0.5 * r.dot(&r) - pen.cost(&off)).abs() < 1e-12);
    }

    #[test]
    fn penalty_rejects_bad_covariance() {
        let mean = Vector::from_slice(&[0.4, 1.0, -0.25, 0.08]);
        let bad = Matrix::from_diagonal(&[0.01, -0.04, 0.01, 0.004]);
        assert!(GaussianPenalty::from_covariance(mean.clone(), &bad).is_err());
        let wrong_dim = Matrix::identity(3);
        assert!(GaussianPenalty::from_covariance(mean, &wrong_dim).is_err());
    }

    #[test]
    fn config_validation() {
        assert!(FitConfig::default().validate().is_ok());
        let bad = FitConfig {
            max_iterations: 0,
            ..FitConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = FitConfig {
            lambda_down: 1.5,
            ..FitConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid fit configuration")]
    fn fitter_rejects_invalid_config() {
        let _ = LeastSquaresFitter::with_config(FitConfig {
            step_tolerance: 0.0,
            ..FitConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn empty_samples_rejected() {
        let _ = LeastSquaresFitter::new().fit(&[]);
    }

    #[test]
    fn bounds_are_respected() {
        // Pathological data trying to push V' below its bound.
        let point = InputPoint::new(
            Seconds::from_picoseconds(5.0),
            Farads::from_femtofarads(2.0),
            Volts(0.65),
        );
        let samples = vec![TimingSample::new(point, Amperes(40e-6), Seconds(1e-15))];
        let result = LeastSquaresFitter::new().fit(&samples);
        assert!(result.params.v_prime >= PARAM_BOUNDS[2].0);
        assert!(result.params.kd >= PARAM_BOUNDS[0].0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_fit_error_decreases_with_more_samples(seed in 0u64..200) {
            let small = synthetic_samples(&truth(), 0.02, seed, 4);
            let large = synthetic_samples(&truth(), 0.02, seed, 40);
            let test = synthetic_samples(&truth(), 0.0, seed.wrapping_add(1), 30);
            let fitter = LeastSquaresFitter::new();
            let err_small = fitter.fit(&small).params.mean_relative_error_percent(&test);
            let err_large = fitter.fit(&large).params.mean_relative_error_percent(&test);
            // More training data never hurts by much (tolerate small fluctuations).
            prop_assert!(err_large <= err_small + 1.0,
                         "err_large = {err_large}, err_small = {err_small}");
        }

        #[test]
        fn prop_converges_on_clean_grids(kd in 0.3f64..0.5, cpar in 0.7f64..1.5,
                                         vprime in -0.3f64..-0.15, alpha in 0.02f64..0.12) {
            let truth = TimingParams::new(kd, cpar, vprime, alpha);
            let samples = synthetic_samples(&truth, 0.0, 11, 25);
            let result = LeastSquaresFitter::new().fit(&samples);
            prop_assert!(result.params.mean_relative_error_percent(&samples) < 0.5);
        }
    }
}
