//! Ablation A3: how many historical technologies does the prior need?  Sweeps `Ntech` from
//! one to the full suite of six (the paper uses `Ntech = 6`) and reports the delay error of
//! a two-simulation MAP extraction on the 14-nm target.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use slic::prelude::*;
use slic::report::markdown_table;
use slic_bench::{banner, bench_historical_db};

fn k2_error(
    engine: &CharacterizationEngine,
    cell: Cell,
    arc: &TimingArc,
    db: &HistoricalDatabase,
    validation: &[(InputPoint, f64, Amperes)],
) -> f64 {
    let prior = PriorBuilder::new()
        .build(db, TimingMetric::Delay, Some(cell.kind().name()))
        .expect("delay records for the cell kind");
    let precision = PrecisionModel::learn(
        db,
        TimingMetric::Delay,
        &engine.input_space(),
        PrecisionConfig::default(),
    );
    let extractor = MapExtractor::new(prior, precision);
    let nominal = ProcessSample::nominal();
    let mut rng = StdRng::seed_from_u64(55);
    let points = engine.input_space().sample_latin_hypercube(&mut rng, 2);
    let samples: Vec<TimingSample> = points
        .iter()
        .map(|p| {
            let m = engine.simulate_nominal(cell, arc, p);
            TimingSample::new(*p, engine.ieff(arc, p, &nominal), m.delay)
        })
        .collect();
    let fit = extractor.extract(&samples);
    let errors: Vec<f64> = validation
        .iter()
        .map(|(p, reference, ieff)| {
            100.0 * (fit.params.evaluate(p, *ieff).value() - reference).abs() / reference
        })
        .collect();
    errors.iter().sum::<f64>() / errors.len() as f64
}

fn regenerate(db: &HistoricalDatabase) {
    banner(
        "Ablation A3",
        "Growing the historical suite: prediction error at k = 2 as Ntech goes from 1 to 6",
    );
    let engine =
        CharacterizationEngine::with_config(TechnologyNode::target_14nm(), TransientConfig::fast())
            .expect("valid transient configuration");
    let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
    let arc = TimingArc::new(cell, 0, Transition::Fall);
    let nominal = ProcessSample::nominal();
    let mut rng = StdRng::seed_from_u64(23);
    let validation: Vec<(InputPoint, f64, Amperes)> = engine
        .input_space()
        .sample_uniform(&mut rng, 200)
        .into_iter()
        .map(|p| {
            let reference = engine.simulate_nominal(cell, &arc, &p).delay.value();
            (p, reference, engine.ieff(&arc, &p, &nominal))
        })
        .collect();

    // Newest-first ordering: each step adds the next-older node.
    let order = [
        "hist-14nm-finfet",
        "hist-16nm-finfet",
        "hist-20nm-bulk",
        "hist-28nm-bulk",
        "hist-32nm-soi",
        "hist-45nm-bulk",
    ];
    let headers: Vec<String> = [
        "Ntech",
        "newest .. oldest node included",
        "delay error @ k=2 (%)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for n in 1..=order.len() {
        let names: Vec<&str> = order[..n].to_vec();
        let subset = db.select_technologies(&names);
        let err = k2_error(&engine, cell, &arc, &subset, &validation);
        rows.push(vec![
            n.to_string(),
            format!("{} .. {}", names[0], names[n - 1]),
            format!("{err:.2}"),
        ]);
    }
    println!("{}", markdown_table(&headers, &rows));
    println!("(paper uses Ntech = 6; more history mostly helps until mismatched old nodes start to bias the prior)");
}

fn bench(c: &mut Criterion) {
    let db = bench_historical_db(&TechnologyNode::historical_suite());
    regenerate(&db);
    c.bench_function("ablation_precision_learning", |b| {
        let space = InputSpace::paper_space((Volts(0.65), Volts(1.0)));
        b.iter(|| {
            PrecisionModel::learn(&db, TimingMetric::Delay, &space, PrecisionConfig::default())
        })
    });
}

criterion_group! {
    name = benches;
    config = slic_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
