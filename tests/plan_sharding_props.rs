//! Property tests for plan sharding and artifact merging: `split(n)` covers every work
//! unit exactly once for arbitrary plan shapes, and merging shard artifacts equals
//! merging the unsharded artifact.

use proptest::prelude::*;
use slic::prelude::TimingParams;
use slic_pipeline::artifact::SCHEMA_VERSION;
use slic_pipeline::{CharacterizationPlan, RunArtifact, RunConfig, UnitResult, WorkUnit};

/// Builds an arbitrary-but-valid run configuration from a handful of generator draws.
fn arbitrary_plan(lib: usize, metric_sel: usize, method_mask: usize) -> CharacterizationPlan {
    let libraries = ["paper-trio", "standard"];
    let metric_options: [&[&str]; 3] = [&["delay"], &["slew"], &["delay", "slew"]];
    let all_methods = ["bayesian", "lse", "lut"];
    let methods: Vec<String> = all_methods
        .iter()
        .enumerate()
        .filter(|(i, _)| method_mask & (1 << i) != 0)
        .map(|(_, m)| m.to_string())
        .collect();
    let config = RunConfig {
        library: Some(libraries[lib].to_string()),
        metrics: Some(
            metric_options[metric_sel]
                .iter()
                .map(|m| m.to_string())
                .collect(),
        ),
        methods: Some(methods),
        ..RunConfig::default()
    };
    let resolved = config.resolve().expect("generated configs are valid");
    CharacterizationPlan::from_config(&resolved).expect("generated plans are non-empty")
}

/// A synthetic artifact whose per-unit numbers are deterministic functions of the plan,
/// so shard sums always reproduce the unsharded totals.
fn synthetic_artifact(plan: &CharacterizationPlan, planned: usize) -> RunArtifact {
    let units: Vec<UnitResult> = plan
        .units()
        .iter()
        .map(|u| UnitResult {
            arc_id: u.arc.id(),
            arc: u.arc,
            metric: u.metric,
            method: u.method,
            params: Some(TimingParams::initial_guess()),
            training_count: 6,
            validation_points: 12,
            error_percent: 1.25,
            requested_simulations: 18,
        })
        .collect();
    let characterized = slic_pipeline::CharacterizedLibrary::from_units(
        plan.library_name(),
        "target-14nm-finfet",
        &units,
    );
    RunArtifact {
        schema_version: SCHEMA_VERSION,
        library: plan.library_name().to_string(),
        technology: "target-14nm-finfet".to_string(),
        profile: "quick".to_string(),
        seed: 99,
        planned_units: planned,
        units,
        characterized,
        total_simulations: 3 * plan.len() as u64,
        cache_hits: 2 * plan.len() as u64,
        cache_misses: plan.len() as u64,
    }
}

proptest! {
    #[test]
    fn split_covers_every_unit_exactly_once(
        shards in 1usize..9,
        lib in 0usize..2,
        metric_sel in 0usize..3,
        method_mask in 1usize..8,
    ) {
        let plan = arbitrary_plan(lib, metric_sel, method_mask);
        let parts = plan.split(shards).expect("split succeeds");
        prop_assert_eq!(parts.len(), shards);

        // Every unit appears in exactly one shard (multiset equality of unit ids).
        let mut sharded_ids: Vec<String> = parts
            .iter()
            .flat_map(|p| p.units().iter().map(WorkUnit::id))
            .collect();
        sharded_ids.sort();
        let mut expected_ids: Vec<String> = plan.units().iter().map(WorkUnit::id).collect();
        expected_ids.sort();
        prop_assert_eq!(sharded_ids, expected_ids);

        // Shard membership is the stable hash of the unit identity, nothing else.
        for (index, part) in parts.iter().enumerate() {
            prop_assert_eq!(part.library_name(), plan.library_name());
            for unit in part.units() {
                prop_assert_eq!(unit.shard_of(shards), index);
            }
        }
    }

    #[test]
    fn merging_shard_artifacts_equals_the_unsharded_artifact(
        shards in 1usize..9,
        lib in 0usize..2,
        metric_sel in 0usize..3,
        method_mask in 1usize..8,
    ) {
        let plan = arbitrary_plan(lib, metric_sel, method_mask);
        let full = synthetic_artifact(&plan, plan.planned_units());

        let shard_artifacts: Vec<RunArtifact> = plan
            .split(shards)
            .expect("split succeeds")
            .iter()
            .map(|part| synthetic_artifact(part, part.planned_units()))
            .collect();

        let merged = RunArtifact::merge(&shard_artifacts).expect("disjoint shards merge");
        // Merging the complete artifact alone canonicalizes its unit order, giving the
        // reference the merged artifact must reproduce exactly.
        let canonical = RunArtifact::merge(std::slice::from_ref(&full)).expect("merges");
        prop_assert_eq!(merged, canonical);
    }

    #[test]
    fn merging_overlapping_shards_is_rejected(
        lib in 0usize..2,
        metric_sel in 0usize..3,
        method_mask in 1usize..8,
    ) {
        let plan = arbitrary_plan(lib, metric_sel, method_mask);
        let full = synthetic_artifact(&plan, plan.planned_units());
        let parts = plan.split(2).expect("split succeeds");
        let overlapping = synthetic_artifact(&parts[0], parts[0].planned_units());
        if !overlapping.units.is_empty() {
            let err = RunArtifact::merge(&[full, overlapping])
                .expect_err("a re-submitted shard must be rejected");
            prop_assert!(err.to_string().contains("overlapping"), "{}", err);
        }
    }
}
