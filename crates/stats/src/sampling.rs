//! Sampling plans over multi-dimensional boxes.
//!
//! Two spaces get sampled in this project:
//!
//! * the **library input space** `ξ = (Sin, Cload, Vdd)` — the paper's baseline
//!   characterization draws 1000 uniformly random points in that box (Fig. 5), while the
//!   proposed method only needs a handful of carefully spread fitting points (we use a
//!   Latin hypercube for those);
//! * the **process-variation space** — Monte Carlo seeds for statistical characterization.
//!
//! All plans are expressed on the unit cube `[0, 1]^d` and mapped to physical ranges by the
//! caller (see [`scale_to_box`]).

use rand::seq::SliceRandom;
use rand::Rng;

/// An axis-aligned box described by per-dimension `(lo, hi)` bounds.
pub type Bounds = Vec<(f64, f64)>;

/// Draws `n` points uniformly at random inside `bounds`.
///
/// # Panics
///
/// Panics if `bounds` is empty or any bound has `lo > hi`.
pub fn uniform_box<R: Rng + ?Sized>(rng: &mut R, bounds: &[(f64, f64)], n: usize) -> Vec<Vec<f64>> {
    validate_bounds(bounds);
    (0..n)
        .map(|_| {
            bounds
                .iter()
                .map(
                    |&(lo, hi)| {
                        if lo == hi {
                            lo
                        } else {
                            rng.gen_range(lo..hi)
                        }
                    },
                )
                .collect()
        })
        .collect()
}

/// Draws an `n`-point Latin hypercube sample inside `bounds`.
///
/// Each dimension is divided into `n` equal slices and each slice is hit exactly once, which
/// gives far better space coverage than plain uniform sampling at the very small sample
/// counts (`k` = 2…10) the proposed method runs at.
///
/// # Panics
///
/// Panics if `bounds` is empty or any bound has `lo > hi`.
pub fn latin_hypercube<R: Rng + ?Sized>(
    rng: &mut R,
    bounds: &[(f64, f64)],
    n: usize,
) -> Vec<Vec<f64>> {
    validate_bounds(bounds);
    if n == 0 {
        return Vec::new();
    }
    let d = bounds.len();
    // One random permutation of the strata per dimension.
    let mut strata: Vec<Vec<usize>> = Vec::with_capacity(d);
    for _ in 0..d {
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(rng);
        strata.push(perm);
    }
    (0..n)
        .map(|i| {
            (0..d)
                .map(|j| {
                    let slice = strata[j][i] as f64;
                    let u: f64 = rng.gen();
                    let unit = (slice + u) / n as f64;
                    let (lo, hi) = bounds[j];
                    lo + unit * (hi - lo)
                })
                .collect()
        })
        .collect()
}

/// Builds the full-factorial grid with `levels[j]` levels per dimension, linearly spaced
/// inclusive of the bounds — the classical LUT corner grid.
///
/// # Panics
///
/// Panics if `bounds.len() != levels.len()`, `bounds` is empty, any bound has `lo > hi`, or
/// any level count is zero.
pub fn full_factorial(bounds: &[(f64, f64)], levels: &[usize]) -> Vec<Vec<f64>> {
    validate_bounds(bounds);
    assert_eq!(
        bounds.len(),
        levels.len(),
        "levels must be specified per dimension"
    );
    assert!(
        levels.iter().all(|&l| l > 0),
        "every dimension needs at least one level"
    );
    let axes: Vec<Vec<f64>> = bounds
        .iter()
        .zip(levels)
        .map(|(&(lo, hi), &l)| {
            if l == 1 {
                vec![0.5 * (lo + hi)]
            } else {
                (0..l)
                    .map(|i| lo + (hi - lo) * i as f64 / (l - 1) as f64)
                    .collect()
            }
        })
        .collect();
    let mut grid: Vec<Vec<f64>> = vec![Vec::new()];
    for axis in &axes {
        let mut next = Vec::with_capacity(grid.len() * axis.len());
        for point in &grid {
            for &value in axis {
                let mut p = point.clone();
                p.push(value);
                next.push(p);
            }
        }
        grid = next;
    }
    grid
}

/// Maps a point expressed on the unit cube into `bounds`.
///
/// # Panics
///
/// Panics if `point.len() != bounds.len()`.
pub fn scale_to_box(point: &[f64], bounds: &[(f64, f64)]) -> Vec<f64> {
    assert_eq!(point.len(), bounds.len(), "dimension mismatch");
    point
        .iter()
        .zip(bounds)
        .map(|(&u, &(lo, hi))| lo + u * (hi - lo))
        .collect()
}

fn validate_bounds(bounds: &[(f64, f64)]) {
    assert!(!bounds.is_empty(), "sampling bounds must not be empty");
    for &(lo, hi) in bounds {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid bound ({lo}, {hi})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn box3() -> Bounds {
        vec![(1.0e-12, 15.0e-12), (0.1e-15, 6.0e-15), (0.65, 1.0)]
    }

    #[test]
    fn uniform_points_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = uniform_box(&mut rng, &box3(), 500);
        assert_eq!(pts.len(), 500);
        for p in &pts {
            for (x, &(lo, hi)) in p.iter().zip(&box3()) {
                assert!(*x >= lo && *x <= hi);
            }
        }
    }

    #[test]
    fn uniform_handles_degenerate_dimension() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = uniform_box(&mut rng, &[(2.0, 2.0), (0.0, 1.0)], 10);
        assert!(pts.iter().all(|p| p[0] == 2.0));
    }

    #[test]
    fn latin_hypercube_strata_are_each_hit_once() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 16;
        let bounds = vec![(0.0, 1.0), (0.0, 1.0)];
        let pts = latin_hypercube(&mut rng, &bounds, n);
        assert_eq!(pts.len(), n);
        for dim in 0..2 {
            let mut seen = vec![false; n];
            for p in &pts {
                let stratum = ((p[dim] * n as f64) as usize).min(n - 1);
                assert!(!seen[stratum], "stratum {stratum} hit twice in dim {dim}");
                seen[stratum] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn latin_hypercube_zero_points() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(latin_hypercube(&mut rng, &box3(), 0).is_empty());
    }

    #[test]
    fn full_factorial_size_and_corners() {
        let grid = full_factorial(&[(0.0, 1.0), (10.0, 20.0)], &[3, 2]);
        assert_eq!(grid.len(), 6);
        assert!(grid.contains(&vec![0.0, 10.0]));
        assert!(grid.contains(&vec![1.0, 20.0]));
        assert!(grid.contains(&vec![0.5, 10.0]));
    }

    #[test]
    fn full_factorial_single_level_uses_midpoint() {
        let grid = full_factorial(&[(0.0, 2.0)], &[1]);
        assert_eq!(grid, vec![vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn full_factorial_rejects_zero_levels() {
        let _ = full_factorial(&[(0.0, 1.0)], &[0]);
    }

    #[test]
    #[should_panic(expected = "invalid bound")]
    fn inverted_bounds_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = uniform_box(&mut rng, &[(1.0, 0.0)], 3);
    }

    #[test]
    fn scale_to_box_maps_corners() {
        let bounds = box3();
        let lo = scale_to_box(&[0.0, 0.0, 0.0], &bounds);
        let hi = scale_to_box(&[1.0, 1.0, 1.0], &bounds);
        for ((l, h), &(blo, bhi)) in lo.iter().zip(hi.iter()).zip(&bounds) {
            assert!((l - blo).abs() < 1e-18);
            assert!((h - bhi).abs() < 1e-18);
        }
    }

    proptest! {
        #[test]
        fn prop_lhs_points_in_bounds(seed in 0u64..1000, n in 1usize..32) {
            let mut rng = StdRng::seed_from_u64(seed);
            let bounds = box3();
            let pts = latin_hypercube(&mut rng, &bounds, n);
            prop_assert_eq!(pts.len(), n);
            for p in &pts {
                for (x, &(lo, hi)) in p.iter().zip(&bounds) {
                    prop_assert!(*x >= lo && *x <= hi);
                }
            }
        }

        #[test]
        fn prop_factorial_count(l1 in 1usize..5, l2 in 1usize..5, l3 in 1usize..5) {
            let grid = full_factorial(&box3(), &[l1, l2, l3]);
            prop_assert_eq!(grid.len(), l1 * l2 * l3);
        }
    }
}
