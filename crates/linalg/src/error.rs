//! Error types for the linear-algebra kernels.

use std::error::Error;
use std::fmt;

/// Errors produced by decompositions and solvers in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// A Cholesky factorization was requested for a matrix that is not (numerically)
    /// symmetric positive definite.
    NotPositiveDefinite {
        /// Index of the pivot where the factorization broke down.
        pivot: usize,
    },
    /// An LU factorization encountered a (numerically) singular matrix.
    Singular {
        /// Index of the pivot column where no usable pivot was found.
        pivot: usize,
    },
    /// Operand dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the two shapes involved.
        context: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (pivot {pivot})")
            }
            LinalgError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::NotPositiveDefinite { pivot: 2 };
        assert!(e.to_string().contains("positive definite"));
        let e = LinalgError::Singular { pivot: 0 };
        assert!(e.to_string().contains("singular"));
        let e = LinalgError::DimensionMismatch {
            context: "3x2 * 4".into(),
        };
        assert!(e.to_string().contains("3x2 * 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
