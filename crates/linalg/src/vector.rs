//! Owned dense vectors.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// An owned, dense, dynamically sized vector of `f64`.
///
/// The workspace only ever deals with small vectors (parameter vectors of length 4,
/// residual vectors of a few dozen entries), so all operations are straightforward
/// allocating implementations optimized for clarity.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        Self { data: vec![0.0; n] }
    }

    /// Creates a vector filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Self {
            data: vec![value; n],
        }
    }

    /// Creates a vector from a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        Self {
            data: values.to_vec(),
        }
    }

    /// Creates a vector by evaluating `f` at each index `0..n`.
    pub fn from_fn(n: usize, f: impl FnMut(usize) -> f64) -> Self {
        Self {
            data: (0..n).map(f).collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the entries as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the entries as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Dot product with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "dot product requires equal lengths"
        );
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Infinity norm (largest absolute entry); zero for the empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of the entries; zero for the empty vector.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f64
        }
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Vector {
        Vector {
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hadamard(&self, other: &Vector) -> Vector {
        assert_eq!(self.len(), other.len(), "hadamard requires equal lengths");
        Vector {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a * b)
                .collect(),
        }
    }

    /// Returns `self + scale * other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn axpy(&self, scale: f64, other: &Vector) -> Vector {
        assert_eq!(self.len(), other.len(), "axpy requires equal lengths");
        Vector {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + scale * b)
                .collect(),
        }
    }

    /// Returns `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Iterator over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.6e}")?;
        }
        write!(f, "]")
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Self { data }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl Add for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(
            self.len(),
            rhs.len(),
            "vector addition requires equal lengths"
        );
        Vector {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(
            self.len(),
            rhs.len(),
            "vector subtraction requires equal lengths"
        );
        Vector {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(
            self.len(),
            rhs.len(),
            "vector addition requires equal lengths"
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(
            self.len(),
            rhs.len(),
            "vector subtraction requires equal lengths"
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        self.map(|x| x * rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.map(|x| -x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_variants() {
        assert_eq!(Vector::zeros(3).as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(Vector::filled(2, 1.5).as_slice(), &[1.5, 1.5]);
        assert_eq!(
            Vector::from_fn(3, |i| i as f64).as_slice(),
            &[0.0, 1.0, 2.0]
        );
        let v: Vector = vec![1.0, 2.0].into();
        assert_eq!(v.len(), 2);
        let w: Vector = (0..4).map(|i| i as f64).collect();
        assert_eq!(w[3], 3.0);
    }

    #[test]
    fn dot_norm_sum_mean() {
        let v = Vector::from_slice(&[3.0, 4.0]);
        assert_eq!(v.dot(&v), 25.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.sum(), 7.0);
        assert_eq!(v.mean(), 3.5);
        assert_eq!(v.norm_inf(), 4.0);
        assert_eq!(Vector::zeros(0).mean(), 0.0);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[3.0, 10.0]);
        assert_eq!(a.axpy(2.0, &b).as_slice(), &[7.0, 12.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_dot_panics() {
        let _ = Vector::zeros(2).dot(&Vector::zeros(3));
    }

    #[test]
    fn finiteness_and_display() {
        assert!(Vector::from_slice(&[1.0, 2.0]).is_finite());
        assert!(!Vector::from_slice(&[1.0, f64::NAN]).is_finite());
        let s = format!("{}", Vector::from_slice(&[1.0, -2.0]));
        assert!(s.starts_with('[') && s.ends_with(']'));
    }

    #[test]
    fn indexing_and_iteration() {
        let mut v = Vector::zeros(3);
        v[1] = 7.0;
        assert_eq!(v[1], 7.0);
        assert_eq!(v.iter().copied().sum::<f64>(), 7.0);
        assert_eq!((&v).into_iter().count(), 3);
        assert_eq!(v.clone().into_vec(), vec![0.0, 7.0, 0.0]);
    }

    proptest! {
        #[test]
        fn prop_triangle_inequality(a in proptest::collection::vec(-1e3f64..1e3, 1..16),
                                    b in proptest::collection::vec(-1e3f64..1e3, 1..16)) {
            let n = a.len().min(b.len());
            let va = Vector::from_slice(&a[..n]);
            let vb = Vector::from_slice(&b[..n]);
            let lhs = (&va + &vb).norm();
            let rhs = va.norm() + vb.norm();
            prop_assert!(lhs <= rhs + 1e-9 * (1.0 + rhs));
        }

        #[test]
        fn prop_cauchy_schwarz(a in proptest::collection::vec(-1e3f64..1e3, 1..16),
                               b in proptest::collection::vec(-1e3f64..1e3, 1..16)) {
            let n = a.len().min(b.len());
            let va = Vector::from_slice(&a[..n]);
            let vb = Vector::from_slice(&b[..n]);
            let lhs = va.dot(&vb).abs();
            let rhs = va.norm() * vb.norm();
            prop_assert!(lhs <= rhs + 1e-9 * (1.0 + rhs));
        }

        #[test]
        fn prop_axpy_matches_add_scale(a in proptest::collection::vec(-1e3f64..1e3, 1..8),
                                       s in -10.0f64..10.0) {
            let v = Vector::from_slice(&a);
            let direct = v.axpy(s, &v);
            let composed = &v + &(&v * s);
            for i in 0..v.len() {
                prop_assert!((direct[i] - composed[i]).abs() < 1e-9);
            }
        }
    }
}
