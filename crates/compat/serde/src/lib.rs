//! Offline stand-in for the `serde` crate.
//!
//! The build environment of this workspace has no access to crates.io, so the external
//! `serde` dependency is replaced by this minimal reimplementation of the surface the
//! workspace actually uses: the [`Serialize`] / [`Deserialize`] traits, derive macros for
//! plain structs and fieldless enums (including `#[serde(transparent)]` newtypes), and a
//! self-describing [`Value`] data model that `serde_json` renders to and parses from.
//!
//! The design intentionally differs from upstream serde (no `Serializer`/`Deserializer`
//! visitors): every type converts to and from [`Value`], which is all a JSON-only workspace
//! needs, at a small fraction of the complexity.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data value — the interchange format between [`Serialize`],
/// [`Deserialize`] and the `serde_json` text layer.
///
/// Objects preserve insertion order so serialized artifacts are deterministic and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number (stored as `f64`; integers up to 2^53 round-trip exactly).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map of string keys to values.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as an object's entry list, if it is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks a key up in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with an arbitrary message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// "Expected X, found Y" type mismatch.
    pub fn expected(what: &str, found: &Value) -> Self {
        Self::custom(format!("expected {what}, found {}", found.kind()))
    }

    /// A missing object field.
    pub fn missing_field(name: &str) -> Self {
        Self::custom(format!("missing field `{name}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Converts a value into the [`Value`] data model.
pub trait Serialize {
    /// The data-model representation of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs a value from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses `self` out of a data-model value.
    ///
    /// # Errors
    ///
    /// Returns an error describing the first shape or type mismatch.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// Called by derived struct impls when an object field is absent.  The default is an
    /// error; `Option<T>` overrides it to yield `None` so optional fields can be omitted.
    ///
    /// # Errors
    ///
    /// Returns a "missing field" error unless overridden.
    fn absent_field(name: &str) -> Result<Self, Error> {
        Err(Error::missing_field(name))
    }
}

/// Reads one named field of an object during derived deserialization.
///
/// # Errors
///
/// Propagates the field's own parse error, or `absent_field` when the key is missing.
pub fn field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
        None => T::absent_field(name),
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| Error::expected("number", value))
            }
        }
    )*};
}

impl_float!(f32, f64);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_f64().ok_or_else(|| Error::expected("number", value))?;
                if n.fract() != 0.0 {
                    return Err(Error::custom(format!("expected integer, found {n}")));
                }
                // Range check before the cast: `as` would silently saturate, turning e.g.
                // a typo'd negative seed into 0.
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(Error::custom(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::expected("boolean", value))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of {N} elements, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }

    fn absent_field(_name: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| Error::expected("array", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected array of {expected} elements, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert!(u64::from_value(&Value::Number(1.5)).is_err());
        assert!(
            u64::from_value(&Value::Number(-5.0)).is_err(),
            "negative must not saturate to 0"
        );
        assert!(
            u8::from_value(&Value::Number(300.0)).is_err(),
            "overflow must not saturate"
        );
        assert_eq!(i32::from_value(&Value::Number(-5.0)).unwrap(), -5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert!(String::from_value(&Value::Null).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let t = (1usize, 2usize, 3usize);
        assert_eq!(
            <(usize, usize, usize)>::from_value(&t.to_value()).unwrap(),
            t
        );
        let none: Option<String> = None;
        assert!(none.to_value().is_null());
        assert_eq!(Option::<String>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<String>::absent_field("x").unwrap(), None);
        assert!(String::absent_field("x").is_err());
    }

    #[test]
    fn object_field_lookup() {
        let obj = vec![("a".to_string(), Value::Number(2.0))];
        assert_eq!(field::<u32>(&obj, "a").unwrap(), 2);
        assert!(field::<u32>(&obj, "b").is_err());
        assert_eq!(field::<Option<u32>>(&obj, "b").unwrap(), None);
    }
}
