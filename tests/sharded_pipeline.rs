//! Distributed-run integration test: split a plan into shards, execute each shard in its
//! own "process" (a fresh runner reopening one shared disk-backed simulation cache),
//! merge the shard artifacts, and compare against the single-process run.

use slic_pipeline::{CharacterizationPlan, PipelineRunner, RunArtifact, RunConfig, UnitResult};
use slic_spice::{DiskSimCache, SimulationCache};
use std::path::PathBuf;
use std::sync::Arc;

fn quick_config() -> RunConfig {
    RunConfig {
        seed: Some(99),
        ..RunConfig::default()
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slic-shard-test-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn sorted_units(artifact: &RunArtifact) -> Vec<UnitResult> {
    let mut units = artifact.units.clone();
    units.sort_by_key(UnitResult::unit_id);
    units
}

#[test]
fn four_shards_merged_equal_the_single_process_run_and_reruns_are_free() {
    let resolved = quick_config().resolve().expect("config resolves");

    // Learn once; the reference run and every shard worker consume the same database —
    // exactly the `slic learn` + N x `slic characterize --shard` workflow.
    let learn_runner = PipelineRunner::new(resolved.clone()).expect("runner builds");
    let database = learn_runner.learn().database;

    // Single-process reference: a fresh runner, so its counter covers characterization
    // only.
    let single = PipelineRunner::new(resolved.clone()).expect("runner builds");
    let plan = CharacterizationPlan::from_config(single.config()).expect("non-empty plan");
    assert_eq!(plan.len(), 12);
    let reference = single
        .characterize(&plan, &database)
        .expect("reference run completes");
    assert!(reference.total_simulations > 0);

    let dir = temp_dir("merge");
    let cache_path = dir.join("sim-cache.jsonl");
    let shards = plan.split(4).expect("plan splits");
    assert_eq!(shards.len(), 4);
    assert!(
        shards.iter().filter(|s| !s.is_empty()).count() >= 2,
        "the default plan must actually distribute"
    );

    // Run each shard as a separate "process": reopen the persistent cache from disk,
    // characterize the shard, flush. Later shards warm-start from earlier shards' work.
    let mut artifacts = Vec::new();
    for shard in &shards {
        let cache = Arc::new(DiskSimCache::open(&cache_path).expect("cache opens"));
        let runner =
            PipelineRunner::with_cache(resolved.clone(), cache.clone()).expect("runner builds");
        let artifact = runner
            .characterize(shard, &database)
            .expect("shard run completes");
        assert_eq!(artifact.units.len(), shard.len());
        assert_eq!(
            artifact.planned_units,
            plan.len(),
            "a shard artifact reports the full plan size"
        );
        assert_eq!(
            artifact.total_simulations,
            cache.misses(),
            "every paid simulation is archived"
        );
        cache.flush().expect("cache flushes");
        artifacts.push(artifact);
    }

    // Dropping any shard must be caught, not silently merged into a partial library.
    let missing_one =
        RunArtifact::merge(&artifacts[..3]).expect_err("an incomplete shard set must be rejected");
    assert!(
        missing_one.to_string().contains("incomplete merge"),
        "{missing_one}"
    );

    let merged = RunArtifact::merge(&artifacts).expect("shards merge");

    // The merged artifact is the single-process artifact: same planned units, identical
    // per-unit fits, and — because the shards shared one persistent cache — the same
    // total number of transient simulations paid.
    assert_eq!(merged.planned_units, reference.planned_units);
    assert_eq!(
        merged.units,
        sorted_units(&reference),
        "fits must be identical"
    );
    assert_eq!(merged.total_simulations, reference.total_simulations);
    assert_eq!(merged.cache_misses, reference.cache_misses);
    assert_eq!(merged.cache_hits, reference.cache_hits);
    let mut reference_arcs = reference.characterized.arcs.clone();
    reference_arcs.sort_by_key(|a| a.arc.id());
    let mut merged_arcs = merged.characterized.arcs.clone();
    merged_arcs.sort_by_key(|a| a.arc.id());
    assert_eq!(merged_arcs, reference_arcs);
    assert_eq!(merged_arcs.len(), 6, "every arc obtains both metric fits");

    // The merged artifact persists like any other.
    let merged_path = dir.join("merged.json");
    merged.save(&merged_path).expect("merged artifact saves");
    assert_eq!(RunArtifact::load(&merged_path).expect("reloads"), merged);

    // Fresh process, warm disk cache: rerunning any shard — or the whole plan — pays
    // zero transient simulations.
    let rerun_cache = Arc::new(DiskSimCache::open(&cache_path).expect("cache reopens"));
    assert!(!rerun_cache.is_empty(), "the cache persisted warm state");
    let rerun =
        PipelineRunner::with_cache(resolved.clone(), rerun_cache.clone()).expect("runner builds");
    let largest = shards
        .iter()
        .max_by_key(|s| s.len())
        .expect("four shards exist");
    let shard_replay = rerun
        .characterize(largest, &database)
        .expect("shard rerun completes");
    assert_eq!(
        shard_replay.total_simulations, 0,
        "a rerun shard replays entirely from the persisted cache"
    );
    assert_eq!(shard_replay.cache_misses, 0);

    let full_replay = rerun
        .characterize(&plan, &database)
        .expect("full rerun completes");
    assert_eq!(full_replay.cache_misses, 0, "no coordinate is missing");
    assert_eq!(
        rerun.counter().count(),
        0,
        "neither rerun paid a single transient"
    );
    assert_eq!(
        sorted_units(&full_replay),
        merged.units,
        "replayed fits match"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_rejects_overlapping_and_differently_configured_shards() {
    let resolved = quick_config().resolve().expect("config resolves");
    let runner = PipelineRunner::new(resolved).expect("runner builds");
    let (_, artifact) = runner.run().expect("pipeline runs");

    let err = RunArtifact::merge(&[artifact.clone(), artifact.clone()])
        .expect_err("identical shards overlap");
    assert!(err.to_string().contains("overlapping"), "{err}");

    let mut reseeded = artifact.clone();
    reseeded.seed += 1;
    reseeded.units.clear();
    let err = RunArtifact::merge(&[artifact.clone(), reseeded])
        .expect_err("shards of different runs must not merge");
    assert!(err.to_string().contains("differently-configured"), "{err}");

    let err = RunArtifact::merge(&[]).expect_err("nothing to merge");
    assert!(err.to_string().contains("zero run artifacts"), "{err}");

    // Merging one complete artifact is the identity up to canonical unit order.
    let remerged = RunArtifact::merge(std::slice::from_ref(&artifact)).expect("merges");
    assert_eq!(remerged.total_simulations, artifact.total_simulations);
    assert_eq!(remerged.planned_units, artifact.planned_units);
    assert_eq!(remerged.units.len(), artifact.units.len());
}
