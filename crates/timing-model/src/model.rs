//! The four-parameter compact timing model: parameters, evaluation, residuals, Jacobians.

use serde::{Deserialize, Serialize};
use slic_linalg::Vector;
use slic_spice::InputPoint;
use slic_units::{Amperes, Farads, Seconds};
use std::fmt;

/// Number of parameters in the compact model.
pub const PARAM_COUNT: usize = 4;

/// Conversion factor from the model's `α` unit (fF/ps) to SI (F/s).
const ALPHA_TO_SI: f64 = 1.0e-3;

/// Conversion factor from the model's `Cpar` unit (fF) to SI (F).
const CPAR_TO_SI: f64 = 1.0e-15;

/// The compact-model parameter vector `{kd, Cpar, V', α}`.
///
/// Parameters are stored in the units used throughout the paper's Table I — `kd`
/// dimensionless, `Cpar` in femtofarads, `V'` in volts, `α` in fF/ps — which conveniently
/// puts all four on a comparable numeric scale (≈0.03–1.5), keeping every downstream
/// covariance and normal-equation matrix well conditioned.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Dimensionless delay scaling factor.
    pub kd: f64,
    /// Parasitic output capacitance, in femtofarads.
    pub cpar: f64,
    /// Supply-voltage correction term, in volts (typically negative).
    pub v_prime: f64,
    /// Input-slew sensitivity coefficient, in fF/ps.
    pub alpha: f64,
}

impl TimingParams {
    /// Creates a parameter vector.
    pub fn new(kd: f64, cpar: f64, v_prime: f64, alpha: f64) -> Self {
        Self {
            kd,
            cpar,
            v_prime,
            alpha,
        }
    }

    /// A physically sensible starting point for extraction (close to the Table I values).
    pub fn initial_guess() -> Self {
        Self::new(0.4, 1.0, -0.25, 0.08)
    }

    /// Converts to a dense vector `[kd, cpar, v_prime, alpha]`.
    pub fn to_vector(self) -> Vector {
        Vector::from_slice(&[self.kd, self.cpar, self.v_prime, self.alpha])
    }

    /// Builds parameters from a dense vector `[kd, cpar, v_prime, alpha]`.
    ///
    /// # Panics
    ///
    /// Panics if the vector does not have exactly [`PARAM_COUNT`] entries.
    pub fn from_vector(v: &Vector) -> Self {
        assert_eq!(v.len(), PARAM_COUNT, "parameter vector must have 4 entries");
        Self::new(v[0], v[1], v[2], v[3])
    }

    /// The charge-like factor `Cload + Cpar + α·Sin` in farads.
    pub fn effective_capacitance(&self, point: &InputPoint) -> Farads {
        Farads(
            point.cload.value()
                + self.cpar * CPAR_TO_SI
                + self.alpha * ALPHA_TO_SI * point.sin.value(),
        )
    }

    /// The switched charge `ΔQ = (Vdd + V')·(Cload + Cpar + α·Sin)` in coulombs.
    pub fn delta_q(&self, point: &InputPoint) -> f64 {
        (point.vdd.value() + self.v_prime) * self.effective_capacitance(point).value()
    }

    /// Evaluates the model: `T = kd · ΔQ / Ieff`.
    ///
    /// The result can be a delay or an output slew depending on which quantity the
    /// parameters were extracted for.
    pub fn evaluate(&self, point: &InputPoint, ieff: Amperes) -> Seconds {
        Seconds(self.kd * self.delta_q(point) / ieff.value())
    }

    /// Residual `observed − predicted` for one sample, in seconds.
    pub fn residual(&self, sample: &TimingSample) -> f64 {
        sample.observed.value() - self.evaluate(&sample.point, sample.ieff).value()
    }

    /// Relative residual `(observed − predicted)/observed` for one sample.
    pub fn relative_error(&self, sample: &TimingSample) -> f64 {
        self.residual(sample) / sample.observed.value()
    }

    /// Mean absolute relative fitting error over a sample set, in percent (the "% error"
    /// column of Table I).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn mean_relative_error_percent(&self, samples: &[TimingSample]) -> f64 {
        assert!(!samples.is_empty(), "fit error over empty sample set");
        100.0
            * samples
                .iter()
                .map(|s| self.relative_error(s).abs())
                .sum::<f64>()
            / samples.len() as f64
    }

    /// Gradient of the model prediction with respect to the parameters
    /// `[∂f/∂kd, ∂f/∂Cpar, ∂f/∂V', ∂f/∂α]`, in seconds per parameter unit.
    pub fn gradient(&self, point: &InputPoint, ieff: Amperes) -> Vector {
        let i = ieff.value();
        let v_term = point.vdd.value() + self.v_prime;
        let c_term = self.effective_capacitance(point).value();
        Vector::from_slice(&[
            v_term * c_term / i,
            self.kd * v_term * CPAR_TO_SI / i,
            self.kd * c_term / i,
            self.kd * v_term * ALPHA_TO_SI * point.sin.value() / i,
        ])
    }

    /// Returns `true` when the parameters produce a physically valid (positive) prediction
    /// over the whole of `space`-like usage: `kd > 0`, `Vdd + V' > 0` for the given supply,
    /// and the effective capacitance is positive for the given point.
    pub fn is_physical_at(&self, point: &InputPoint) -> bool {
        self.kd > 0.0
            && point.vdd.value() + self.v_prime > 0.0
            && self.effective_capacitance(point).value() > 0.0
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::initial_guess()
    }
}

impl fmt::Display for TimingParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kd = {:.3}, Cpar = {:.3} fF, V' = {:.3} V, alpha = {:.3} fF/ps",
            self.kd, self.cpar, self.v_prime, self.alpha
        )
    }
}

/// One observation used for extraction: an input condition, the corresponding effective
/// current, and the observed delay or slew.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingSample {
    /// The input condition `ξ`.
    pub point: InputPoint,
    /// Effective switching current of the arc's driving device at this condition.
    pub ieff: Amperes,
    /// Observed delay or output slew.
    pub observed: Seconds,
}

impl TimingSample {
    /// Creates a sample.
    ///
    /// # Panics
    ///
    /// Panics if the current or the observation is not positive and finite.
    pub fn new(point: InputPoint, ieff: Amperes, observed: Seconds) -> Self {
        assert!(
            ieff.value() > 0.0 && ieff.is_finite(),
            "effective current must be positive and finite"
        );
        assert!(
            observed.value() > 0.0 && observed.is_finite(),
            "observed timing value must be positive and finite"
        );
        Self {
            point,
            ieff,
            observed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use slic_units::Volts;

    fn point(sin_ps: f64, cload_ff: f64, vdd: f64) -> InputPoint {
        InputPoint::new(
            Seconds::from_picoseconds(sin_ps),
            Farads::from_femtofarads(cload_ff),
            Volts(vdd),
        )
    }

    fn table1_like_params() -> TimingParams {
        TimingParams::new(0.389, 0.951, -0.266, 0.092)
    }

    #[test]
    fn evaluation_matches_hand_computation() {
        let p = TimingParams::new(0.4, 1.0, -0.25, 0.1);
        let pt = point(5.0, 2.0, 0.8);
        let ieff = Amperes(40e-6);
        // ceff = 2 fF + 1 fF + 0.1 fF/ps * 5 ps = 3.5 fF; dq = 0.55 V * 3.5 fF = 1.925 fC;
        // t = 0.4 * 1.925 fC / 40 uA = 19.25 ps.
        let expected_ps = 0.4 * 0.55 * 3.5e-15 / 40e-6 * 1e12;
        let got = p.evaluate(&pt, ieff).picoseconds();
        assert!(
            (got - expected_ps).abs() < 1e-9,
            "got {got}, expected {expected_ps}"
        );
        assert!((p.effective_capacitance(&pt).femtofarads() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn vector_round_trip() {
        let p = table1_like_params();
        let v = p.to_vector();
        assert_eq!(v.len(), PARAM_COUNT);
        let back = TimingParams::from_vector(&v);
        assert_eq!(p, back);
    }

    #[test]
    #[should_panic(expected = "4 entries")]
    fn wrong_vector_length_rejected() {
        let _ = TimingParams::from_vector(&Vector::zeros(3));
    }

    #[test]
    fn residuals_and_errors() {
        let p = table1_like_params();
        let pt = point(3.0, 1.5, 0.9);
        let ieff = Amperes(55e-6);
        let truth = p.evaluate(&pt, ieff);
        let sample = TimingSample::new(pt, ieff, truth);
        assert!(p.residual(&sample).abs() < 1e-25);
        assert!(p.relative_error(&sample).abs() < 1e-12);
        // A 10 % larger observation gives a 10 %-ish relative error.
        let inflated = TimingSample::new(pt, ieff, Seconds(truth.value() * 1.1));
        assert!((p.relative_error(&inflated) - 0.1 / 1.1).abs() < 1e-9);
        assert!(
            (p.mean_relative_error_percent(&[sample, inflated]) - 100.0 * (0.1 / 1.1) / 2.0).abs()
                < 1e-6
        );
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let p = table1_like_params();
        let pt = point(7.0, 2.5, 0.75);
        let ieff = Amperes(35e-6);
        let analytic = p.gradient(&pt, ieff);
        let h = [1e-6, 1e-6, 1e-7, 1e-6];
        let base_vec = p.to_vector();
        for j in 0..PARAM_COUNT {
            let mut plus = base_vec.clone();
            plus[j] += h[j];
            let mut minus = base_vec.clone();
            minus[j] -= h[j];
            let fd = (TimingParams::from_vector(&plus).evaluate(&pt, ieff).value()
                - TimingParams::from_vector(&minus)
                    .evaluate(&pt, ieff)
                    .value())
                / (2.0 * h[j]);
            let denom = analytic[j].abs().max(1e-30);
            assert!(
                (analytic[j] - fd).abs() / denom < 1e-5,
                "component {j}: analytic {}, fd {}",
                analytic[j],
                fd
            );
        }
    }

    #[test]
    fn physicality_check() {
        let p = table1_like_params();
        assert!(p.is_physical_at(&point(5.0, 2.0, 0.8)));
        // V' more negative than the supply breaks physicality.
        let broken = TimingParams::new(0.4, 1.0, -0.9, 0.1);
        assert!(!broken.is_physical_at(&point(5.0, 2.0, 0.8)));
        let negative_kd = TimingParams::new(-0.1, 1.0, -0.2, 0.1);
        assert!(!negative_kd.is_physical_at(&point(5.0, 2.0, 0.8)));
    }

    #[test]
    fn display_shows_all_parameters() {
        let text = format!("{}", table1_like_params());
        for token in ["kd", "Cpar", "V'", "alpha"] {
            assert!(text.contains(token), "missing {token} in {text}");
        }
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn sample_rejects_nonpositive_observation() {
        let _ = TimingSample::new(point(5.0, 2.0, 0.8), Amperes(40e-6), Seconds(0.0));
    }

    proptest! {
        #[test]
        fn prop_delay_increases_with_load(cload1 in 0.3f64..6.0, cload2 in 0.3f64..6.0,
                                          sin in 1.0f64..15.0, vdd in 0.65f64..1.0) {
            let p = table1_like_params();
            let ieff = Amperes(40e-6);
            let (lo, hi) = if cload1 <= cload2 { (cload1, cload2) } else { (cload2, cload1) };
            let t_lo = p.evaluate(&point(sin, lo, vdd), ieff).value();
            let t_hi = p.evaluate(&point(sin, hi, vdd), ieff).value();
            prop_assert!(t_hi >= t_lo);
        }

        #[test]
        fn prop_delay_scales_inversely_with_current(scale in 0.5f64..4.0,
                                                    sin in 1.0f64..15.0,
                                                    cload in 0.3f64..6.0,
                                                    vdd in 0.65f64..1.0) {
            let p = table1_like_params();
            let pt = point(sin, cload, vdd);
            let base = p.evaluate(&pt, Amperes(40e-6)).value();
            let scaled = p.evaluate(&pt, Amperes(40e-6 * scale)).value();
            prop_assert!((scaled * scale - base).abs() < 1e-9 * base.abs().max(1e-30) * scale.max(1.0) * 10.0);
        }

        #[test]
        fn prop_gradient_kd_component_is_prediction_over_kd(sin in 1.0f64..15.0,
                                                            cload in 0.3f64..6.0,
                                                            vdd in 0.65f64..1.0) {
            let p = table1_like_params();
            let pt = point(sin, cload, vdd);
            let ieff = Amperes(40e-6);
            let g = p.gradient(&pt, ieff);
            let f = p.evaluate(&pt, ieff).value();
            prop_assert!((g[0] - f / p.kd).abs() < 1e-9 * (f / p.kd).abs());
        }
    }
}
