//! Fig. 3: `Td/(Cload+Cpar+α·Sin)` and `Sout/(Cload+Cpar+α·Sin)` are approximately constant
//! across (Cload, Sin) combinations for a NOR2 cell in the 14-nm technology.

use criterion::{criterion_group, criterion_main, Criterion};
use slic::prelude::*;
use slic_bench::banner;
use slic_timing_model::load_slew_collapse;

fn collect_samples(
    engine: &CharacterizationEngine,
    cell: Cell,
) -> (Vec<TimingSample>, Vec<TimingSample>) {
    let arc = TimingArc::new(cell, 0, Transition::Fall);
    let nominal = ProcessSample::nominal();
    let combos: Vec<(f64, f64)> = (0..14)
        .map(|i| (0.5 + 5.0 * i as f64 / 13.0, 1.0 + 13.0 * i as f64 / 13.0))
        .collect();
    let mut delay = Vec::new();
    let mut slew = Vec::new();
    for &vdd in &[0.7, 0.85, 1.0] {
        for &(cload, sin) in &combos {
            let point = InputPoint::new(
                Seconds::from_picoseconds(sin),
                Farads::from_femtofarads(cload),
                Volts(vdd),
            );
            let m = engine.simulate_nominal(cell, &arc, &point);
            let ieff = engine.ieff(&arc, &point, &nominal);
            delay.push(TimingSample::new(point, ieff, m.delay));
            slew.push(TimingSample::new(point, ieff, m.output_slew));
        }
    }
    (delay, slew)
}

fn regenerate() -> (Vec<TimingSample>, TimingParams) {
    banner(
        "Fig. 3",
        "Td/(Cload+Cpar+alpha*Sin) vs 14 load/slew combinations for a 14-nm NOR2 (constant per Vdd)",
    );
    let engine =
        CharacterizationEngine::with_config(TechnologyNode::n14_finfet(), TransientConfig::fast())
            .expect("valid transient configuration");
    let cell = Cell::new(CellKind::Nor2, DriveStrength::X1);
    let fitter = LeastSquaresFitter::new();
    let (delay, slew) = collect_samples(&engine, cell);
    let delay_params = fitter.fit(&delay).params;
    let slew_params = fitter.fit(&slew).params;
    for (samples, params, quantity) in
        [(&delay, &delay_params, "Td"), (&slew, &slew_params, "Sout")]
    {
        println!(
            "\n{quantity} (Cpar = {:.3} fF, alpha = {:.3} fF/ps):",
            params.cpar, params.alpha
        );
        for series in load_slew_collapse(samples, params) {
            let mean = series.y.iter().sum::<f64>() / series.y.len() as f64;
            println!(
                "  {:<12} cv = {:>6.2}%   mean collapsed value = {:.3e}",
                series.label,
                100.0 * series.coefficient_of_variation,
                mean
            );
        }
    }
    println!("\n(paper: the collapsed quantity is flat across the 14 combinations at every Vdd)");
    (delay, delay_params)
}

fn bench(c: &mut Criterion) {
    let (samples, params) = regenerate();
    c.bench_function("fig3_load_slew_collapse", |b| {
        b.iter(|| load_slew_collapse(&samples, &params))
    });
}

criterion_group! {
    name = benches;
    config = slic_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
