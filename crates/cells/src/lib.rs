//! Standard-cell library modeling.
//!
//! The characterization flows of this workspace operate on *cells* — small combinational
//! gates such as inverters, NANDs and NORs — and on their *timing arcs* (an input pin, an
//! output transition direction).  This crate provides:
//!
//! * [`CellKind`] / [`DriveStrength`] / [`Cell`] — the catalogue of supported cell types and
//!   their transistor-level topology descriptions (series/parallel stack structure,
//!   per-input device sizing);
//! * [`Transition`] and [`TimingArc`] — the arc enumeration used by the characterization
//!   grids ("NAND2, input A, output falling");
//! * [`EquivalentInverter`] — the reduction of Fig. 1(b) of the paper: for a given arc the
//!   pull-up network is collapsed into a single equivalent PMOS and the pull-down network
//!   into a single equivalent NMOS, with internal parasitics lumped at the output node.
//!   The transient simulator in `slic-spice` integrates this two-transistor circuit;
//! * [`Library`] — a named collection of cells, with the default library used throughout
//!   the experiments.
//!
//! # Examples
//!
//! ```
//! use slic_cells::{Cell, CellKind, DriveStrength, Library};
//!
//! let lib = Library::standard();
//! assert!(lib.cells().len() >= 6);
//! let nand2 = Cell::new(CellKind::Nand2, DriveStrength::X1);
//! assert_eq!(nand2.input_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arc;
pub mod cell;
pub mod equivalent;
pub mod library;

pub use arc::{TimingArc, Transition};
pub use cell::{Cell, CellKind, DriveStrength};
pub use equivalent::EquivalentInverter;
pub use library::{glob_match, Library};
