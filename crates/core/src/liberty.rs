//! Liberty-flavoured export of a characterized library.
//!
//! Downstream STA tools consume standard-cell timing as Liberty (`.lib`) tables.  Two
//! export paths produce the same readable subset of the Liberty syntax
//! (`library`/`cell`/`pin`/`timing` groups with `cell_rise`/`cell_fall`/
//! `rise_transition`/`fall_transition` tables):
//!
//! * [`export_library`] — characterizes every primary arc of a library on a small grid by
//!   **direct simulation** (one transient per table entry);
//! * [`export_fitted_library`] — renders the tables from **already-extracted compact-model
//!   parameters** ([`FittedArc`]), the output of a pipeline run.  Only zero-cost DC
//!   operating-point evaluations (`Ieff`) are needed, so exporting a characterized library
//!   costs no transient simulations at all.
//!
//! The goal is a faithful, diff-able artefact of a characterization run, not
//! byte-for-byte compatibility with any particular commercial parser.

use slic_cells::{Cell, Library, TimingArc, Transition};
use slic_device::ProcessSample;
use slic_spice::{CharacterizationEngine, InputPoint};
use slic_timing_model::TimingParams;
use slic_units::{Farads, Seconds, Volts};
use std::fmt;

/// An export request that cannot produce a valid Liberty file.
///
/// These used to be assertion panics; they are errors because an export configuration
/// typically arrives from a run artifact or CLI flags, and a bad one should surface as a
/// diagnosable message, not a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExportError {
    /// No cells/arcs were given — an empty `.lib` has no meaning downstream.
    EmptyLibrary,
    /// A table axis with fewer than two indices cannot describe a lookup table.
    DegenerateGrid {
        /// Requested input-slew indices.
        slew_levels: usize,
        /// Requested load-capacitance indices.
        load_levels: usize,
    },
    /// A variation table's rows do not match the export grid — emitting it next to the
    /// nominal tables would silently misalign the LVF indices.
    VariationShape {
        /// Arc whose variation tables are misshapen.
        arc_id: String,
        /// `(slew levels, load levels)` the grid expects.
        expected: (usize, usize),
        /// `(rows, columns)` the variation table provides.
        found: (usize, usize),
    },
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExportError::EmptyLibrary => f.write_str("cannot export an empty library"),
            ExportError::DegenerateGrid {
                slew_levels,
                load_levels,
            } => write!(
                f,
                "export grid needs at least 2x2 indices (got {slew_levels}x{load_levels})"
            ),
            ExportError::VariationShape {
                arc_id,
                expected,
                found,
            } => write!(
                f,
                "variation tables of `{arc_id}` are {}x{} but the export grid is {}x{}; \
                 re-characterize variation with the same profile the export uses",
                found.0, found.1, expected.0, expected.1
            ),
        }
    }
}

impl std::error::Error for ExportError {}

/// Grid used for the exported tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExportGrid {
    /// Number of input-slew indices.
    pub slew_levels: usize,
    /// Number of load-capacitance indices.
    pub load_levels: usize,
}

impl Default for ExportGrid {
    fn default() -> Self {
        Self {
            slew_levels: 4,
            load_levels: 4,
        }
    }
}

/// Validates the grid shape shared by both export paths.
fn check_grid(grid: ExportGrid) -> Result<(), ExportError> {
    if grid.slew_levels < 2 || grid.load_levels < 2 {
        return Err(ExportError::DegenerateGrid {
            slew_levels: grid.slew_levels,
            load_levels: grid.load_levels,
        });
    }
    Ok(())
}

/// The `(slew, load)` table axes (seconds, farads) every export path renders `grid` on —
/// linearly spaced over the engine's characterization input space.
///
/// Public so table *producers* (e.g. a Monte Carlo variation extractor) can simulate on
/// bit-identical coordinates to the tables they will be emitted next to: any derivation of
/// their own would risk off-by-one-ULP axes that silently miss the simulation cache.
pub fn export_axes(engine: &CharacterizationEngine, grid: ExportGrid) -> (Vec<f64>, Vec<f64>) {
    let space = engine.input_space();
    let (sin_lo, sin_hi) = space.sin_range();
    let (cl_lo, cl_hi) = space.cload_range();
    (
        slic_units::range::linspace(sin_lo.value(), sin_hi.value(), grid.slew_levels),
        slic_units::range::linspace(cl_lo.value(), cl_hi.value(), grid.load_levels),
    )
}

/// Characterizes `library` at the technology's nominal supply and renders a Liberty-like
/// description.
///
/// Every value is simulated with the engine's transient solver; the returned string is the
/// complete `.lib` text.
///
/// # Errors
///
/// Returns an [`ExportError`] when the library is empty or the grid has fewer than two
/// levels on either axis.
pub fn export_library(
    engine: &CharacterizationEngine,
    library: &Library,
    grid: ExportGrid,
) -> Result<String, ExportError> {
    if library.is_empty() {
        return Err(ExportError::EmptyLibrary);
    }
    check_grid(grid)?;
    let tech = engine.tech();
    let vdd = tech.vdd_nominal();
    let (slew_axis, load_axis) = export_axes(engine, grid);

    let mut out = String::new();
    out.push_str(&format!(
        "library ({}_slic) {{\n",
        tech.name().replace('-', "_")
    ));
    out.push_str("  delay_model : table_lookup;\n");
    out.push_str("  time_unit : \"1ps\";\n");
    out.push_str("  capacitive_load_unit (1, ff);\n");
    out.push_str(&format!("  nom_voltage : {:.3};\n", vdd.value()));
    out.push_str(&format!(
        "  lu_table_template (slic_template) {{\n    variable_1 : input_net_transition;\n    variable_2 : total_output_net_capacitance;\n    index_1 (\"{}\");\n    index_2 (\"{}\");\n  }}\n",
        format_axis_ps(&slew_axis),
        format_axis_ff(&load_axis)
    ));

    for &cell in library.cells() {
        out.push_str(&render_cell(engine, cell, vdd, &slew_axis, &load_axis));
    }
    out.push_str("}\n");
    Ok(out)
}

/// The fitted compact models of one timing arc — what a pipeline run archives per arc.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedArc {
    /// The arc the parameters model.
    pub arc: TimingArc,
    /// Compact-model parameters of the propagation delay.
    pub delay: TimingParams,
    /// Compact-model parameters of the output slew.
    pub slew: TimingParams,
}

/// LVF-style variation moments of one arc, on the **same index grid** as its nominal
/// tables: rows are `[slew][load]`, all values in **seconds** (sigma = sample standard
/// deviation, skewness = signed cube root of the third central moment, the unit LVF
/// `ocv_skewness_*` groups use).
#[derive(Debug, Clone, PartialEq)]
pub struct ArcVariation {
    /// The arc the moments describe.
    pub arc: TimingArc,
    /// Delay standard deviation per grid point.
    pub delay_sigma: Vec<Vec<f64>>,
    /// Delay skewness (time-valued) per grid point.
    pub delay_skew: Vec<Vec<f64>>,
    /// Output-slew standard deviation per grid point.
    pub slew_sigma: Vec<Vec<f64>>,
    /// Output-slew skewness (time-valued) per grid point.
    pub slew_skew: Vec<Vec<f64>>,
}

impl ArcVariation {
    /// Validates that every moment table matches the export grid shape.
    fn check_shape(&self, grid: ExportGrid) -> Result<(), ExportError> {
        let expected = (grid.slew_levels, grid.load_levels);
        for rows in [
            &self.delay_sigma,
            &self.delay_skew,
            &self.slew_sigma,
            &self.slew_skew,
        ] {
            // Report the first offending row's width, so a ragged interior row yields an
            // error naming the actual defect instead of two identical shapes.
            let bad_row = rows.iter().find(|r| r.len() != expected.1);
            if rows.len() != expected.0 || bad_row.is_some() {
                return Err(ExportError::VariationShape {
                    arc_id: self.arc.id(),
                    expected,
                    found: (rows.len(), bad_row.map_or(expected.1, Vec::len)),
                });
            }
        }
        Ok(())
    }
}

/// Renders a Liberty-like description from already-extracted compact-model parameters.
///
/// The table values are model evaluations at the grid points; the engine is only consulted
/// for effective currents and input capacitances (DC operating-point evaluations), so this
/// export increments the simulation counter by **zero**.
///
/// Cells are emitted in first-appearance order of `arcs`; a cell's timing group for a
/// transition is omitted when no fitted arc covers it.
///
/// # Errors
///
/// Returns an [`ExportError`] when `arcs` is empty or the grid has fewer than two levels
/// on either axis.
pub fn export_fitted_library(
    engine: &CharacterizationEngine,
    library_name: &str,
    arcs: &[FittedArc],
    grid: ExportGrid,
) -> Result<String, ExportError> {
    export_fitted_library_with_variation(engine, library_name, arcs, &[], grid)
}

/// [`export_fitted_library`] plus LVF-style variation groups: for every fitted arc with an
/// [`ArcVariation`] entry, `ocv_sigma_cell_{rise,fall}` / `ocv_skewness_cell_{rise,fall}`
/// (delay moments) and `ocv_sigma_{rise,fall}_transition` /
/// `ocv_skewness_{rise,fall}_transition` (slew moments) tables are emitted next to the
/// nominal tables, on the same `slic_template` index grid.
///
/// Arcs without a variation entry keep a purely nominal timing group; variation entries
/// for arcs absent from `arcs` are ignored (there is no nominal table to sit next to).
///
/// # Errors
///
/// Returns an [`ExportError`] when `arcs` is empty, the grid is degenerate, or a
/// variation entry's tables do not match the grid shape.
pub fn export_fitted_library_with_variation(
    engine: &CharacterizationEngine,
    library_name: &str,
    arcs: &[FittedArc],
    variation: &[ArcVariation],
    grid: ExportGrid,
) -> Result<String, ExportError> {
    if arcs.is_empty() {
        return Err(ExportError::EmptyLibrary);
    }
    check_grid(grid)?;
    for entry in variation {
        entry.check_shape(grid)?;
    }
    let tech = engine.tech();
    let vdd = tech.vdd_nominal();
    let (slew_axis, load_axis) = export_axes(engine, grid);

    let mut out = String::new();
    out.push_str(&format!(
        "library ({}_slic) {{\n",
        library_name.replace(['-', ' '], "_")
    ));
    out.push_str("  delay_model : table_lookup;\n");
    out.push_str("  time_unit : \"1ps\";\n");
    out.push_str("  capacitive_load_unit (1, ff);\n");
    out.push_str(&format!("  nom_voltage : {:.3};\n", vdd.value()));
    out.push_str(&format!(
        "  lu_table_template (slic_template) {{\n    variable_1 : input_net_transition;\n    variable_2 : total_output_net_capacitance;\n    index_1 (\"{}\");\n    index_2 (\"{}\");\n  }}\n",
        format_axis_ps(&slew_axis),
        format_axis_ff(&load_axis)
    ));

    let mut cells: Vec<Cell> = Vec::new();
    for fitted in arcs {
        if !cells.contains(&fitted.arc.cell()) {
            cells.push(fitted.arc.cell());
        }
    }
    for cell in cells {
        out.push_str(&render_fitted_cell(
            engine, cell, arcs, variation, vdd, &slew_axis, &load_axis,
        ));
    }
    out.push_str("}\n");
    Ok(out)
}

fn render_fitted_cell(
    engine: &CharacterizationEngine,
    cell: Cell,
    arcs: &[FittedArc],
    variation: &[ArcVariation],
    vdd: Volts,
    slew_axis: &[f64],
    load_axis: &[f64],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("  cell ({}) {{\n", cell.name()));
    let eq = engine.equivalent_inverter(cell, &ProcessSample::nominal());
    for pin in 0..cell.input_count() {
        out.push_str(&format!(
            "    pin (A{pin}) {{\n      direction : input;\n      capacitance : {:.4};\n    }}\n",
            eq.input_cap().femtofarads()
        ));
    }
    out.push_str("    pin (Y) {\n      direction : output;\n");
    for transition in Transition::BOTH {
        let Some(fitted) = arcs
            .iter()
            .find(|f| f.arc.cell() == cell && f.arc.output_transition() == transition)
        else {
            continue;
        };
        let nominal = ProcessSample::nominal();
        let mut delay_rows = Vec::with_capacity(slew_axis.len());
        let mut slew_rows = Vec::with_capacity(slew_axis.len());
        for &sin in slew_axis {
            let mut delay_row = Vec::with_capacity(load_axis.len());
            let mut slew_row = Vec::with_capacity(load_axis.len());
            for &cload in load_axis {
                let point = InputPoint::new(Seconds(sin), Farads(cload), vdd);
                let ieff = engine.ieff(&fitted.arc, &point, &nominal);
                delay_row.push(fitted.delay.evaluate(&point, ieff).picoseconds());
                slew_row.push(fitted.slew.evaluate(&point, ieff).picoseconds());
            }
            delay_rows.push(delay_row);
            slew_rows.push(slew_row);
        }
        let (delay_group, slew_group) = match transition {
            Transition::Rise => ("cell_rise", "rise_transition"),
            Transition::Fall => ("cell_fall", "fall_transition"),
        };
        out.push_str(&format!(
            "      timing () {{\n        related_pin : \"A{}\";\n",
            fitted.arc.input_pin()
        ));
        out.push_str(&render_table(delay_group, &delay_rows));
        out.push_str(&render_table(slew_group, &slew_rows));
        if let Some(moments) = variation.iter().find(|v| v.arc == fitted.arc) {
            let ps = |rows: &[Vec<f64>]| -> Vec<Vec<f64>> {
                rows.iter()
                    .map(|row| row.iter().map(|v| v * 1e12).collect())
                    .collect()
            };
            let (sigma_delay, skew_delay, sigma_slew, skew_slew) = match transition {
                Transition::Rise => (
                    "ocv_sigma_cell_rise",
                    "ocv_skewness_cell_rise",
                    "ocv_sigma_rise_transition",
                    "ocv_skewness_rise_transition",
                ),
                Transition::Fall => (
                    "ocv_sigma_cell_fall",
                    "ocv_skewness_cell_fall",
                    "ocv_sigma_fall_transition",
                    "ocv_skewness_fall_transition",
                ),
            };
            out.push_str(&render_table(sigma_delay, &ps(&moments.delay_sigma)));
            out.push_str(&render_table(skew_delay, &ps(&moments.delay_skew)));
            out.push_str(&render_table(sigma_slew, &ps(&moments.slew_sigma)));
            out.push_str(&render_table(skew_slew, &ps(&moments.slew_skew)));
        }
        out.push_str("      }\n");
    }
    out.push_str("    }\n  }\n");
    out
}

fn render_cell(
    engine: &CharacterizationEngine,
    cell: Cell,
    vdd: Volts,
    slew_axis: &[f64],
    load_axis: &[f64],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("  cell ({}) {{\n", cell.name()));
    let eq = engine.equivalent_inverter(cell, &slic_device::ProcessSample::nominal());
    for pin in 0..cell.input_count() {
        out.push_str(&format!(
            "    pin (A{pin}) {{\n      direction : input;\n      capacitance : {:.4};\n    }}\n",
            eq.input_cap().femtofarads()
        ));
    }
    out.push_str("    pin (Y) {\n      direction : output;\n");
    for transition in Transition::BOTH {
        let arc = TimingArc::new(cell, 0, transition);
        let (delay_rows, slew_rows) = table_values(engine, cell, &arc, vdd, slew_axis, load_axis);
        let (delay_group, slew_group) = match transition {
            Transition::Rise => ("cell_rise", "rise_transition"),
            Transition::Fall => ("cell_fall", "fall_transition"),
        };
        out.push_str("      timing () {\n        related_pin : \"A0\";\n");
        out.push_str(&render_table(delay_group, &delay_rows));
        out.push_str(&render_table(slew_group, &slew_rows));
        out.push_str("      }\n");
    }
    out.push_str("    }\n  }\n");
    out
}

fn table_values(
    engine: &CharacterizationEngine,
    cell: Cell,
    arc: &TimingArc,
    vdd: Volts,
    slew_axis: &[f64],
    load_axis: &[f64],
) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let mut delay_rows = Vec::with_capacity(slew_axis.len());
    let mut slew_rows = Vec::with_capacity(slew_axis.len());
    for &sin in slew_axis {
        let mut delay_row = Vec::with_capacity(load_axis.len());
        let mut slew_row = Vec::with_capacity(load_axis.len());
        for &cload in load_axis {
            let point = slic_spice::InputPoint::new(Seconds(sin), Farads(cload), vdd);
            let m = engine.simulate_nominal(cell, arc, &point);
            delay_row.push(m.delay.picoseconds());
            slew_row.push(m.output_slew.picoseconds());
        }
        delay_rows.push(delay_row);
        slew_rows.push(slew_row);
    }
    (delay_rows, slew_rows)
}

fn render_table(group: &str, rows: &[Vec<f64>]) -> String {
    let mut out = format!("        {group} (slic_template) {{\n          values ( \\\n");
    for (i, row) in rows.iter().enumerate() {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:.4}")).collect();
        let terminator = if i + 1 == rows.len() {
            " );\n"
        } else {
            ", \\\n"
        };
        out.push_str(&format!("            \"{}\"{terminator}", cells.join(", ")));
    }
    out.push_str("        }\n");
    out
}

fn format_axis_ps(axis: &[f64]) -> String {
    axis.iter()
        .map(|v| format!("{:.3}", v * 1e12))
        .collect::<Vec<_>>()
        .join(", ")
}

fn format_axis_ff(axis: &[f64]) -> String {
    axis.iter()
        .map(|v| format!("{:.3}", v * 1e15))
        .collect::<Vec<_>>()
        .join(", ")
}

/// One `values ( ... )` table found by [`scan_liberty_tables`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibertyTableScan {
    /// Name of the enclosing `cell (...)` group.
    pub cell: String,
    /// Table group name, e.g. `cell_rise` or `ocv_sigma_cell_fall`.
    pub group: String,
    /// Number of value rows (slew indices).
    pub rows: usize,
    /// Number of columns per row (load indices).
    pub cols: usize,
}

/// Parses an exported Liberty text back into its table inventory — the round-trip check
/// used by the integration tests and the CI smoke jobs.
///
/// This is deliberately *not* a general Liberty parser: it validates exactly the subset
/// the exporters emit — balanced braces, and for every `<group> (slic_template)` block a
/// `values ( ... )` body whose rows are rectangular and whose every entry parses as a
/// finite number — and returns one [`LibertyTableScan`] per table.
///
/// # Errors
///
/// Returns a message naming the offending line on unbalanced braces, a truncated values
/// block, ragged rows or a non-finite table entry.
pub fn scan_liberty_tables(text: &str) -> Result<Vec<LibertyTableScan>, String> {
    if text.matches('{').count() != text.matches('}').count() {
        return Err(format!(
            "unbalanced braces: {} opening vs {} closing",
            text.matches('{').count(),
            text.matches('}').count()
        ));
    }
    let mut tables = Vec::new();
    let mut cell = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((_, raw)) = lines.next() {
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("cell (") {
            cell = rest.split(')').next().unwrap_or("").to_string();
            continue;
        }
        let Some(group) = line.strip_suffix("(slic_template) {").map(str::trim) else {
            continue;
        };
        // The template *definition* block has index lines, not values; only consume a
        // values body when one actually follows.
        if !lines
            .peek()
            .is_some_and(|(_, next)| next.trim().starts_with("values ("))
        {
            continue;
        }
        lines.next();
        let mut row_lengths: Vec<usize> = Vec::new();
        loop {
            let Some((row_number, row_raw)) = lines.next() else {
                return Err(format!(
                    "table `{group}` of cell `{cell}` ends mid-values block"
                ));
            };
            let row_line = row_raw.trim();
            let Some(first_quote) = row_line.find('"') else {
                return Err(format!(
                    "line {}: expected a quoted values row in table `{group}`",
                    row_number + 1
                ));
            };
            let Some(last_quote) = row_line.rfind('"').filter(|end| *end > first_quote) else {
                return Err(format!(
                    "line {}: unterminated values row in table `{group}`",
                    row_number + 1
                ));
            };
            let body = &row_line[first_quote + 1..last_quote];
            let mut cols = 0usize;
            for entry in body.split(',') {
                let value: f64 = entry.trim().parse().map_err(|_| {
                    format!(
                        "line {}: `{}` in table `{group}` is not a number",
                        row_number + 1,
                        entry.trim()
                    )
                })?;
                if !value.is_finite() {
                    return Err(format!(
                        "line {}: non-finite entry in table `{group}`",
                        row_number + 1
                    ));
                }
                cols += 1;
            }
            row_lengths.push(cols);
            if row_line.ends_with(");") {
                break;
            }
        }
        let cols = row_lengths[0];
        if row_lengths.iter().any(|c| *c != cols) {
            return Err(format!(
                "table `{group}` of cell `{cell}` has ragged rows: {row_lengths:?}"
            ));
        }
        tables.push(LibertyTableScan {
            cell: cell.clone(),
            group: group.to_string(),
            rows: row_lengths.len(),
            cols,
        });
    }
    if tables.is_empty() {
        return Err("no lookup tables found".to_string());
    }
    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slic_cells::{CellKind, DriveStrength};
    use slic_device::TechnologyNode;
    use slic_spice::TransientConfig;

    fn engine() -> CharacterizationEngine {
        CharacterizationEngine::with_config(TechnologyNode::n14_finfet(), TransientConfig::fast())
            .expect("valid transient configuration")
    }

    #[test]
    fn export_contains_library_cells_and_tables() {
        let eng = engine();
        let lib = Library::new(
            "mini",
            [
                Cell::new(CellKind::Inv, DriveStrength::X1),
                Cell::new(CellKind::Nand2, DriveStrength::X1),
            ],
        );
        let grid = ExportGrid {
            slew_levels: 2,
            load_levels: 2,
        };
        let text = export_library(&eng, &lib, grid).expect("export succeeds");
        assert!(text.starts_with("library ("));
        assert!(text.contains("cell (INV_X1)"));
        assert!(text.contains("cell (NAND2_X1)"));
        assert!(text.contains("cell_rise"));
        assert!(text.contains("fall_transition"));
        assert!(text.contains("lu_table_template"));
        // Two cells x two transitions x two tables x 2 rows of values.
        assert!(text.matches("values (").count() == 8);
        // Braces balance.
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        // Cost: 2 cells x 2 transitions x 4 grid points.
        assert_eq!(eng.simulation_count(), 16);
    }

    #[test]
    fn delays_in_tables_increase_with_load() {
        let eng = engine();
        let lib = Library::new("inv", [Cell::new(CellKind::Inv, DriveStrength::X1)]);
        let grid = ExportGrid {
            slew_levels: 2,
            load_levels: 3,
        };
        let text = export_library(&eng, &lib, grid).expect("export succeeds");
        // Extract the first values row and check it is increasing (delay vs load).
        let row = text
            .lines()
            .find(|l| l.trim_start().starts_with('"'))
            .expect("at least one values row");
        let nums: Vec<f64> = row
            .trim()
            .trim_start_matches('"')
            .split('"')
            .next()
            .unwrap()
            .split(',')
            .map(|s| s.trim().parse::<f64>().unwrap())
            .collect();
        assert_eq!(nums.len(), 3);
        assert!(nums.windows(2).all(|w| w[1] > w[0]), "row = {nums:?}");
    }

    #[test]
    fn fitted_export_costs_no_simulations_and_tracks_the_model() {
        let eng = engine();
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        // Fit both metrics of both transitions from a handful of direct simulations.
        let mut arcs = Vec::new();
        let points = eng.input_space().lut_grid(3, 3, 2);
        let nominal = slic_device::ProcessSample::nominal();
        for transition in Transition::BOTH {
            let arc = TimingArc::new(cell, 0, transition);
            let ms = eng.sweep_nominal(cell, &arc, &points);
            let fitter = slic_timing_model::LeastSquaresFitter::new();
            let samples = |metric: fn(&slic_spice::TimingMeasurement) -> slic_units::Seconds| {
                points
                    .iter()
                    .zip(&ms)
                    .map(|(p, m)| {
                        slic_timing_model::TimingSample::new(
                            *p,
                            eng.ieff(&arc, p, &nominal),
                            metric(m),
                        )
                    })
                    .collect::<Vec<_>>()
            };
            arcs.push(FittedArc {
                arc,
                delay: fitter.fit(&samples(|m| m.delay)).params,
                slew: fitter.fit(&samples(|m| m.output_slew)).params,
            });
        }
        let before = eng.simulation_count();
        let text = export_fitted_library(
            &eng,
            "run-artifact",
            &arcs,
            ExportGrid {
                slew_levels: 3,
                load_levels: 3,
            },
        )
        .expect("export succeeds");
        assert_eq!(
            eng.simulation_count(),
            before,
            "fitted export must not simulate"
        );
        assert!(text.starts_with("library (run_artifact_slic)"));
        assert!(text.contains("cell (INV_X1)"));
        assert!(text.contains("cell_rise"));
        assert!(text.contains("fall_transition"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        // The model-rendered delay row increases with load, like the simulated tables.
        let row = text
            .lines()
            .find(|l| l.trim_start().starts_with('"'))
            .expect("at least one values row");
        let nums: Vec<f64> = row
            .trim()
            .trim_start_matches('"')
            .split('"')
            .next()
            .unwrap()
            .split(',')
            .map(|s| s.trim().parse::<f64>().unwrap())
            .collect();
        assert!(nums.windows(2).all(|w| w[1] > w[0]), "row = {nums:?}");
    }

    #[test]
    fn fitted_export_skips_uncovered_transitions() {
        let eng = engine();
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let arcs = [FittedArc {
            arc,
            delay: slic_timing_model::TimingParams::initial_guess(),
            slew: slic_timing_model::TimingParams::initial_guess(),
        }];
        let text = export_fitted_library(&eng, "partial", &arcs, ExportGrid::default())
            .expect("export succeeds");
        assert!(text.contains("cell_fall"));
        assert!(
            !text.contains("cell_rise"),
            "uncovered rise transition must be omitted"
        );
    }

    /// A uniform moments grid of the given shape, for variation-export tests.
    fn flat_rows(rows: usize, cols: usize, value: f64) -> Vec<Vec<f64>> {
        vec![vec![value; cols]; rows]
    }

    fn variation_for(arc: TimingArc, rows: usize, cols: usize) -> ArcVariation {
        ArcVariation {
            arc,
            delay_sigma: flat_rows(rows, cols, 0.4e-12),
            delay_skew: flat_rows(rows, cols, 0.1e-12),
            slew_sigma: flat_rows(rows, cols, 0.3e-12),
            slew_skew: flat_rows(rows, cols, -0.05e-12),
        }
    }

    #[test]
    fn variation_export_emits_lvf_groups_on_the_nominal_grid() {
        let eng = engine();
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        let grid = ExportGrid {
            slew_levels: 3,
            load_levels: 2,
        };
        let arcs: Vec<FittedArc> = Transition::BOTH
            .into_iter()
            .map(|t| FittedArc {
                arc: TimingArc::new(cell, 0, t),
                delay: slic_timing_model::TimingParams::initial_guess(),
                slew: slic_timing_model::TimingParams::initial_guess(),
            })
            .collect();
        // Only the fall arc gets moments: the rise group must stay purely nominal.
        let variation = [variation_for(arcs[1].arc, 3, 2)];
        let text = export_fitted_library_with_variation(&eng, "lvf", &arcs, &variation, grid)
            .expect("export succeeds");
        for group in [
            "ocv_sigma_cell_fall",
            "ocv_skewness_cell_fall",
            "ocv_sigma_fall_transition",
            "ocv_skewness_fall_transition",
        ] {
            assert!(text.contains(group), "missing `{group}`");
        }
        assert!(
            !text.contains("ocv_sigma_cell_rise"),
            "an arc without moments must not grow LVF groups"
        );
        let tables = scan_liberty_tables(&text).expect("export parses back");
        let shape_of = |group: &str| {
            let t = tables
                .iter()
                .find(|t| t.group == group)
                .unwrap_or_else(|| panic!("table `{group}` scanned"));
            (t.rows, t.cols)
        };
        assert_eq!(shape_of("cell_fall"), (3, 2));
        assert_eq!(
            shape_of("ocv_sigma_cell_fall"),
            shape_of("cell_fall"),
            "LVF tables share the nominal index grid"
        );
        assert_eq!(shape_of("ocv_skewness_fall_transition"), (3, 2));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        // Without variation entries the export is byte-identical to the plain path.
        let nominal_only =
            export_fitted_library(&eng, "lvf", &arcs, grid).expect("export succeeds");
        let via_variation = export_fitted_library_with_variation(&eng, "lvf", &arcs, &[], grid)
            .expect("export succeeds");
        assert_eq!(nominal_only, via_variation);
    }

    #[test]
    fn misshapen_variation_tables_are_rejected() {
        let eng = engine();
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let arcs = [FittedArc {
            arc,
            delay: slic_timing_model::TimingParams::initial_guess(),
            slew: slic_timing_model::TimingParams::initial_guess(),
        }];
        let variation = [variation_for(arc, 2, 2)];
        let err = export_fitted_library_with_variation(
            &eng,
            "bad",
            &arcs,
            &variation,
            ExportGrid {
                slew_levels: 4,
                load_levels: 4,
            },
        )
        .expect_err("a 2x2 moments grid cannot sit on a 4x4 template");
        assert!(matches!(err, ExportError::VariationShape { .. }), "{err:?}");
        assert!(err.to_string().contains("2x2"), "{err}");
    }

    #[test]
    fn liberty_scanner_round_trips_exports_and_rejects_mangled_text() {
        let eng = engine();
        let lib = Library::new("mini", [Cell::new(CellKind::Inv, DriveStrength::X1)]);
        let grid = ExportGrid {
            slew_levels: 2,
            load_levels: 3,
        };
        let text = export_library(&eng, &lib, grid).expect("export succeeds");
        let tables = scan_liberty_tables(&text).expect("export parses back");
        // One cell x two transitions x two tables.
        assert_eq!(tables.len(), 4);
        assert!(tables
            .iter()
            .all(|t| t.cell == "INV_X1" && t.rows == 2 && t.cols == 3));
        // A dropped closing brace and a corrupted number must both be caught.
        assert!(scan_liberty_tables(&text.replacen('}', "", 1))
            .unwrap_err()
            .contains("unbalanced braces"));
        let first_value = text
            .lines()
            .find(|l| l.trim_start().starts_with('"'))
            .unwrap()
            .trim()
            .trim_start_matches('"')
            .split(',')
            .next()
            .unwrap()
            .to_string();
        let mangled = text.replacen(&first_value, "oops", 1);
        assert!(scan_liberty_tables(&mangled)
            .unwrap_err()
            .contains("not a number"));
    }

    #[test]
    fn empty_library_rejected() {
        let err = export_library(&engine(), &Library::new("none", []), ExportGrid::default())
            .expect_err("empty library must be rejected");
        assert_eq!(err, ExportError::EmptyLibrary);
        assert!(err.to_string().contains("empty library"));
    }

    #[test]
    fn empty_fitted_export_rejected() {
        let err = export_fitted_library(&engine(), "none", &[], ExportGrid::default())
            .expect_err("empty fitted export must be rejected");
        assert_eq!(err, ExportError::EmptyLibrary);
    }

    #[test]
    fn degenerate_grid_rejected() {
        let lib = Library::new("inv", [Cell::new(CellKind::Inv, DriveStrength::X1)]);
        let err = export_library(
            &engine(),
            &lib,
            ExportGrid {
                slew_levels: 1,
                load_levels: 4,
            },
        )
        .expect_err("degenerate grid must be rejected");
        assert_eq!(
            err,
            ExportError::DegenerateGrid {
                slew_levels: 1,
                load_levels: 4
            }
        );
        assert!(err.to_string().contains("at least 2x2"));
    }
}
