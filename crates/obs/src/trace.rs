//! The structured trace recorder: spans and events as JSON lines.
//!
//! Design constraints, in order:
//!
//! 1. **Display-only.**  A recorder never influences a result path; artifacts are
//!    byte-identical with tracing on or off.  Everything here is best-effort — a full
//!    disk drops trace lines, never the run.
//! 2. **Crash-safe framing.**  Every record is rendered into one `String` (terminated
//!    by `\n`) and written with a single `write_all` under the sink lock, so a panic
//!    or a killed worker leaves a well-formed JSON-lines *prefix* plus at most one
//!    torn final line — which `slic profile` salvages and reports.
//! 3. **Free when disabled.**  [`TraceRecorder::disabled`] carries no allocation and
//!    every call exits on one `Option` check; the engine can call it per batch without
//!    budgeting for it.
//! 4. **No forbidden reads.**  Timestamps come from the [`Clock`] trait (monotonic,
//!    origin = recorder construction) and thread ids from a process-local counter
//!    handed out on first use — never `thread::current`, which D1 bans.
//!
//! Record schema (one JSON object per line; `parent` omitted for roots):
//!
//! ```json
//! {"type":"span","id":7,"parent":3,"thread":2,"name":"solve_batch",
//!  "start_ns":120,"dur_ns":450,"attrs":{"lanes":"16"}}
//! {"type":"event","id":9,"parent":3,"thread":2,"name":"metrics","at_ns":990,"attrs":{}}
//! ```
//!
//! A span line is written when its [`SpanGuard`] drops — so an *unfinished* span (its
//! thread panicked, its process died) is simply absent, never half-written.  Parent
//! correlation uses a per-thread stack of open span ids; work crossing threads (rayon
//! work units, farm dispatchers) passes an explicit parent via
//! [`TraceRecorder::span_under`].

use crate::clock::{Clock, MonotonicClock};
use std::cell::RefCell;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Process-wide thread-id dispenser: each thread takes the next id the first time it
/// records anything.  Small, stable within a run, and free of `thread::current`.
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

fn current_parent() -> Option<u64> {
    SPAN_STACK.with(|stack| stack.borrow().last().copied())
}

/// Escapes `text` for embedding inside a JSON string literal.
///
/// The inverse lives in [`crate::profile::parse_json`]; a proptest pins the round trip
/// for names and attribute values containing quotes, backslashes and control bytes.
pub fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xf;
                    out.push(char::from_digit(digit, 16).unwrap_or('0')); // slic-lint: allow(P1) -- structural: a masked nibble is always a valid hex digit.
                }
            }
            c => out.push(c),
        }
    }
    out
}

struct Shared {
    clock: Box<dyn Clock>,
    sink: Mutex<Box<dyn Write + Send>>,
    next_id: AtomicU64,
}

impl Shared {
    fn write_line(&self, line: &str) {
        let mut sink = self
            .sink
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // Best-effort: telemetry never fails a run.
        let _ = sink.write_all(line.as_bytes());
    }
}

/// The opt-in span/event recorder.  Clones share one sink and one id space.
#[derive(Clone, Default)]
pub struct TraceRecorder {
    shared: Option<Arc<Shared>>,
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("enabled", &self.shared.is_some())
            .finish()
    }
}

impl TraceRecorder {
    /// The no-op recorder: every span/event call returns immediately.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A recorder appending JSON lines to a fresh file at `path` (truncating any
    /// previous trace), timed by a [`MonotonicClock`] started now.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the sidecar file cannot be created.
    pub fn to_file(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::with_sink(
            Box::new(MonotonicClock::new()),
            Box::new(std::io::BufWriter::new(file)),
        ))
    }

    /// A recorder over an explicit clock and sink — the test constructor.
    pub fn with_sink(clock: Box<dyn Clock>, sink: Box<dyn Write + Send>) -> Self {
        Self {
            shared: Some(Arc::new(Shared {
                clock,
                sink: Mutex::new(sink),
                next_id: AtomicU64::new(1),
            })),
        }
    }

    /// Whether this recorder writes anywhere.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Opens a span parented under the current thread's innermost open span.
    ///
    /// The span line is written when the returned guard drops; attributes added later
    /// via [`SpanGuard::attr`] are included.
    pub fn span(&self, name: &str, attrs: &[(&str, String)]) -> SpanGuard {
        self.span_inner(name, attrs, current_parent(), true)
    }

    /// Opens a span under an explicit parent id — for work that crosses threads
    /// (rayon units, farm dispatchers), where the opener's stack is not the parent.
    pub fn span_under(
        &self,
        parent: Option<u64>,
        name: &str,
        attrs: &[(&str, String)],
    ) -> SpanGuard {
        self.span_inner(name, attrs, parent, true)
    }

    fn span_inner(
        &self,
        name: &str,
        attrs: &[(&str, String)],
        parent: Option<u64>,
        push: bool,
    ) -> SpanGuard {
        let Some(shared) = &self.shared else {
            return SpanGuard::noop();
        };
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        if push {
            SPAN_STACK.with(|stack| stack.borrow_mut().push(id));
        }
        SpanGuard {
            shared: Some(Arc::clone(shared)),
            id,
            parent,
            name: name.to_string(),
            start_ns: shared.clock.now_ns(),
            attrs: attrs
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
            on_stack: push,
        }
    }

    /// Writes an instantaneous event line immediately.
    pub fn event(&self, name: &str, attrs: &[(&str, String)]) {
        let Some(shared) = &self.shared else {
            return;
        };
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        let mut line = format!("{{\"type\":\"event\",\"id\":{id}");
        if let Some(parent) = current_parent() {
            line.push_str(&format!(",\"parent\":{parent}"));
        }
        line.push_str(&format!(
            ",\"thread\":{},\"name\":\"{}\",\"at_ns\":{}",
            thread_id(),
            escape_json(name),
            shared.clock.now_ns(),
        ));
        render_attrs(&mut line, attrs.iter().map(|(k, v)| (*k, v.as_str())));
        line.push_str("}\n");
        shared.write_line(&line);
    }

    /// Flushes the sink (spans already dropped are on disk afterwards).
    pub fn flush(&self) {
        if let Some(shared) = &self.shared {
            let mut sink = shared
                .sink
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let _ = sink.flush();
        }
    }
}

fn render_attrs<'a>(line: &mut String, attrs: impl Iterator<Item = (&'a str, &'a str)>) {
    line.push_str(",\"attrs\":{");
    for (i, (key, value)) in attrs.enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push('"');
        line.push_str(&escape_json(key));
        line.push_str("\":\"");
        line.push_str(&escape_json(value));
        line.push('"');
    }
    line.push('}');
}

/// An open span.  Dropping it writes the complete span line (id, parent, thread,
/// start, duration, attrs) in one atomic `write_all`.
pub struct SpanGuard {
    shared: Option<Arc<Shared>>,
    id: u64,
    parent: Option<u64>,
    name: String,
    start_ns: u64,
    attrs: Vec<(String, String)>,
    on_stack: bool,
}

impl SpanGuard {
    fn noop() -> Self {
        Self {
            shared: None,
            id: 0,
            parent: None,
            name: String::new(),
            start_ns: 0,
            attrs: Vec::new(),
            on_stack: false,
        }
    }

    /// The span id to parent cross-thread children under; `None` when disabled.
    pub fn id(&self) -> Option<u64> {
        self.shared.as_ref().map(|_| self.id)
    }

    /// Nanoseconds since the span opened (0 when disabled) — the duration feed for
    /// latency histograms, without any caller touching a clock type.
    pub fn elapsed_ns(&self) -> u64 {
        self.shared.as_ref().map_or(0, |shared| {
            shared.clock.now_ns().saturating_sub(self.start_ns)
        })
    }

    /// Adds an attribute discovered mid-span (e.g. cache hit counts known only after
    /// the lookup pass).
    pub fn attr(&mut self, key: &str, value: String) {
        if self.shared.is_some() {
            self.attrs.push((key.to_string(), value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.on_stack {
            SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                if let Some(position) = stack.iter().rposition(|&id| id == self.id) {
                    stack.remove(position);
                }
            });
        }
        let Some(shared) = self.shared.take() else {
            return;
        };
        let dur_ns = shared.clock.now_ns().saturating_sub(self.start_ns);
        let mut line = format!("{{\"type\":\"span\",\"id\":{}", self.id);
        if let Some(parent) = self.parent {
            line.push_str(&format!(",\"parent\":{parent}"));
        }
        line.push_str(&format!(
            ",\"thread\":{},\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{}",
            thread_id(),
            escape_json(&self.name),
            self.start_ns,
            dur_ns,
        ));
        render_attrs(
            &mut line,
            self.attrs.iter().map(|(k, v)| (k.as_str(), v.as_str())),
        );
        line.push_str("}\n");
        shared.write_line(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    /// A `Write` sink tests can read back out from under the recorder.
    #[derive(Clone, Default)]
    pub(crate) struct SharedBuf(pub Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        pub(crate) fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).expect("trace output is UTF-8")
        }
    }

    fn recorder() -> (TraceRecorder, SharedBuf, Arc<ManualClock>) {
        let buf = SharedBuf::default();
        let clock = Arc::new(ManualClock::new());
        struct ArcClock(Arc<ManualClock>);
        impl Clock for ArcClock {
            fn now_ns(&self) -> u64 {
                self.0.now_ns()
            }
        }
        let recorder = TraceRecorder::with_sink(
            Box::new(ArcClock(Arc::clone(&clock))),
            Box::new(buf.clone()),
        );
        (recorder, buf, clock)
    }

    #[test]
    fn disabled_recorder_writes_nothing_and_costs_no_ids() {
        let recorder = TraceRecorder::disabled();
        assert!(!recorder.is_enabled());
        let mut span = recorder.span("anything", &[("k", "v".to_string())]);
        span.attr("later", "x".to_string());
        assert_eq!(span.id(), None);
        assert_eq!(span.elapsed_ns(), 0);
        recorder.event("evt", &[]);
        recorder.flush();
    }

    #[test]
    fn span_line_carries_timing_parent_and_attrs() {
        let (recorder, buf, clock) = recorder();
        {
            let outer = recorder.span("outer", &[]);
            clock.advance(100);
            {
                let mut inner = recorder.span("inner", &[("lanes", "4".to_string())]);
                clock.advance(50);
                assert_eq!(inner.elapsed_ns(), 50);
                inner.attr("cached", "2".to_string());
            }
            clock.advance(10);
            drop(outer);
        }
        let text = buf.text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "inner closes first, then outer: {text}");
        assert!(lines[0].contains("\"name\":\"inner\""));
        assert!(lines[0].contains("\"start_ns\":100"));
        assert!(lines[0].contains("\"dur_ns\":50"));
        assert!(lines[0].contains("\"parent\":1"));
        assert!(lines[0].contains("\"lanes\":\"4\""));
        assert!(lines[0].contains("\"cached\":\"2\""));
        assert!(lines[1].contains("\"name\":\"outer\""));
        assert!(lines[1].contains("\"dur_ns\":160"));
        assert!(!lines[1].contains("\"parent\""), "roots have no parent");
    }

    #[test]
    fn explicit_parents_bypass_the_thread_stack() {
        let (recorder, buf, _clock) = recorder();
        let root = recorder.span("root", &[]);
        let root_id = root.id();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let child = recorder.span_under(root_id, "unit", &[]);
                drop(child);
            });
        });
        drop(root);
        let text = buf.text();
        let unit = text
            .lines()
            .find(|l| l.contains("\"name\":\"unit\""))
            .expect("unit span written");
        assert!(unit.contains("\"parent\":1"), "{unit}");
    }

    #[test]
    fn a_panicking_scope_still_leaves_wellformed_lines() {
        let (recorder, buf, _clock) = recorder();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = recorder.span("doomed", &[("k", "v".to_string())]);
            panic!("mid-span failure");
        }));
        assert!(result.is_err());
        recorder.event("after", &[]);
        let text = buf.text();
        assert_eq!(text.lines().count(), 2, "{text}");
        for line in text.lines() {
            assert!(
                crate::profile::parse_json(line).is_ok(),
                "line must stay well-formed: {line}"
            );
        }
    }

    #[test]
    fn events_are_written_immediately() {
        let (recorder, buf, clock) = recorder();
        clock.advance(77);
        recorder.event("metrics", &[("cache.hits", "9".to_string())]);
        let text = buf.text();
        assert!(text.contains("\"type\":\"event\""));
        assert!(text.contains("\"at_ns\":77"));
        assert!(text.contains("\"cache.hits\":\"9\""));
    }

    #[test]
    fn escaper_handles_quotes_newlines_and_control_bytes() {
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("plain"), "plain");
    }
}
