//! Figs. 7–9 reproduction at example scale: statistical characterization of a 28-nm library.
//!
//! Runs the statistical study (mean and standard deviation of delay and output slew across
//! process variation) for a NAND2 arc in the 28-nm bulk target technology, and then
//! reproduces the Fig. 9 delay-PDF comparison at the paper's low-supply corner
//! (`Vdd = 0.734 V`, `Sin = 5.09 ps`, `Cload = 1.67 fF`).
//!
//! Run with `cargo run --release --example statistical_28nm`.

use slic::historical::{HistoricalLearner, HistoricalLearningConfig};
use slic::nominal::MethodKind;
use slic::prelude::*;
use slic::statistical::{StatMetric, StatisticalStudy, StatisticalStudyConfig};

fn main() {
    let library = Library::paper_trio();
    println!("learning priors from the historical technology suite...");
    let learning = HistoricalLearner::new(HistoricalLearningConfig::default())
        .learn(&TechnologyNode::historical_suite(), &library);

    let config = StatisticalStudyConfig {
        validation_points: 60,
        process_seeds: 120,
        training_counts: vec![2, 3, 5, 10, 20],
        ..StatisticalStudyConfig::default()
    };
    let study = StatisticalStudy::new(TechnologyNode::target_28nm(), &learning.database, config);

    let cell = Cell::new(CellKind::Nand2, DriveStrength::X1);
    let arc = TimingArc::new(cell, 0, Transition::Fall);
    println!("running the statistical study for {} ...\n", arc.id());
    let result = study.run(cell, &arc);

    for (metric, title) in [
        (StatMetric::MeanDelay, "E(mu_Td)  — Fig. 7 left"),
        (StatMetric::StdDelay, "E(sigma_Td) — Fig. 7 right"),
        (StatMetric::MeanSlew, "E(mu_Sout) — Fig. 8 left"),
        (StatMetric::StdSlew, "E(sigma_Sout) — Fig. 8 right"),
    ] {
        println!("--- {title} ---");
        println!("{}", result.to_markdown(metric));
        let bayes = result
            .curves_for(MethodKind::ProposedBayesian)
            .as_method_curve(metric)
            .final_error();
        let lut_curve = result.curves_for(MethodKind::Lut).as_method_curve(metric);
        let target = bayes.max(lut_curve.final_error());
        if let Some(speedup) = result.speedup_at(
            metric,
            target,
            MethodKind::ProposedBayesian,
            MethodKind::Lut,
        ) {
            println!("speedup vs LUT at {target:.2}%: {speedup:.1}x\n");
        } else {
            println!();
        }
    }
    println!(
        "baseline cost: {} simulations over {} process seeds\n",
        result.baseline_simulations, result.process_seeds
    );

    // Fig. 9: delay PDF at the low-Vdd corner.
    let corner = InputPoint::new(
        Seconds::from_picoseconds(5.09),
        Farads::from_femtofarads(1.67),
        Volts(0.734),
    );
    println!("reproducing the Fig. 9 delay PDF at {corner} ...");
    let pdf = study.delay_pdf(cell, &arc, corner, 7, 60);
    let baseline = Summary::from_samples(&pdf.baseline);
    let proposed = Summary::from_samples(&pdf.proposed);
    let lut = Summary::from_samples(&pdf.lut);
    println!(
        "  baseline : mean = {:.2} ps, sigma = {:.2} ps, skewness = {:.2}{}",
        baseline.mean * 1e12,
        baseline.std_dev * 1e12,
        baseline.skewness,
        if baseline.is_clearly_non_gaussian() {
            "  (non-Gaussian)"
        } else {
            ""
        }
    );
    println!(
        "  proposed ({} fitting conditions): mean = {:.2} ps, sigma = {:.2} ps, skewness = {:.2}, per-seed error = {:.2}%",
        pdf.proposed_training_conditions,
        proposed.mean * 1e12,
        proposed.std_dev * 1e12,
        proposed.skewness,
        pdf.proposed_error_percent()
    );
    println!(
        "  LUT ({} grid conditions): mean = {:.2} ps, sigma = {:.2} ps, skewness = {:.2}, per-seed error = {:.2}%",
        pdf.lut_training_conditions,
        lut.mean * 1e12,
        lut.std_dev * 1e12,
        lut.skewness,
        pdf.lut_error_percent()
    );

    // Density curves on a common grid, printable for plotting.
    let kde_baseline = KernelDensity::from_samples(&pdf.baseline);
    let grid: Vec<f64> = kde_baseline
        .evaluate_grid(9)
        .iter()
        .map(|&(x, _)| x)
        .collect();
    println!("\n  delay (ps) | baseline density | proposed density | LUT density");
    let kde_proposed = KernelDensity::from_samples(&pdf.proposed);
    let kde_lut = KernelDensity::from_samples(&pdf.lut);
    for x in grid {
        println!(
            "  {:>10.2} | {:>16.3e} | {:>16.3e} | {:>11.3e}",
            x * 1e12,
            kde_baseline.density(x),
            kde_proposed.density(x),
            kde_lut.density(x)
        );
    }
}
