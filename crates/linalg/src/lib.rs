//! Small dense linear algebra for the `slic` workspace.
//!
//! The Bayesian characterization engine only ever manipulates tiny dense matrices — the
//! compact timing model has four parameters, so covariances are 4×4 and Gauss–Newton normal
//! equations are at most a handful of rows.  Pulling in a full linear-algebra crate for that
//! would be overkill (and the project deliberately implements its numerical substrate from
//! scratch), so this crate provides exactly what the rest of the workspace needs:
//!
//! * [`Vector`] — an owned dense vector with the usual arithmetic.
//! * [`Matrix`] — an owned dense row-major matrix with products, transposes and slicing.
//! * [`Cholesky`] — decomposition of symmetric positive-definite matrices, used for
//!   covariance inversion, Mahalanobis distances, multivariate normal sampling and
//!   log-determinants.
//! * [`Lu`] — LU decomposition with partial pivoting for general square systems
//!   (Gauss–Newton steps with damping).
//!
//! # Examples
//!
//! ```
//! use slic_linalg::{Matrix, Vector};
//!
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let b = Vector::from_slice(&[1.0, 2.0]);
//! let chol = a.cholesky().expect("SPD");
//! let x = chol.solve(&b);
//! let residual = &a.mat_vec(&x) - &b;
//! assert!(residual.norm() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cholesky;
pub mod error;
pub mod lu;
pub mod matrix;
pub mod vector;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use vector::Vector;
