//! Physical-quantity newtypes shared across the `slic` workspace.
//!
//! Standard-cell characterization juggles voltages, capacitances, times, currents and
//! charges whose magnitudes differ by fifteen orders of magnitude (volts vs. femtofarads
//! vs. picoseconds).  Raw `f64`s make it far too easy to pass a capacitance where a time
//! was expected or to drop a `1e-12` somewhere; the newtypes in this crate make those
//! mistakes type errors instead ([C-NEWTYPE]).
//!
//! The crate provides:
//!
//! * [`Volts`], [`Farads`], [`Seconds`], [`Amperes`], [`Coulombs`] — thin `f64` wrappers
//!   with the arithmetic that is physically meaningful between them (e.g.
//!   `Volts * Farads = Coulombs`, `Coulombs / Amperes = Seconds`).
//! * [`Celsius`] for simulation temperature.
//! * Engineering-notation formatting via [`format::engineering`] so that `1.67e-15 F`
//!   prints as `1.67 fF`.
//! * Sweep helpers ([`range::linspace`], [`range::logspace`], [`range::geomspace`]) used by
//!   every characterization grid in the workspace.
//!
//! # Examples
//!
//! ```
//! use slic_units::{Volts, Farads, Seconds, Amperes};
//!
//! let vdd = Volts(0.8);
//! let cload = Farads(2.0e-15);
//! let ieff = Amperes(60e-6);
//! // Charge delivered to the load over a full swing, and the corresponding RC-style delay.
//! let q = vdd * cload;
//! let t: Seconds = q / ieff;
//! assert!(t.value() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod quantity;
pub mod range;

pub use quantity::{Amperes, Celsius, Coulombs, Farads, Seconds, Volts};
