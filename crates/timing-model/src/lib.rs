//! The ultra-compact analytical gate timing model of the paper (Section III) and its
//! least-squares extraction.
//!
//! The model expresses both delay and output slew of a timing arc with the same four
//! universal parameters `P = {kd, Cpar, V', α}`:
//!
//! ```text
//! Td   = kd · ΔQ / Ieff
//! ΔQ   = (Vdd + V') · (Cload + Cpar + α · Sin)
//! ```
//!
//! where `Ieff` is the effective switching current of the arc's driving device (Eq. 4 of
//! the paper), available per input vector from the device model.  The same functional form
//! with its own parameter values models `Sout`.
//!
//! Modules:
//!
//! * [`model`] — parameter vector, model evaluation, residuals and analytic Jacobians;
//! * [`extended`] — the optional `Sin·Cload` cross-term variant discussed at the end of
//!   Section III (model-complexity ablation);
//! * [`fit`] — damped Gauss–Newton / Levenberg–Marquardt extraction, with an optional
//!   Gaussian prior term so the same solver serves both the plain least-squares baseline
//!   ("Proposed Model + LSE" in Figs. 6–8) and the MAP estimator of `slic-bayes`;
//! * [`invariance`] — the collapse diagnostics behind Figs. 2 and 3 (`Td·Ieff/(Vdd+V')`
//!   constant across `Vdd`, `Td/(Cload+Cpar+α·Sin)` constant across load/slew).
//!
//! # Examples
//!
//! ```
//! use slic_timing_model::{TimingParams, TimingSample};
//! use slic_spice::InputPoint;
//! use slic_units::{Amperes, Farads, Seconds, Volts};
//!
//! let params = TimingParams::new(0.39, 0.95, -0.27, 0.09);
//! let point = InputPoint::new(Seconds::from_picoseconds(5.0), Farads::from_femtofarads(2.0), Volts(0.8));
//! let predicted = params.evaluate(&point, Amperes(40e-6));
//! assert!(predicted.value() > 0.0);
//! let sample = TimingSample::new(point, Amperes(40e-6), predicted);
//! assert!(params.relative_error(&sample).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extended;
pub mod fit;
pub mod invariance;
pub mod model;

pub use extended::ExtendedTimingParams;
pub use fit::{FitConfig, FitResult, GaussianPenalty, LeastSquaresFitter};
pub use invariance::{load_slew_collapse, vdd_collapse, CollapseSeries};
pub use model::{TimingParams, TimingSample, PARAM_COUNT};
