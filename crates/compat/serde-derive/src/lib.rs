//! Derive macros for the offline `serde` stand-in.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the item is parsed directly
//! from the [`proc_macro::TokenStream`] and the impls are emitted as source text.  The
//! supported shapes are exactly what this workspace derives on:
//!
//! * structs with named fields — serialized as objects keyed by field name;
//! * tuple structs — a single field delegates to the inner value (upstream serde's newtype
//!   behaviour, which also subsumes `#[serde(transparent)]`), more fields become an array;
//! * fieldless enums — serialized as the variant name string.
//!
//! Generics, data-carrying enums and the remaining `#[serde(...)]` attributes are rejected
//! with a compile error rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for structs with named fields, tuple structs and fieldless
/// enums.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

/// Derives `serde::Deserialize` for structs with named fields, tuple structs and fieldless
/// enums.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

enum Shape {
    NamedStruct { fields: Vec<String> },
    TupleStruct { arity: usize },
    FieldlessEnum { variants: Vec<String> },
}

struct Item {
    name: String,
    shape: Shape,
}

fn expand(input: TokenStream, direction: Direction) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match direction {
                Direction::Serialize => gen_serialize(&item),
                Direction::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("generated impl must parse")
        }
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error must parse"),
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in derive does not support generics on `{name}`"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                shape: Shape::NamedStruct {
                    fields: parse_named_fields(g.stream())?,
                },
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Item {
                name,
                shape: Shape::TupleStruct {
                    arity: count_tuple_fields(g.stream()),
                },
            }),
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                shape: Shape::FieldlessEnum {
                    variants: parse_fieldless_variants(g.stream())?,
                },
            }),
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("expected `struct` or `enum`, found `{other}`")),
    }
}

/// Advances past any leading `#[...]` attributes (doc comments included).  `#[serde(...)]`
/// attributes other than `transparent` are rejected — transparent itself needs no special
/// handling because single-field tuple structs always delegate to the inner value.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Collects the field names of a named-field struct body, skipping each field's type
/// (tracking `<`/`>` nesting so commas inside generic arguments don't split fields).
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{field}`, found {other:?}"
                ))
            }
        }
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    Ok(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle_depth = 0i32;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => fields += 1,
            _ => {}
        }
    }
    // A trailing comma (`struct S(T,)`) does not add a field.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        fields -= 1;
    }
    fields
}

fn parse_fieldless_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde stand-in derive does not support data-carrying variant `{variant}`"
                ))
            }
            other => {
                return Err(format!(
                    "unexpected token after variant `{variant}`: {other:?}"
                ))
            }
        }
        variants.push(variant);
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct { fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::TupleStruct { arity: 1 } => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::FieldlessEnum { variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::String(::std::string::String::from({v:?}))"
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct { fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(entries, {f:?})?"))
                .collect();
            format!(
                "let entries = value.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", value))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct { arity: 1 } => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Shape::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", value))?;\n\
                 if items.len() != {arity} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(::std::format!(\n\
                         \"expected array of {arity} elements, found {{}}\", items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::FieldlessEnum { variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "let tag = value.as_str().ok_or_else(|| ::serde::Error::expected(\"string\", value))?;\n\
                 match tag {{ {}, other => ::std::result::Result::Err(::serde::Error::custom(\n\
                     ::std::format!(\"unknown variant `{{other}}` of {name}\"))) }}",
                arms.join(", ")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
