//! Lookup-table (LUT) characterization baseline.
//!
//! The most widely used statistical library characterization method stores delay and output
//! slew (and their statistical moments) in a table indexed by input slew, load capacitance
//! and supply voltage, and interpolates between grid points at timing-analysis time.  This
//! crate implements that baseline so the proposed compact-model + Bayesian flow can be
//! compared against it on equal footing:
//!
//! * [`table`] — a three-dimensional table over `(Sin, Cload, Vdd)` with trilinear
//!   interpolation and edge clamping;
//! * [`builder`] — fills nominal and statistical tables by driving the
//!   [`slic_spice::CharacterizationEngine`], choosing grid shapes for a given simulation
//!   budget the way the Fig. 6–8 sweeps require, and accounting for every simulation spent.
//!
//! # Examples
//!
//! ```
//! use slic_lut::grid_levels_for_budget;
//!
//! // A budget of 12 simulations is spent as a 3 x 2 x 2 grid.
//! assert_eq!(grid_levels_for_budget(12), (3, 2, 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod table;

pub use builder::{grid_levels_for_budget, LutBuilder, NominalLut, StatisticalLut};
pub use table::Lut3d;
