//! `slic-lint`: a hand-rolled static-analysis pass over the workspace's own Rust sources.
//!
//! The library-characterization pipeline's correctness rests on invariants no compiler
//! checks — bit-identical shard merges and farm replays, stable SimKeys and wire hashes,
//! panic-free library crates.  This crate enforces them at the source level with a small
//! token lexer ([`lexer`]), a per-path policy ([`config`]), four rules plus suppression
//! hygiene ([`rules`]), and a committed baseline that freezes pre-existing debt
//! ([`baseline`]).  No `syn`, no `dylint`: the build environment is offline, and the
//! token-level approach matches the repo's hand-rolled derive macro.
//!
//! Run it as `slic lint`, or `make lint`.

pub mod baseline;
pub mod config;
pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use serde::Value;

use baseline::{Baseline, BaselineDiff};
use config::LintConfig;
use rules::{FilePolicy, Rule, Violation};

/// One full lint run over a workspace tree.
#[derive(Debug, Default)]
pub struct LintRun {
    /// Every unsuppressed violation, in (file, line, rule) order.
    pub violations: Vec<Violation>,
    /// Findings silenced by well-formed suppression comments.
    pub suppressed: usize,
    /// Number of `.rs` files analyzed.
    pub files_scanned: usize,
}

/// A failure to walk or read the tree.
#[derive(Debug)]
pub struct ScanError(String);

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint scan failed: {}", self.0)
    }
}

impl std::error::Error for ScanError {}

/// Directory names never scanned regardless of policy: test/bench/example code answers to
/// `cargo test`, not to library invariants, and fixtures are deliberately violating.
const SKIP_DIRS: &[&str] = &["tests", "benches", "examples", "fixtures", "target"];

/// Collects the workspace-relative `.rs` files to lint, in sorted (deterministic) order.
///
/// # Errors
///
/// Returns a [`ScanError`] when a configured root cannot be walked.
pub fn collect_files(root: &Path, config: &LintConfig) -> Result<Vec<PathBuf>, ScanError> {
    let mut files = Vec::new();
    for scan_root in &config.roots {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut relative: Vec<PathBuf> = files
        .into_iter()
        .filter_map(|path| path.strip_prefix(root).ok().map(Path::to_path_buf))
        .filter(|path| {
            let text = path.to_string_lossy().replace('\\', "/");
            !config.skip.iter().any(|skip| text.contains(skip.as_str()))
        })
        .collect();
    relative.sort();
    Ok(relative)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> Result<(), ScanError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|err| ScanError(format!("cannot read `{}`: {err}", dir.display())))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            let name = path.file_name().map(|n| n.to_string_lossy().to_string());
            let name = name.as_deref().unwrap_or("");
            if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                walk(&path, files)?;
            }
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lints the workspace tree at `root` under `config`.
///
/// # Errors
///
/// Returns a [`ScanError`] when the tree cannot be walked or a file cannot be read.
pub fn run(root: &Path, config: &LintConfig) -> Result<LintRun, ScanError> {
    let mut run = LintRun::default();
    for relative in collect_files(root, config)? {
        let text = std::fs::read_to_string(root.join(&relative))
            .map_err(|err| ScanError(format!("cannot read `{}`: {err}", relative.display())))?;
        let rel = relative.to_string_lossy().replace('\\', "/");
        let policy = FilePolicy::for_path(&rel, config);
        let report = rules::analyze_file(&rel, &text, &policy, config);
        run.files_scanned += 1;
        run.suppressed += report.suppressed;
        run.violations.extend(report.violations);
    }
    run.violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(run)
}

/// The human report: `file:line: rule[code]: message` lines plus a baseline summary.
pub fn render_human(run: &LintRun, diff: &BaselineDiff) -> String {
    let mut out = String::new();
    for violation in &diff.fresh {
        out.push_str(&violation.to_string());
        out.push('\n');
    }
    for stale in &diff.stale {
        out.push_str(&format!(
            "{}: stale baseline entry: {}[{}] `{}` x{} no longer found — remove it \
             (run with --update-baseline)\n",
            stale.file,
            stale.rule.name(),
            stale.rule.code(),
            stale.excerpt,
            stale.count,
        ));
    }
    let mut per_rule: BTreeMap<Rule, usize> = BTreeMap::new();
    for violation in &diff.fresh {
        *per_rule.entry(violation.rule).or_insert(0) += 1;
    }
    let breakdown: Vec<String> = per_rule
        .iter()
        .map(|(rule, count)| format!("{count} {}", rule.code()))
        .collect();
    out.push_str(&format!(
        "{} file(s) scanned: {} new violation(s){}, {} baselined, {} suppressed, {} stale \
         baseline entr(ies)\n",
        run.files_scanned,
        diff.fresh.len(),
        if breakdown.is_empty() {
            String::new()
        } else {
            format!(" ({})", breakdown.join(", "))
        },
        diff.absorbed,
        run.suppressed,
        diff.stale.len(),
    ));
    out
}

/// The machine report for CI: stable JSON with the same content as [`render_human`].
pub fn render_json(run: &LintRun, diff: &BaselineDiff) -> String {
    let violation_value = |v: &Violation| {
        Value::Object(vec![
            ("file".to_string(), Value::String(v.file.clone())),
            ("line".to_string(), Value::Number(f64::from(v.line))),
            ("rule".to_string(), Value::String(v.rule.code().to_string())),
            ("name".to_string(), Value::String(v.rule.name().to_string())),
            ("message".to_string(), Value::String(v.message.clone())),
            ("excerpt".to_string(), Value::String(v.excerpt.clone())),
        ])
    };
    let stale_value = |s: &baseline::BaselineEntry| {
        Value::Object(vec![
            ("file".to_string(), Value::String(s.file.clone())),
            ("rule".to_string(), Value::String(s.rule.code().to_string())),
            ("excerpt".to_string(), Value::String(s.excerpt.clone())),
            ("count".to_string(), Value::Number(s.count as f64)),
        ])
    };
    let document = Value::Object(vec![
        (
            "files_scanned".to_string(),
            Value::Number(run.files_scanned as f64),
        ),
        (
            "violations".to_string(),
            Value::Array(diff.fresh.iter().map(violation_value).collect()),
        ),
        (
            "stale_baseline".to_string(),
            Value::Array(diff.stale.iter().map(stale_value).collect()),
        ),
        ("baselined".to_string(), Value::Number(diff.absorbed as f64)),
        (
            "suppressed".to_string(),
            Value::Number(run.suppressed as f64),
        ),
        (
            "ok".to_string(),
            Value::Bool(diff.fresh.is_empty() && diff.stale.is_empty()),
        ),
    ]);
    let mut text = serde_json::to_string_pretty(&document).unwrap_or_else(|_| "{}".to_string()); // slic-lint: allow(P1) -- Value serialization to a String is infallible in the compat layer.
    text.push('\n');
    text
}

/// Convenience used by tests and the CLI: run, diff against a baseline, and decide.
pub struct Outcome {
    pub run: LintRun,
    pub diff: BaselineDiff,
}

impl Outcome {
    /// A run passes when nothing new was found and no baseline entry went stale.
    pub fn is_clean(&self) -> bool {
        self.diff.fresh.is_empty() && self.diff.stale.is_empty()
    }
}

/// Runs the linter and compares against `baseline`.
///
/// # Errors
///
/// Returns a [`ScanError`] when the tree cannot be walked or read.
pub fn check(root: &Path, config: &LintConfig, baseline: &Baseline) -> Result<Outcome, ScanError> {
    let run = run(root, config)?;
    let diff = baseline.diff(&run.violations);
    Ok(Outcome { run, diff })
}
