//! The statistical characterization study (Figs. 7, 8 and 9 of the paper).
//!
//! Statistical characterization asks for the *distribution* of delay and output slew at
//! every input condition under process variation.  The baseline answer simulates every
//! condition under every Monte Carlo seed; the proposed flow simulates only `k` conditions
//! per seed, extracts the compact-model parameters `P_T^{(j)}, P_S^{(j)}` per seed by MAP,
//! and reconstructs the distribution at *any* condition by evaluating the model over the
//! per-seed parameter sets — `O(k·Nsample)` instead of `O(NLUT·Nsample)` simulations.

use crate::nominal::{MethodCurve, MethodKind};
use crate::report::markdown_table;
use serde::{Deserialize, Serialize};
use slic_bayes::{
    HistoricalDatabase, MapExtractor, PrecisionConfig, PrecisionModel, PriorBuilder, TimingMetric,
};
use slic_cells::{Cell, TimingArc};
use slic_device::{ProcessSample, TechnologyNode};
use slic_lut::LutBuilder;
use slic_spice::{CharacterizationEngine, InputPoint, TransientConfig};
use slic_stats::distance::mean_relative_error_percent;
use slic_stats::moments;
use slic_timing_model::{LeastSquaresFitter, TimingParams, TimingSample};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the statistical study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatisticalStudyConfig {
    /// Number of random validation input conditions (1000 in the paper).
    pub validation_points: usize,
    /// Number of Monte Carlo process seeds (1000 in the paper).
    pub process_seeds: usize,
    /// Training condition counts to sweep.
    pub training_counts: Vec<usize>,
    /// RNG seed.
    pub seed: u64,
    /// Transient solver settings.
    pub transient: TransientConfig,
    /// Whether the prior is restricted to records of the same cell kind.
    pub cell_kind_matched_prior: bool,
}

impl Default for StatisticalStudyConfig {
    fn default() -> Self {
        Self {
            validation_points: 200,
            process_seeds: 300,
            training_counts: vec![1, 2, 3, 5, 10, 20, 50],
            seed: 20150313,
            transient: TransientConfig::fast(),
            cell_kind_matched_prior: true,
        }
    }
}

impl StatisticalStudyConfig {
    /// A heavily reduced configuration for unit tests.
    pub fn quick() -> Self {
        Self {
            validation_points: 20,
            process_seeds: 30,
            training_counts: vec![3, 8],
            ..Self::default()
        }
    }
}

/// Error curves of one method for the four statistical metrics of Eqs. (16)–(19).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatMethodCurves {
    /// The method.
    pub method: MethodKind,
    /// Training condition counts.
    pub training_counts: Vec<usize>,
    /// Error of the delay mean, percent.
    pub mean_delay_error: Vec<f64>,
    /// Error of the delay standard deviation, percent.
    pub std_delay_error: Vec<f64>,
    /// Error of the slew mean, percent.
    pub mean_slew_error: Vec<f64>,
    /// Error of the slew standard deviation, percent.
    pub std_slew_error: Vec<f64>,
    /// Transient simulations spent per training count.
    pub simulations: Vec<u64>,
}

impl StatMethodCurves {
    /// Extracts one of the four statistical error curves as a plain [`MethodCurve`] so the
    /// nominal-study speedup helpers can be reused.
    pub fn as_method_curve(&self, which: StatMetric) -> MethodCurve {
        let errors = match which {
            StatMetric::MeanDelay => &self.mean_delay_error,
            StatMetric::StdDelay => &self.std_delay_error,
            StatMetric::MeanSlew => &self.mean_slew_error,
            StatMetric::StdSlew => &self.std_slew_error,
        };
        MethodCurve {
            method: self.method,
            training_counts: self.training_counts.clone(),
            errors_percent: errors.clone(),
            simulations: self.simulations.clone(),
        }
    }
}

/// Which of the four statistical error metrics (Eqs. 16–19) to look at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StatMetric {
    /// `E(µ_Td)`.
    MeanDelay,
    /// `E(σ_Td)`.
    StdDelay,
    /// `E(µ_Sout)`.
    MeanSlew,
    /// `E(σ_Sout)`.
    StdSlew,
}

impl StatMetric {
    /// All four metrics in the order the paper plots them.
    pub const ALL: [StatMetric; 4] = [
        StatMetric::MeanDelay,
        StatMetric::StdDelay,
        StatMetric::MeanSlew,
        StatMetric::StdSlew,
    ];
}

/// Result of the statistical study for one arc.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatisticalStudyResult {
    /// Per-method error curves.
    pub curves: Vec<StatMethodCurves>,
    /// Simulations spent on the Monte Carlo baseline.
    pub baseline_simulations: u64,
    /// Number of process seeds used.
    pub process_seeds: usize,
}

impl StatisticalStudyResult {
    /// The curves of one method.
    ///
    /// # Panics
    ///
    /// Panics if the method was not part of the study.
    pub fn curves_for(&self, method: MethodKind) -> &StatMethodCurves {
        self.curves
            .iter()
            .find(|c| c.method == method)
            .expect("method present in study")
    }

    /// Speedup of `fast` over `slow` for one statistical metric at a target error.
    pub fn speedup_at(
        &self,
        metric: StatMetric,
        target_percent: f64,
        fast: MethodKind,
        slow: MethodKind,
    ) -> Option<f64> {
        let fast_sims = self
            .curves_for(fast)
            .as_method_curve(metric)
            .simulations_to_reach(target_percent)? as f64;
        let slow_sims = self
            .curves_for(slow)
            .as_method_curve(metric)
            .simulations_to_reach(target_percent)? as f64;
        Some(slow_sims / fast_sims)
    }

    /// Renders one statistical metric's error table as Markdown.
    pub fn to_markdown(&self, metric: StatMetric) -> String {
        let counts = &self.curves[0].training_counts;
        let mut headers = vec!["training samples".to_string()];
        headers.extend(self.curves.iter().map(|c| format!("{} (%)", c.method)));
        let rows: Vec<Vec<String>> = counts
            .iter()
            .enumerate()
            .map(|(i, k)| {
                let mut row = vec![k.to_string()];
                row.extend(
                    self.curves
                        .iter()
                        .map(|c| format!("{:.2}", c.as_method_curve(metric).errors_percent[i])),
                );
                row
            })
            .collect();
        markdown_table(&headers, &rows)
    }
}

/// The Fig. 9 comparison: delay samples across process seeds at one input condition, as
/// produced by the baseline, the proposed method and a per-seed LUT interpolation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayPdfComparison {
    /// The input condition the densities are evaluated at.
    pub point: InputPoint,
    /// Baseline Monte Carlo delays, one per seed (seconds).
    pub baseline: Vec<f64>,
    /// Proposed-method delays reconstructed from the per-seed MAP parameters (seconds).
    pub proposed: Vec<f64>,
    /// LUT-interpolated delays, one per seed (seconds).
    pub lut: Vec<f64>,
    /// Number of training conditions the proposed method used.
    pub proposed_training_conditions: usize,
    /// Number of grid conditions the LUT used.
    pub lut_training_conditions: usize,
}

impl DelayPdfComparison {
    /// Mean absolute relative error of the proposed method's delay samples against the
    /// baseline (seed-by-seed), in percent.
    pub fn proposed_error_percent(&self) -> f64 {
        mean_relative_error_percent(&self.proposed, &self.baseline)
    }

    /// Mean absolute relative error of the LUT delay samples against the baseline, percent.
    pub fn lut_error_percent(&self) -> f64 {
        mean_relative_error_percent(&self.lut, &self.baseline)
    }

    /// Skewness of the baseline delay distribution (the Fig. 9 non-Gaussianity indicator).
    pub fn baseline_skewness(&self) -> f64 {
        moments::skewness(&self.baseline)
    }
}

/// The statistical characterization study runner.
#[derive(Debug, Clone)]
pub struct StatisticalStudy<'a> {
    engine: CharacterizationEngine,
    database: &'a HistoricalDatabase,
    config: StatisticalStudyConfig,
}

impl<'a> StatisticalStudy<'a> {
    /// Creates a study of `target` using the archived historical fits.
    ///
    /// # Panics
    ///
    /// Panics if `config.transient` is invalid; use [`try_new`](Self::try_new) to handle
    /// that as an error.
    pub fn new(
        target: TechnologyNode,
        database: &'a HistoricalDatabase,
        config: StatisticalStudyConfig,
    ) -> Self {
        Self::try_new(target, database, config)
            .expect("study transient configuration must be valid")
    }

    /// Creates a study of `target`, surfacing an invalid transient configuration as an
    /// error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the engine's [`slic_spice::ConfigError`] when `config.transient` fails
    /// validation.
    pub fn try_new(
        target: TechnologyNode,
        database: &'a HistoricalDatabase,
        config: StatisticalStudyConfig,
    ) -> Result<Self, slic_spice::ConfigError> {
        Ok(Self::with_engine(
            CharacterizationEngine::with_config(target, config.transient)?,
            database,
            config,
        ))
    }

    /// Creates a study running on an existing engine — the reusable-stage entry point for
    /// library-scale pipelines, which share one engine (counter, cache) across studies.
    ///
    /// The engine's transient configuration takes precedence over `config.transient`.
    pub fn with_engine(
        engine: CharacterizationEngine,
        database: &'a HistoricalDatabase,
        config: StatisticalStudyConfig,
    ) -> Self {
        Self {
            engine,
            database,
            config,
        }
    }

    /// The engine bound to the target technology.
    pub fn engine(&self) -> &CharacterizationEngine {
        &self.engine
    }

    /// The configuration in use.
    pub fn config(&self) -> &StatisticalStudyConfig {
        &self.config
    }

    fn map_extractor(&self, cell: Cell, metric: TimingMetric) -> MapExtractor {
        let cell_kind = if self.config.cell_kind_matched_prior {
            Some(cell.kind().name())
        } else {
            None
        };
        let prior = PriorBuilder::new()
            .build(self.database, metric, cell_kind)
            .or_else(|_| PriorBuilder::new().build(self.database, metric, None))
            .expect("historical database must contain records for the requested metric");
        let precision = PrecisionModel::learn(
            self.database,
            metric,
            &self.engine.input_space(),
            PrecisionConfig::default(),
        );
        MapExtractor::new(prior, precision)
    }

    /// Per-seed parameter extraction for both metrics at the given training conditions.
    ///
    /// Returns `(delay params, slew params, simulations spent)`; `use_prior = false` gives
    /// the "Proposed Model + LSE" variant.
    fn extract_per_seed(
        &self,
        cell: Cell,
        arc: &TimingArc,
        training_points: &[InputPoint],
        seeds: &[ProcessSample],
        use_prior: bool,
    ) -> (Vec<TimingParams>, Vec<TimingParams>, u64) {
        let delay_extractor = self.map_extractor(cell, TimingMetric::Delay);
        let slew_extractor = self.map_extractor(cell, TimingMetric::OutputSlew);
        let fitter = LeastSquaresFitter::new();
        let before = self.engine.simulation_count();
        let mut delay_params = Vec::with_capacity(seeds.len());
        let mut slew_params = Vec::with_capacity(seeds.len());
        // One cross-seed mega-batch instead of one sweep per seed: every
        // (training point, seed) lane enters the kernel as a single worklist, so the
        // SIMD dispatcher sees full quads even when the training grid is tiny.
        let by_point = self
            .engine
            .monte_carlo_sweep(cell, arc, training_points, seeds);
        for (s, seed) in seeds.iter().enumerate() {
            let measurements: Vec<_> = by_point.iter().map(|row| row[s]).collect();
            let ieffs: Vec<_> = training_points
                .iter()
                .map(|p| self.engine.ieff(arc, p, seed))
                .collect();
            let delay_samples: Vec<TimingSample> = training_points
                .iter()
                .zip(&measurements)
                .zip(&ieffs)
                .map(|((p, m), ieff)| TimingSample::new(*p, *ieff, m.delay))
                .collect();
            let slew_samples: Vec<TimingSample> = training_points
                .iter()
                .zip(&measurements)
                .zip(&ieffs)
                .map(|((p, m), ieff)| TimingSample::new(*p, *ieff, m.output_slew))
                .collect();
            if use_prior {
                delay_params.push(delay_extractor.extract(&delay_samples).params);
                slew_params.push(slew_extractor.extract(&slew_samples).params);
            } else {
                delay_params.push(fitter.fit(&delay_samples).params);
                slew_params.push(fitter.fit(&slew_samples).params);
            }
        }
        let cost = self.engine.simulation_count() - before;
        (delay_params, slew_params, cost)
    }

    /// Runs the full statistical study for one arc, comparing the proposed Bayesian flow,
    /// the proposed-LSE variant and the statistical LUT.
    pub fn run(&self, cell: Cell, arc: &TimingArc) -> StatisticalStudyResult {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let space = self.engine.input_space();
        let seeds = self
            .engine
            .tech()
            .variation()
            .sample_n(&mut rng, self.config.process_seeds);
        let validation = space.sample_uniform(&mut rng, self.config.validation_points);

        // Monte Carlo baseline: every validation point under every seed.
        let before = self.engine.simulation_count();
        let baseline_grid = self
            .engine
            .monte_carlo_sweep(cell, arc, &validation, &seeds);
        let baseline_simulations = self.engine.simulation_count() - before;
        let baseline_mean_delay: Vec<f64> = baseline_grid
            .iter()
            .map(|row| moments::mean(&row.iter().map(|m| m.delay.value()).collect::<Vec<_>>()))
            .collect();
        let baseline_std_delay: Vec<f64> = baseline_grid
            .iter()
            .map(|row| moments::std_dev(&row.iter().map(|m| m.delay.value()).collect::<Vec<_>>()))
            .collect();
        let baseline_mean_slew: Vec<f64> = baseline_grid
            .iter()
            .map(|row| {
                moments::mean(
                    &row.iter()
                        .map(|m| m.output_slew.value())
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let baseline_std_slew: Vec<f64> = baseline_grid
            .iter()
            .map(|row| {
                moments::std_dev(
                    &row.iter()
                        .map(|m| m.output_slew.value())
                        .collect::<Vec<_>>(),
                )
            })
            .collect();

        // Per-seed effective currents at the validation points are needed to evaluate the
        // model; they are DC evaluations, not transient simulations.
        let validation_ieffs_per_seed: Vec<Vec<f64>> = seeds
            .iter()
            .map(|seed| {
                validation
                    .iter()
                    .map(|p| self.engine.ieff(arc, p, seed).value())
                    .collect()
            })
            .collect();

        let mut curves: Vec<StatMethodCurves> = [
            MethodKind::ProposedBayesian,
            MethodKind::ProposedLse,
            MethodKind::Lut,
        ]
        .iter()
        .map(|&method| StatMethodCurves {
            method,
            training_counts: self.config.training_counts.clone(),
            mean_delay_error: Vec::new(),
            std_delay_error: Vec::new(),
            mean_slew_error: Vec::new(),
            std_slew_error: Vec::new(),
            simulations: Vec::new(),
        })
        .collect();

        let lut_builder = LutBuilder::new(&self.engine);

        for &k in &self.config.training_counts {
            let mut training_rng =
                StdRng::seed_from_u64(self.config.seed ^ (k as u64).wrapping_mul(0x9E37_79B9));
            let training_points = space.sample_latin_hypercube(&mut training_rng, k);

            for (method, use_prior) in [
                (MethodKind::ProposedBayesian, true),
                (MethodKind::ProposedLse, false),
            ] {
                let (delay_params, slew_params, cost) =
                    self.extract_per_seed(cell, arc, &training_points, &seeds, use_prior);
                let (md, sd, ms, ss) = self.model_moment_errors(
                    &validation,
                    &validation_ieffs_per_seed,
                    &delay_params,
                    &slew_params,
                    (
                        &baseline_mean_delay,
                        &baseline_std_delay,
                        &baseline_mean_slew,
                        &baseline_std_slew,
                    ),
                );
                let curve = curves
                    .iter_mut()
                    .find(|c| c.method == method)
                    .expect("curve exists");
                curve.mean_delay_error.push(md);
                curve.std_delay_error.push(sd);
                curve.mean_slew_error.push(ms);
                curve.std_slew_error.push(ss);
                curve.simulations.push(cost);
            }

            // Statistical LUT with the same number of training conditions.
            let before = self.engine.simulation_count();
            let lut = lut_builder.build_statistical_with_budget(cell, arc, k, &seeds);
            let lut_cost = self.engine.simulation_count() - before;
            let mut pred = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
            for p in &validation {
                let (md, sd, ms, ss) = lut.predict(p);
                pred.0.push(md);
                pred.1.push(sd);
                pred.2.push(ms);
                pred.3.push(ss);
            }
            let curve = curves
                .iter_mut()
                .find(|c| c.method == MethodKind::Lut)
                .expect("curve exists");
            curve
                .mean_delay_error
                .push(mean_relative_error_percent(&pred.0, &baseline_mean_delay));
            curve
                .std_delay_error
                .push(mean_relative_error_percent(&pred.1, &baseline_std_delay));
            curve
                .mean_slew_error
                .push(mean_relative_error_percent(&pred.2, &baseline_mean_slew));
            curve
                .std_slew_error
                .push(mean_relative_error_percent(&pred.3, &baseline_std_slew));
            curve.simulations.push(lut_cost);
        }

        StatisticalStudyResult {
            curves,
            baseline_simulations,
            process_seeds: seeds.len(),
        }
    }

    /// Computes Eqs. (16)–(19) (expressed as relative errors in percent) for a model-based
    /// method described by its per-seed parameters.
    fn model_moment_errors(
        &self,
        validation: &[InputPoint],
        ieffs_per_seed: &[Vec<f64>],
        delay_params: &[TimingParams],
        slew_params: &[TimingParams],
        baseline: (&[f64], &[f64], &[f64], &[f64]),
    ) -> (f64, f64, f64, f64) {
        let mut mean_delay = Vec::with_capacity(validation.len());
        let mut std_delay = Vec::with_capacity(validation.len());
        let mut mean_slew = Vec::with_capacity(validation.len());
        let mut std_slew = Vec::with_capacity(validation.len());
        for (i, point) in validation.iter().enumerate() {
            let delays: Vec<f64> = delay_params
                .iter()
                .enumerate()
                .map(|(j, p)| {
                    p.evaluate(point, slic_units::Amperes(ieffs_per_seed[j][i]))
                        .value()
                })
                .collect();
            let slews: Vec<f64> = slew_params
                .iter()
                .enumerate()
                .map(|(j, p)| {
                    p.evaluate(point, slic_units::Amperes(ieffs_per_seed[j][i]))
                        .value()
                })
                .collect();
            mean_delay.push(moments::mean(&delays));
            std_delay.push(moments::std_dev(&delays));
            mean_slew.push(moments::mean(&slews));
            std_slew.push(moments::std_dev(&slews));
        }
        (
            mean_relative_error_percent(&mean_delay, baseline.0),
            mean_relative_error_percent(&std_delay, baseline.1),
            mean_relative_error_percent(&mean_slew, baseline.2),
            mean_relative_error_percent(&std_slew, baseline.3),
        )
    }

    /// Reproduces Fig. 9: the delay distribution at one input condition as seen by the
    /// baseline, the proposed method (with `proposed_k` training conditions) and a per-seed
    /// LUT interpolation (with `lut_budget` grid conditions).
    pub fn delay_pdf(
        &self,
        cell: Cell,
        arc: &TimingArc,
        point: InputPoint,
        proposed_k: usize,
        lut_budget: usize,
    ) -> DelayPdfComparison {
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(9));
        let seeds = self
            .engine
            .tech()
            .variation()
            .sample_n(&mut rng, self.config.process_seeds);
        let space = self.engine.input_space();

        // Baseline Monte Carlo at the probe point.
        let baseline: Vec<f64> = self
            .engine
            .monte_carlo(cell, arc, &point, &seeds)
            .iter()
            .map(|m| m.delay.value())
            .collect();

        // Proposed: per-seed MAP extraction from `proposed_k` conditions.
        let training_points = space.sample_latin_hypercube(&mut rng, proposed_k);
        let (delay_params, _slew_params, _) =
            self.extract_per_seed(cell, arc, &training_points, &seeds, true);
        let proposed: Vec<f64> = delay_params
            .iter()
            .zip(&seeds)
            .map(|(p, seed)| {
                p.evaluate(&point, self.engine.ieff(arc, &point, seed))
                    .value()
            })
            .collect();

        // LUT: a per-seed nominal grid of `lut_budget` conditions, interpolated at the probe.
        let levels = slic_lut::grid_levels_for_budget(lut_budget);
        let lut: Vec<f64> = seeds
            .iter()
            .map(|seed| {
                let grid = space.lut_grid(levels.0, levels.1, levels.2);
                let measurements = self.engine.sweep(cell, arc, &grid, seed);
                let delays: Vec<f64> = measurements.iter().map(|m| m.delay.value()).collect();
                let table = slic_lut::Lut3d::from_values(
                    grid.iter()
                        .map(|p| p.sin.value())
                        .collect::<Vec<_>>()
                        .into_iter()
                        .fold(Vec::new(), dedup_push),
                    grid.iter()
                        .map(|p| p.cload.value())
                        .collect::<Vec<_>>()
                        .into_iter()
                        .fold(Vec::new(), dedup_push),
                    grid.iter()
                        .map(|p| p.vdd.value())
                        .collect::<Vec<_>>()
                        .into_iter()
                        .fold(Vec::new(), dedup_push),
                    delays,
                );
                table.interpolate(&point)
            })
            .collect();

        DelayPdfComparison {
            point,
            baseline,
            proposed,
            lut,
            proposed_training_conditions: proposed_k,
            lut_training_conditions: levels.0 * levels.1 * levels.2,
        }
    }
}

/// Accumulates sorted unique axis values (the LUT grid enumerates the axes in row-major
/// order, so duplicates are adjacent after sorting).
fn dedup_push(mut acc: Vec<f64>, value: f64) -> Vec<f64> {
    if !acc.iter().any(|v| (*v - value).abs() < 1e-18) {
        acc.push(value);
        acc.sort_by(|a, b| a.partial_cmp(b).expect("finite axis values"));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::historical::{HistoricalLearner, HistoricalLearningConfig};
    use slic_cells::{CellKind, DriveStrength, Library, Transition};
    use slic_units::{Farads, Seconds, Volts};

    fn learned_database() -> HistoricalDatabase {
        let config = HistoricalLearningConfig {
            grid_levels: (3, 3, 2),
            transient: TransientConfig::fast(),
        };
        HistoricalLearner::new(config)
            .learn(
                &[TechnologyNode::n28_bulk(), TechnologyNode::n20_bulk()],
                &Library::paper_trio(),
            )
            .database
    }

    #[test]
    fn statistical_study_produces_consistent_curves() {
        let db = learned_database();
        let study = StatisticalStudy::new(
            TechnologyNode::target_28nm(),
            &db,
            StatisticalStudyConfig::quick(),
        );
        let cell = Cell::new(CellKind::Nand2, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let result = study.run(cell, &arc);

        assert_eq!(result.curves.len(), 3);
        assert_eq!(result.process_seeds, 30);
        assert_eq!(result.baseline_simulations, 20 * 30);
        for curve in &result.curves {
            assert_eq!(curve.mean_delay_error.len(), 2);
            for metric in StatMetric::ALL {
                let mc = curve.as_method_curve(metric);
                assert!(mc.errors_percent.iter().all(|e| e.is_finite() && *e >= 0.0));
            }
        }
        // Mean-delay reconstruction by the Bayesian method must be accurate even at k = 3.
        let bayes = result.curves_for(MethodKind::ProposedBayesian);
        assert!(
            bayes.mean_delay_error[0] < 12.0,
            "mean-delay error = {}",
            bayes.mean_delay_error[0]
        );
        // And it must beat the 3-condition statistical LUT on mean delay.
        let lut = result.curves_for(MethodKind::Lut);
        assert!(bayes.mean_delay_error[0] < lut.mean_delay_error[0]);
        let table = result.to_markdown(StatMetric::MeanDelay);
        assert!(table.contains("Lookup Table"));
    }

    #[test]
    fn delay_pdf_reproduces_baseline_distribution() {
        let db = learned_database();
        let mut config = StatisticalStudyConfig::quick();
        config.process_seeds = 40;
        let study = StatisticalStudy::new(TechnologyNode::target_28nm(), &db, config);
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let point = InputPoint::new(
            Seconds::from_picoseconds(5.09),
            Farads::from_femtofarads(1.67),
            Volts(0.734),
        );
        let pdf = study.delay_pdf(cell, &arc, point, 7, 12);
        assert_eq!(pdf.baseline.len(), 40);
        assert_eq!(pdf.proposed.len(), 40);
        assert_eq!(pdf.lut.len(), 40);
        assert_eq!(pdf.proposed_training_conditions, 7);
        assert!(pdf.lut_training_conditions <= 12);
        // The proposed reconstruction tracks the baseline seed by seed.
        assert!(
            pdf.proposed_error_percent() < 15.0,
            "proposed error = {}",
            pdf.proposed_error_percent()
        );
        // Both reconstructions are positive delays of comparable magnitude.
        let base_mean = moments::mean(&pdf.baseline);
        let prop_mean = moments::mean(&pdf.proposed);
        assert!((prop_mean - base_mean).abs() / base_mean < 0.15);
        assert!(pdf.lut.iter().all(|d| *d > 0.0));
    }
}
