//! The broker side of the farm: [`FarmBackend`], a [`SimulationBackend`] that fans
//! batches out to a fleet of workers.
//!
//! Dispatch is **work-stealing**: each `solve_batch` call splits its lanes into jobs on a
//! shared queue, and one dispatcher thread per live worker pulls the next job whenever
//! its worker is free — a fast worker simply drains more of the queue, and no static
//! partition can leave one worker idle while another is backed up.
//!
//! Failure handling is a **degradation ladder**, with every rung accounted for in
//! [`FarmStats`]:
//!
//! 1. **Heartbeats** — before dispatching, each TCP worker answers a `ping`/`pong` round
//!    trip under a short deadline, so a half-open connection (host vanished, NAT state
//!    expired) is caught between batches instead of stalling a dispatch into the full
//!    60 s batch deadline.  A missed heartbeat drops the connection (`heartbeats_missed`)
//!    and hands the worker to the reconnect supervisor.
//! 2. **Failover** — a job whose round trip fails goes back on the queue (`failovers`,
//!    the per-job retry count), where another worker picks it up.
//! 3. **Reconnection** — a dead worker is no longer dead forever: the broker re-dials it
//!    on a seeded, deterministic exponential-backoff-with-jitter schedule
//!    ([`BackoffPolicy`]) and re-admits it after a fresh [`Hello`](crate::wire::Hello)
//!    handshake (`reconnects`).  Requeued jobs wait on the queue while workers
//!    re-admit, so a flapping fleet still finishes remotely.  Only a worker whose whole
//!    re-dial budget fails is retired for the rest of the run.
//! 4. **Local fallback** — a job that exhausts its retry budget, or is still queued when
//!    every worker is retired, is solved in-process by a [`LocalBackend`]
//!    (`degraded_jobs`, `lanes_local`).  A farm run therefore *completes* under any
//!    failure pattern short of the broker itself dying, and because every backend runs
//!    the same kernel (enforced by the handshake), the results are bitwise identical no
//!    matter which worker — or the broker itself — solved each lane.
//!
//! Spawned stdio children get the same hang protection a TCP deadline provides: a
//! watchdog thread arms around every pipe round trip and kills the child past
//! [`BATCH_TIMEOUT`], which closes its pipes and fails the job over like a TCP timeout.
//!
//! All resilience timing (backoff delays, heartbeat deadlines) is seeded or constant and
//! stays strictly on the *scheduling* side: it decides when and where a lane is solved,
//! never what the solution is, so farm artifacts remain byte-identical to local ones
//! under any injected fault — the invariant the chaos suite and CI `cmp` gates pin.
//!
//! The broker keeps the engine-side policy untouched: counting, caching and single-flight
//! all happen in the [`CharacterizationEngine`](slic_spice::CharacterizationEngine) that
//! owns this backend, so a unique coordinate is paid for exactly once across the whole
//! farm.

use crate::backoff::{splitmix64, BackoffPolicy};
use crate::wire::{decode_message, encode_message, Message, WireError, WireRequest};
use crate::FarmError;
use slic_obs::Observability;
use slic_spice::{LocalBackend, SimRequest, SimResult, SimulationBackend};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Deadline for establishing a TCP worker connection.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// Deadline for one batch round trip.  Solving a 16-lane batch takes milliseconds even
/// at the accurate preset, so a worker silent this long is hung or unreachable — it is
/// marked dead and its job fails over, instead of stalling the whole run on a blocked
/// read.  TCP connections enforce it as a socket read/write timeout; spawned stdio
/// children (no pipe deadline in std) get a [`PipeWatchdog`] that kills the child past
/// the same deadline, closing its pipes and unblocking the read with EOF.
const BATCH_TIMEOUT: Duration = Duration::from_secs(60);

/// How a worker is (re-)dialed: the broker remembers every worker's origin so the
/// reconnect supervisor can bring it back — re-connect a TCP address, re-spawn a child.
enum WorkerEndpoint {
    /// `host:port` of a `slic worker --listen` process.
    Tcp(String),
    /// The binary to run as `<program> worker` over stdio pipes.
    Spawn(PathBuf),
}

/// An established, handshook connection to one worker.
struct WorkerConn {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
    /// The TCP stream behind reader/writer (`None` for stdio children); retained so the
    /// heartbeat can tighten and restore the read deadline.
    stream: Option<TcpStream>,
    /// The subprocess behind the connection, shared with the pipe watchdog so a hung
    /// child can be killed while the round trip is still blocked on its pipe.
    child: Arc<Mutex<Option<Child>>>,
}

impl Drop for WorkerConn {
    fn drop(&mut self) {
        let mut child = self
            .child
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(child) = child.as_mut() {
            // The connection is gone (shutdown sent, or the worker was marked dead): make
            // sure the subprocess does not linger.  Kill is a no-op for an already-exited
            // child; wait reaps it either way.
            let _ = child.kill();
            let _ = child.wait();
        }
        *child = None;
    }
}

/// One worker slot: identity, origin, and the (lockable) connection, `None` while down.
struct WorkerSlot {
    name: String,
    endpoint: WorkerEndpoint,
    /// Per-slot jitter stream for the re-dial schedule, derived from the fleet seed so
    /// workers spread their re-dials instead of synchronizing.
    backoff_seed: u64,
    conn: Mutex<Option<WorkerConn>>,
    /// Serializes re-dial campaigns: one dispatcher pays the backoff schedule while the
    /// rest keep draining the queue on their own workers.
    redial: Mutex<()>,
    /// Permanently retired: the whole reconnect budget failed.  Never dialed again.
    gone: AtomicBool,
}

/// Resilience knobs of a [`FarmBackend`], all deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FarmTuning {
    /// Dispatch attempts per job before it degrades to the local fallback.
    /// `None` = the fleet size (every worker gets one shot), the pre-resilience rule.
    pub retry_budget: Option<usize>,
    /// Re-dials per reconnect campaign before a worker is retired for the run.
    /// `0` restores the old dead-forever behaviour.
    pub reconnect_attempts: u32,
    /// First-attempt ceiling of the re-dial backoff schedule, in milliseconds.
    pub backoff_base_ms: u64,
    /// Hard ceiling of any single re-dial delay, in milliseconds.
    pub backoff_cap_ms: u64,
    /// Seed of the backoff jitter streams (per-worker streams are derived from it).
    pub backoff_seed: u64,
    /// Probe TCP workers with `ping`/`pong` before each dispatch wave.
    pub heartbeat: bool,
    /// Read deadline for one heartbeat round trip, in milliseconds.
    pub heartbeat_timeout_ms: u64,
}

impl Default for FarmTuning {
    fn default() -> Self {
        Self {
            retry_budget: None,
            reconnect_attempts: 4,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
            // Any fixed constant keeps the default schedule deterministic; runs that
            // want per-run jitter derive a seed from their RunConfig (see slic-pipeline).
            backoff_seed: 0x51ac_0fa2,
            heartbeat: true,
            heartbeat_timeout_ms: 5_000,
        }
    }
}

/// Farm throughput and failure counters, readable while a run is in flight.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FarmStats {
    /// Jobs answered by a worker.
    pub jobs_completed: u64,
    /// Job retries: dispatch attempts that failed and sent the job back for another try
    /// (or, once its budget was spent, to the local fallback).
    pub failovers: u64,
    /// Dead workers re-admitted to the fleet after a successful re-dial + handshake.
    pub reconnects: u64,
    /// Heartbeat probes that went unanswered, each dropping a half-open connection.
    pub heartbeats_missed: u64,
    /// Jobs that exhausted their retry budget (or outlived the fleet) and degraded to
    /// the in-process fallback.
    pub degraded_jobs: u64,
    /// Lanes solved on a worker.
    pub lanes_remote: u64,
    /// Lanes solved by the broker's local fallback.
    pub lanes_local: u64,
}

/// A contiguous run of lanes handed to one worker as one wire batch.
struct Job {
    /// Start offset into the request slice.
    start: usize,
    /// One past the last lane.
    end: usize,
    /// Dispatch attempts so far (drives the retry budget).
    attempts: usize,
}

/// The shared dispatch state of one `solve_batch` call.
struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    in_flight: usize,
}

impl JobQueue {
    fn new(jobs: VecDeque<Job>) -> Self {
        Self {
            state: Mutex::new(QueueState { jobs, in_flight: 0 }),
            ready: Condvar::new(),
        }
    }

    /// Takes the next job, waiting while other dispatchers still hold jobs that might be
    /// failed back onto the queue.  Returns `None` only when the queue is drained and
    /// nothing is in flight.
    fn next(&self) -> Option<Job> {
        // A poisoned queue means a dispatcher panicked; every mutation below is a single
        // statement, so the state is still consistent — recover it and keep dispatching.
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        loop {
            if let Some(job) = state.jobs.pop_front() {
                state.in_flight += 1;
                return Some(job);
            }
            if state.in_flight == 0 {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Marks a held job finished (solved, or handed to the stranded list).
    fn done(&self) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        state.in_flight -= 1;
        self.ready.notify_all();
    }

    /// Returns a held job to the queue for another dispatcher — the failover path.
    fn requeue(&self, job: Job) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        state.in_flight -= 1;
        state.jobs.push_back(job);
        self.ready.notify_all();
    }

    /// Drains whatever is left once every dispatcher has exited.
    fn drain(&self) -> Vec<Job> {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        state.jobs.drain(..).collect()
    }
}

/// Kills a stdio child whose pipe round trip outlives [`BATCH_TIMEOUT`].
///
/// std offers no read deadline on pipes, so a hung child would block the dispatcher
/// forever.  The watchdog waits on a condvar with the batch deadline; a round trip that
/// finishes in time disarms it (the [`Drop`] side), one that does not gets its child
/// killed — closing the pipes, unblocking the read with EOF, and failing the job over
/// exactly like a TCP timeout would.
struct PipeWatchdog {
    done: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl PipeWatchdog {
    fn arm(child: Arc<Mutex<Option<Child>>>, deadline: Duration) -> Self {
        let done = Arc::new((Mutex::new(false), Condvar::new()));
        let observer = Arc::clone(&done);
        let handle = std::thread::spawn(move || {
            let (flag, disarmed) = &*observer;
            let guard = flag.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            let (guard, timeout) = disarmed
                .wait_timeout_while(guard, deadline, |finished| !*finished)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if !*guard && timeout.timed_out() {
                if let Some(child) = child
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .as_mut()
                {
                    let _ = child.kill();
                }
            }
        });
        Self {
            done,
            handle: Some(handle),
        }
    }
}

impl Drop for PipeWatchdog {
    fn drop(&mut self) {
        let (flag, disarmed) = &*self.done;
        *flag.lock().unwrap_or_else(|poisoned| poisoned.into_inner()) = true;
        disarmed.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A [`SimulationBackend`] that brokers batches to a fleet of farm workers.
pub struct FarmBackend {
    workers: Vec<WorkerSlot>,
    tuning: FarmTuning,
    next_id: AtomicU64,
    fallback: LocalBackend,
    jobs_completed: AtomicU64,
    failovers: AtomicU64,
    reconnects: AtomicU64,
    heartbeats_missed: AtomicU64,
    degraded_jobs: AtomicU64,
    lanes_remote: AtomicU64,
    lanes_local: AtomicU64,
    obs: Observability,
}

impl std::fmt::Debug for FarmBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FarmBackend")
            .field("workers", &self.workers.len())
            .field("live", &self.live_workers())
            .field("stats", &self.stats())
            .finish()
    }
}

impl FarmBackend {
    /// Connects to TCP workers and/or spawns subprocess workers, in that order, with
    /// default [`FarmTuning`].
    ///
    /// `program` is the binary to spawn (`<program> worker`, speaking the protocol on its
    /// stdio) and is required when `spawn` is nonzero — typically the `slic` binary
    /// itself, so a farm run needs nothing installed beyond the one executable.
    ///
    /// # Errors
    ///
    /// Returns a [`FarmError`] when no worker is requested, a connection or spawn fails,
    /// or a handshake reveals an incompatible worker.  Construction is all-or-nothing: a
    /// fleet that starts degraded is an operator error, not a failover case.
    pub fn new(
        addresses: &[String],
        spawn: usize,
        program: Option<&Path>,
    ) -> Result<Self, FarmError> {
        Self::with_tuning(addresses, spawn, program, FarmTuning::default())
    }

    /// [`new`](Self::new) with explicit resilience knobs.
    ///
    /// # Errors
    ///
    /// See [`FarmBackend::new`].
    pub fn with_tuning(
        addresses: &[String],
        spawn: usize,
        program: Option<&Path>,
        tuning: FarmTuning,
    ) -> Result<Self, FarmError> {
        if addresses.is_empty() && spawn == 0 {
            return Err(FarmError::NoWorkers);
        }
        let mut endpoints: Vec<(String, WorkerEndpoint)> = addresses
            .iter()
            .map(|address| (address.clone(), WorkerEndpoint::Tcp(address.clone())))
            .collect();
        if spawn > 0 {
            let program = program.ok_or_else(|| {
                FarmError::Spawn("no worker program given for --spawn-workers".to_string())
            })?;
            for index in 0..spawn {
                endpoints.push((
                    format!("spawned-{index}"),
                    WorkerEndpoint::Spawn(program.to_path_buf()),
                ));
            }
        }
        let workers = endpoints
            .into_iter()
            .enumerate()
            .map(|(index, (name, endpoint))| {
                let conn = dial(&endpoint, &name)?;
                Ok(WorkerSlot {
                    name,
                    endpoint,
                    backoff_seed: tuning.backoff_seed ^ splitmix64(index as u64),
                    conn: Mutex::new(Some(conn)),
                    redial: Mutex::new(()),
                    gone: AtomicBool::new(false),
                })
            })
            .collect::<Result<Vec<_>, FarmError>>()?;
        Ok(Self {
            workers,
            tuning,
            next_id: AtomicU64::new(0),
            fallback: LocalBackend::new(),
            jobs_completed: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            heartbeats_missed: AtomicU64::new(0),
            degraded_jobs: AtomicU64::new(0),
            lanes_remote: AtomicU64::new(0),
            lanes_local: AtomicU64::new(0),
            obs: Observability::default(),
        })
    }

    /// Attaches the display-only observability bundle.  Spans cover round trips,
    /// heartbeats and re-dial campaigns; per-worker counters track jobs, lanes, wire
    /// bytes and re-admissions.  None of it feeds back into scheduling, so traced and
    /// untraced farm runs stay byte-identical.
    #[must_use]
    pub fn with_observability(mut self, obs: Observability) -> Self {
        self.obs = obs;
        self
    }

    /// Connects to an explicit list of TCP worker addresses.
    ///
    /// # Errors
    ///
    /// See [`FarmBackend::new`].
    pub fn connect(addresses: &[String]) -> Result<Self, FarmError> {
        Self::new(addresses, 0, None)
    }

    /// Spawns `count` subprocess workers of `program` (`<program> worker` over stdio).
    ///
    /// # Errors
    ///
    /// See [`FarmBackend::new`].
    pub fn spawn(program: &Path, count: usize) -> Result<Self, FarmError> {
        Self::new(&[], count, Some(program))
    }

    /// The resilience knobs this fleet runs with.
    pub fn tuning(&self) -> FarmTuning {
        self.tuning
    }

    /// Number of workers currently holding a live connection.
    pub fn live_workers(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| w.conn.lock().is_ok_and(|conn| conn.is_some()))
            .count()
    }

    /// Total workers in the fleet (live or dead).
    pub fn fleet_size(&self) -> usize {
        self.workers.len()
    }

    /// A snapshot of the dispatch counters.
    pub fn stats(&self) -> FarmStats {
        FarmStats {
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            heartbeats_missed: self.heartbeats_missed.load(Ordering::Relaxed),
            degraded_jobs: self.degraded_jobs.load(Ordering::Relaxed),
            lanes_remote: self.lanes_remote.load(Ordering::Relaxed),
            lanes_local: self.lanes_local.load(Ordering::Relaxed),
        }
    }

    /// Re-dials a down worker on its seeded backoff schedule and re-admits it after a
    /// fresh handshake.  Returns `true` when the slot holds a live connection again.
    ///
    /// One campaign runs at a time per slot (the `redial` lock); a dispatcher arriving
    /// while another is mid-campaign waits, then finds either a fresh connection or a
    /// retired slot.  A slot whose whole budget fails is marked `gone` and never dialed
    /// again this run.
    fn reconnect(&self, slot: &WorkerSlot) -> bool {
        if slot.gone.load(Ordering::Relaxed) {
            return false;
        }
        let _campaign = slot
            .redial
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if slot.gone.load(Ordering::Relaxed) {
            return false;
        }
        if slot
            .conn
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .is_some()
        {
            // Another dispatcher's campaign already re-admitted it while we waited.
            return true;
        }
        let mut span = self
            .obs
            .trace
            .span("farm.redial", &[("worker", slot.name.clone())]);
        let policy = BackoffPolicy {
            base_ms: self.tuning.backoff_base_ms,
            cap_ms: self.tuning.backoff_cap_ms,
            seed: slot.backoff_seed,
        };
        for attempt in 0..self.tuning.reconnect_attempts {
            std::thread::sleep(policy.delay(attempt));
            match dial(&slot.endpoint, &slot.name) {
                Ok(conn) => {
                    *slot
                        .conn
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(conn);
                    self.reconnects.fetch_add(1, Ordering::Relaxed);
                    self.obs
                        .metrics
                        .counter_add(&format!("farm.worker.{}.reconnects", slot.name), 1);
                    span.attr("readmitted", "true".to_string());
                    eprintln!(
                        "slic farm: worker `{}` re-admitted after {} re-dial(s)",
                        slot.name,
                        attempt + 1
                    );
                    return true;
                }
                Err(err) => {
                    eprintln!(
                        "slic farm: re-dial {}/{} of worker `{}` failed: {err}",
                        attempt + 1,
                        self.tuning.reconnect_attempts,
                        slot.name
                    );
                }
            }
        }
        slot.gone.store(true, Ordering::Relaxed);
        span.attr("readmitted", "false".to_string());
        eprintln!(
            "slic farm: worker `{}` retired for this run (reconnect budget exhausted)",
            slot.name
        );
        false
    }

    /// Probes one worker with a `ping`/`pong` round trip under the heartbeat deadline.
    ///
    /// Returns `true` when the worker may be dispatched to: it answered, it is a stdio
    /// child (pipes cannot be half-open; the [`PipeWatchdog`] covers hangs), or
    /// heartbeats are disabled.  A silent or wrong answer drops the connection — the
    /// reconnect supervisor decides whether it comes back.
    fn heartbeat(&self, slot: &WorkerSlot) -> bool {
        if !self.tuning.heartbeat {
            return true;
        }
        let mut guard = match slot.conn.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                *guard = None;
                return false;
            }
        };
        let outcome = match guard.as_mut() {
            None => return false,
            Some(conn) if conn.stream.is_none() => return true,
            Some(conn) => {
                let id = self.next_id.fetch_add(1, Ordering::Relaxed);
                let deadline = Duration::from_millis(self.tuning.heartbeat_timeout_ms.max(1));
                let _span = self
                    .obs
                    .trace
                    .span("farm.heartbeat", &[("worker", slot.name.clone())]);
                ping_roundtrip(conn, id, deadline)
            }
        };
        match outcome {
            Ok(()) => true,
            Err(err) => {
                eprintln!(
                    "slic farm: worker `{}` missed its heartbeat ({err}); dropping the \
                     connection",
                    slot.name
                );
                self.heartbeats_missed.fetch_add(1, Ordering::Relaxed);
                self.obs
                    .metrics
                    .counter_add(&format!("farm.worker.{}.heartbeats_missed", slot.name), 1);
                *guard = None;
                false
            }
        }
    }

    /// Sends one job to one worker and reads its results, holding the worker's lock for
    /// the round trip (the protocol is strictly alternating per connection).  On any
    /// failure the connection is dropped before the error is returned; whether the
    /// worker comes back is the reconnect supervisor's call.
    fn roundtrip(
        &self,
        slot: &WorkerSlot,
        requests: &[WireRequest],
    ) -> Result<Vec<SimResult>, FarmError> {
        let mut span = self.obs.trace.span(
            "farm.roundtrip",
            &[
                ("worker", slot.name.clone()),
                ("lanes", requests.len().to_string()),
            ],
        );
        let mut guard = match slot.conn.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                *guard = None;
                return Err(FarmError::WorkerDown(slot.name.clone()));
            }
        };
        let outcome = (|| -> Result<Vec<SimResult>, FarmError> {
            let conn = guard
                .as_mut()
                .ok_or_else(|| FarmError::WorkerDown(slot.name.clone()))?;
            // A stdio child has no pipe deadline: arm the kill-past-deadline watchdog
            // for the duration of the round trip (disarmed on drop).
            let _watchdog = conn
                .stream
                .is_none()
                .then(|| PipeWatchdog::arm(Arc::clone(&conn.child), BATCH_TIMEOUT));
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            let payload = encode_message(&Message::Batch {
                id,
                requests: requests.to_vec(),
            });
            self.obs.metrics.counter_add(
                &format!("farm.worker.{}.bytes_tx", slot.name),
                payload.len() as u64 + 1,
            );
            writeln!(conn.writer, "{payload}")
                .map_err(|err| FarmError::Transport(slot.name.clone(), err.to_string()))?;
            conn.writer
                .flush()
                .map_err(|err| FarmError::Transport(slot.name.clone(), err.to_string()))?;
            let mut line = String::new();
            let read = conn
                .reader
                // slic-lint: allow(L1) -- the protocol is strictly alternating per connection, so the slot lock must span the write+read round trip; other workers use other slots and the read has a deadline (socket timeout or pipe watchdog).
                .read_line(&mut line)
                .map_err(|err| FarmError::Transport(slot.name.clone(), err.to_string()))?;
            if read == 0 {
                return Err(FarmError::WorkerDown(slot.name.clone()));
            }
            self.obs.metrics.counter_add(
                &format!("farm.worker.{}.bytes_rx", slot.name),
                line.len() as u64,
            );
            match decode_message(line.trim_end()) {
                Ok(Message::Results {
                    id: reply_id,
                    results,
                }) if reply_id == id && results.len() == requests.len() => results
                    .iter()
                    .map(|entry| {
                        entry
                            .decode()
                            .map_err(|err| FarmError::Protocol(slot.name.clone(), err.to_string()))
                    })
                    .collect(),
                Ok(other) => Err(FarmError::Protocol(
                    slot.name.clone(),
                    format!("expected results for batch {id}, got {other:?}"),
                )),
                Err(err) => Err(FarmError::Protocol(slot.name.clone(), err.to_string())),
            }
        })();
        match &outcome {
            Ok(_) => {
                span.attr("ok", "true".to_string());
                self.obs
                    .metrics
                    .counter_add(&format!("farm.worker.{}.jobs", slot.name), 1);
                self.obs.metrics.counter_add(
                    &format!("farm.worker.{}.lanes", slot.name),
                    requests.len() as u64,
                );
            }
            Err(_) => {
                span.attr("ok", "false".to_string());
                // Health tracking: a failed round trip drops the connection (also reaping
                // a spawned subprocess).  Re-admission requires a fresh dial + handshake.
                *guard = None;
            }
        }
        outcome
    }
}

/// Runs one heartbeat round trip on an established TCP connection, tightening the read
/// deadline to `deadline` for the probe and restoring [`BATCH_TIMEOUT`] on success.
fn ping_roundtrip(conn: &mut WorkerConn, id: u64, deadline: Duration) -> Result<(), FarmError> {
    let stream = conn
        .stream
        .as_ref()
        .ok_or_else(|| FarmError::Transport("?".to_string(), "not a TCP worker".to_string()))?;
    let fail = |err: String| FarmError::Transport("heartbeat".to_string(), err);
    stream
        .set_read_timeout(Some(deadline))
        .map_err(|err| fail(err.to_string()))?;
    writeln!(conn.writer, "{}", encode_message(&Message::Ping { id }))
        .map_err(|err| fail(err.to_string()))?;
    conn.writer.flush().map_err(|err| fail(err.to_string()))?;
    let mut line = String::new();
    let read = conn
        .reader
        .read_line(&mut line)
        .map_err(|err| fail(err.to_string()))?;
    if read == 0 {
        return Err(fail("connection closed mid-heartbeat".to_string()));
    }
    match decode_message(line.trim_end()) {
        Ok(Message::Pong { id: reply }) if reply == id => {
            // The probe passed: put the batch deadline back before real traffic.
            conn.stream
                .as_ref()
                .ok_or_else(|| fail("not a TCP worker".to_string()))?
                .set_read_timeout(Some(BATCH_TIMEOUT))
                .map_err(|err| fail(err.to_string()))?;
            Ok(())
        }
        Ok(other) => Err(fail(format!("expected pong {id}, got {other:?}"))),
        Err(err) => Err(fail(err.to_string())),
    }
}

/// Establishes and handshakes a fresh connection to `endpoint` — used both at
/// construction and by every reconnect campaign (re-admission requires a fresh
/// [`Hello`](crate::wire::Hello), so a restarted worker re-proves its versions).
fn dial(endpoint: &WorkerEndpoint, name: &str) -> Result<WorkerConn, FarmError> {
    match endpoint {
        WorkerEndpoint::Tcp(address) => {
            let connect = || -> std::io::Result<TcpStream> {
                let mut last = None;
                for addr in address.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT) {
                        Ok(stream) => return Ok(stream),
                        Err(err) => last = Some(err),
                    }
                }
                Err(last.unwrap_or_else(|| {
                    std::io::Error::new(std::io::ErrorKind::NotFound, "address resolves to nothing")
                }))
            };
            let stream =
                connect().map_err(|err| FarmError::Connect(address.clone(), err.to_string()))?;
            stream.set_nodelay(true).ok();
            // Silence past the deadline counts as worker death (see BATCH_TIMEOUT).
            stream
                .set_read_timeout(Some(BATCH_TIMEOUT))
                .map_err(|err| FarmError::Connect(address.clone(), err.to_string()))?;
            stream
                .set_write_timeout(Some(BATCH_TIMEOUT))
                .map_err(|err| FarmError::Connect(address.clone(), err.to_string()))?;
            let reader: Box<dyn Read + Send> = Box::new(
                stream
                    .try_clone()
                    .map_err(|err| FarmError::Connect(address.clone(), err.to_string()))?,
            );
            let writer: Box<dyn Write + Send> = Box::new(
                stream
                    .try_clone()
                    .map_err(|err| FarmError::Connect(address.clone(), err.to_string()))?,
            );
            handshake(reader, writer, Some(stream), None)
                .map_err(|err| FarmError::Handshake(address.clone(), err.to_string()))
        }
        WorkerEndpoint::Spawn(program) => {
            let mut child = Command::new(program)
                .arg("worker")
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .map_err(|err| FarmError::Spawn(format!("{}: {err}", program.display())))?;
            let stdout = child
                .stdout
                .take()
                .ok_or_else(|| FarmError::Spawn(format!("{name}: no stdout pipe")))?;
            let stdin = child
                .stdin
                .take()
                .ok_or_else(|| FarmError::Spawn(format!("{name}: no stdin pipe")))?;
            handshake(Box::new(stdout), Box::new(stdin), None, Some(child))
                .map_err(|err| FarmError::Handshake(name.to_string(), err.to_string()))
        }
    }
}

/// Completes the worker handshake on a fresh connection.
fn handshake(
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
    stream: Option<TcpStream>,
    child: Option<Child>,
) -> Result<WorkerConn, WireError> {
    let mut conn = WorkerConn {
        reader: BufReader::new(reader),
        writer,
        stream,
        child: Arc::new(Mutex::new(child)),
    };
    let mut line = String::new();
    conn.reader
        .read_line(&mut line)
        .map_err(|err| WireError::Malformed(format!("reading hello: {err}")))?;
    match decode_message(line.trim_end())? {
        Message::Hello(hello) => {
            hello.validate()?;
            Ok(conn)
        }
        other => Err(WireError::Malformed(format!(
            "expected hello, got {other:?}"
        ))),
    }
}

/// Lanes per dispatched job: small enough that a fleet interleaves on one engine batch,
/// large enough that the JSON framing stays noise.
fn job_lanes(total: usize, workers: usize) -> usize {
    total.div_ceil(workers.max(1) * 2).clamp(1, 16)
}

impl SimulationBackend for FarmBackend {
    fn name(&self) -> &str {
        "farm"
    }

    fn solve_batch(&self, requests: &[SimRequest]) -> Vec<SimResult> {
        if requests.is_empty() {
            return Vec::new();
        }
        // Encode up front; a lane that cannot travel (e.g. a custom technology outside
        // the worker-side catalogue) is solved by the in-process fallback below, so the
        // farm degrades to local execution instead of failing a run the local backend
        // would complete.
        let mut results: Vec<Option<SimResult>> = vec![None; requests.len()];
        let mut untransportable: Vec<usize> = Vec::new();
        let encoded: Vec<Option<WireRequest>> = requests
            .iter()
            .enumerate()
            .map(|(i, request)| match WireRequest::encode(request) {
                Ok(wire) => Some(wire),
                Err(_) => {
                    untransportable.push(i);
                    None
                }
            })
            .collect();

        // Cut the encodable lanes into jobs of contiguous runs.
        let lanes: Vec<usize> = (0..requests.len())
            .filter(|&i| encoded[i].is_some())
            .collect();
        let chunk = job_lanes(lanes.len(), self.workers.len());
        let queue = JobQueue::new(
            (0..lanes.len())
                .step_by(chunk.max(1))
                .map(|start| Job {
                    start,
                    end: (start + chunk).min(lanes.len()),
                    attempts: 0,
                })
                .collect(),
        );
        // A job keeps retrying (on other workers, or on re-admitted ones) until its
        // budget is spent; then the local fallback owns it.
        let retry_budget = self
            .tuning
            .retry_budget
            .unwrap_or(self.workers.len())
            .max(1);
        let stranded: Mutex<Vec<Job>> = Mutex::new(Vec::new());
        let completed: Mutex<Vec<(Job, Vec<SimResult>)>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for slot in &self.workers {
                if slot.gone.load(Ordering::Relaxed) {
                    continue;
                }
                let queue = &queue;
                let stranded = &stranded;
                let completed = &completed;
                let lanes = &lanes;
                let encoded = &encoded;
                scope.spawn(move || {
                    // Admission check: a live worker must pass its heartbeat; a down
                    // worker gets a reconnect campaign before this dispatcher gives up.
                    let has_conn = slot.conn.lock().is_ok_and(|conn| conn.is_some());
                    let admitted = if has_conn {
                        self.heartbeat(slot) || self.reconnect(slot)
                    } else {
                        self.reconnect(slot)
                    };
                    if !admitted {
                        return;
                    }
                    while let Some(mut job) = queue.next() {
                        let wire: Vec<WireRequest> = lanes[job.start..job.end]
                            .iter()
                            // slic-lint: allow(P1) -- structural: `lanes` holds exactly the indices whose encoding succeeded.
                            .map(|&i| encoded[i].clone().expect("encodable lane"))
                            .collect();
                        match self.roundtrip(slot, &wire) {
                            Ok(solved) => {
                                self.jobs_completed.fetch_add(1, Ordering::Relaxed);
                                self.lanes_remote
                                    .fetch_add(solved.len() as u64, Ordering::Relaxed);
                                // Feed the live progress display as round trips land,
                                // not just when whole units complete.
                                self.obs.progress.add_lanes(solved.len() as u64);
                                completed
                                    .lock()
                                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                                    .push((job, solved));
                                queue.done();
                            }
                            Err(err) => {
                                eprintln!(
                                    "slic farm: worker `{}` failed ({err}); failing its job over",
                                    slot.name
                                );
                                self.failovers.fetch_add(1, Ordering::Relaxed);
                                job.attempts += 1;
                                if job.attempts >= retry_budget {
                                    // Budget spent: degrade to the local fallback.
                                    self.degraded_jobs.fetch_add(1, Ordering::Relaxed);
                                    stranded
                                        .lock()
                                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                                        .push(job);
                                    queue.done();
                                } else {
                                    queue.requeue(job);
                                }
                                // Re-dial with backoff; a re-admitted worker keeps
                                // dispatching, a retired one loses its dispatcher.
                                if !self.reconnect(slot) {
                                    return;
                                }
                            }
                        }
                    }
                });
            }
        });

        // Anything the fleet could not finish — stranded jobs, or a queue abandoned when
        // the last worker retired — is solved in-process so the run still completes.
        let mut leftovers = stranded
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let abandoned = queue.drain();
        self.degraded_jobs
            .fetch_add(abandoned.len() as u64, Ordering::Relaxed);
        leftovers.extend(abandoned);
        for job in &leftovers {
            let subset: Vec<SimRequest> = lanes[job.start..job.end]
                .iter()
                .map(|&i| requests[i].clone())
                .collect();
            let solved = self.fallback.solve_batch(&subset);
            self.lanes_local
                .fetch_add(solved.len() as u64, Ordering::Relaxed);
            for (&lane, result) in lanes[job.start..job.end].iter().zip(solved) {
                results[lane] = Some(result);
            }
        }
        let completed = completed
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for (job, solved) in completed {
            for (&lane, result) in lanes[job.start..job.end].iter().zip(solved) {
                results[lane] = Some(result);
            }
        }
        if !untransportable.is_empty() {
            let subset: Vec<SimRequest> = untransportable
                .iter()
                .map(|&i| requests[i].clone())
                .collect();
            let solved = self.fallback.solve_batch(&subset);
            self.lanes_local
                .fetch_add(solved.len() as u64, Ordering::Relaxed);
            for (&lane, result) in untransportable.iter().zip(solved) {
                results[lane] = Some(result);
            }
        }
        results
            .into_iter()
            // slic-lint: allow(P1) -- structural: every lane is either untransportable, stranded, or completed, and each path fills its slot.
            .map(|r| r.expect("every lane resolved"))
            .collect()
    }
}

impl Drop for FarmBackend {
    fn drop(&mut self) {
        for slot in &self.workers {
            // A poisoned slot's connection state is unknown; drop it without the
            // orderly shutdown message (the Drop on WorkerConn still reaps a child).
            let mut guard = match slot.conn.lock() {
                Ok(guard) => guard,
                Err(poisoned) => {
                    *poisoned.into_inner() = None;
                    continue;
                }
            };
            if let Some(conn) = guard.as_mut() {
                // Orderly shutdown; a worker that already died ignores us.
                let _ = writeln!(conn.writer, "{}", encode_message(&Message::Shutdown));
                let _ = conn.writer.flush();
                let mut child = conn
                    .child
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                if let Some(child) = child.as_mut() {
                    let _ = child.wait();
                }
                *child = None;
            }
            *guard = None;
        }
    }
}
