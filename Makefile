# Development entry points (mirrors .github/workflows/ci.yml).

CARGO ?= cargo

.PHONY: build test bench bench-kernel bench-kernel-diff lint slic-lint lint-baseline profile fmt clippy clean

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

bench:
	$(CARGO) bench -p slic-bench

# Transient-kernel throughput bench; rewrites BENCH_transient.json at the repo root.
bench-kernel:
	$(CARGO) bench -p slic-bench --bench transient_kernel

# Reduced-mode bench into target/, then a per-variant ratio table against the
# committed BENCH_transient.json (fails if any variant drops below half baseline).
bench-kernel-diff:
	BENCH_SMOKE=1 BENCH_OUT=$(CURDIR)/target/bench_fresh.json \
		$(CARGO) bench -p slic-bench --bench transient_kernel
	$(CARGO) run --release -p slic-cli -- bench diff target/bench_fresh.json BENCH_transient.json

fmt:
	$(CARGO) fmt --all -- --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

lint: fmt clippy slic-lint

# Workspace invariant checker: determinism, float hygiene, panic policy, lock
# discipline (crates/lint).  Fails on new violations and on stale baseline entries.
slic-lint:
	$(CARGO) run --release -p slic-cli -- lint

# Rewrite lint-baseline.json from the current tree (deny-class rules still fail).
lint-baseline:
	$(CARGO) run --release -p slic-cli -- lint --update-baseline

# Record a traced farmed quick run (tracing never changes artifact bytes) and render
# its span-tree report: phase breakdown, hottest units, worker utilization, cache
# effectiveness.  Sidecar + artifact land in target/profile/.
profile: build
	mkdir -p target/profile
	target/release/slic characterize --spawn-workers 2 \
		--trace target/profile/run.trace.jsonl --out target/profile/run.json
	target/release/slic profile target/profile/run.trace.jsonl

clean:
	$(CARGO) clean
