//! Run configuration: what to characterize, how hard, and with which filters.
//!
//! A [`RunConfig`] is the user-facing, mostly-optional description loaded from a JSON or
//! flat-TOML file (or built in code); [`RunConfig::resolve`] turns it into a fully
//! populated [`ResolvedConfig`] with every name looked up and every default applied, which
//! is what plans and runners consume.

use crate::error::PipelineError;
use crate::toml;
use serde::{Deserialize, Serialize};
use slic::liberty::ExportGrid;
use slic::nominal::MethodKind;
use slic_bayes::TimingMetric;
use slic_cells::{DriveStrength, Library};
use slic_device::TechnologyNode;
use slic_spice::TransientConfig;
use slic_variation::VariationConfig;
use std::path::Path;

/// Salt mixed into the run seed to derive the variation process-sample seed, so the
/// Monte Carlo draw never collides with the training/validation sampling streams.
const VARIATION_SEED_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Salt mixed into the run seed to derive the farm reconnect-backoff jitter seed, so the
/// re-dial schedule is deterministic per run yet uncorrelated with the sampling streams.
const FARM_SEED_SALT: u64 = 0x94d0_49bb_1331_11eb;

/// The accuracy/cost trade-off of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunProfile {
    /// Small budgets and the fast transient preset — seconds per library, for smoke tests
    /// and CI.
    Quick,
    /// Paper-grade budgets and the accurate transient preset.
    Accurate,
}

impl RunProfile {
    /// Parses a profile name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "quick" => Some(Self::Quick),
            "accurate" => Some(Self::Accurate),
            _ => None,
        }
    }

    /// Canonical lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Quick => "quick",
            Self::Accurate => "accurate",
        }
    }

    /// Training conditions simulated per work unit.
    pub fn training_count(self) -> usize {
        match self {
            Self::Quick => 6,
            Self::Accurate => 20,
        }
    }

    /// Validation conditions per work unit (the per-unit accuracy estimate).
    pub fn validation_points(self) -> usize {
        match self {
            Self::Quick => 12,
            Self::Accurate => 60,
        }
    }

    /// Reference-grid shape for the historical learning stage.
    pub fn learning_grid(self) -> (usize, usize, usize) {
        match self {
            Self::Quick => (3, 3, 2),
            Self::Accurate => (4, 4, 3),
        }
    }

    /// Transient solver settings.
    pub fn transient(self) -> TransientConfig {
        match self {
            Self::Quick => TransientConfig::fast(),
            Self::Accurate => TransientConfig::accurate(),
        }
    }

    /// Liberty table grid.
    pub fn export_grid(self) -> ExportGrid {
        match self {
            Self::Quick => ExportGrid {
                slew_levels: 3,
                load_levels: 3,
            },
            Self::Accurate => ExportGrid {
                slew_levels: 5,
                load_levels: 5,
            },
        }
    }

    /// Monte Carlo process seeds per variation work unit (when variation is enabled).
    pub fn process_seeds(self) -> usize {
        match self {
            Self::Quick => 12,
            Self::Accurate => 100,
        }
    }
}

/// A run configuration as written by the user.  Every field is optional; unset fields take
/// the defaults documented on [`RunConfig::resolve`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Built-in library name: `"paper-trio"` (default) or `"standard"`.
    pub library: Option<String>,
    /// Target technology name (see `TechnologyNode::by_name`); default `"target_14nm"`.
    pub technology: Option<String>,
    /// Historical technology names for the learning stage; default
    /// `["n16_finfet", "n14_finfet"]`.
    pub historical: Option<Vec<String>>,
    /// Profile name: `"quick"` (default) or `"accurate"`.
    pub profile: Option<String>,
    /// Cell-kind glob filter (`*`/`?`, case-insensitive), e.g. `"NAND*"`.
    pub cell_pattern: Option<String>,
    /// Drive-strength filter, e.g. `["X1"]`.
    pub drives: Option<Vec<String>>,
    /// Metrics to characterize: `"delay"` and/or `"slew"`; default both.
    pub metrics: Option<Vec<String>>,
    /// Extraction methods per unit: `"bayesian"` (default), `"lse"`, `"lut"`.
    pub methods: Option<Vec<String>>,
    /// Override of the profile's per-unit training-condition count.
    pub training_count: Option<usize>,
    /// Override of the profile's per-unit validation-point count.
    pub validation_points: Option<usize>,
    /// RNG seed for training/validation sampling; default `20150313`.
    pub seed: Option<u64>,
    /// Path of a persistent (JSON-lines) simulation cache shared by shard workers and
    /// reruns; created on first use.  Unset = a fresh in-memory cache per run.
    pub cache: Option<String>,
    /// Simulation backend: `"local"` (default) or `"farm"`.  Unset with `workers` or
    /// `spawn_workers` given implies `"farm"`.
    pub backend: Option<String>,
    /// TCP addresses of running `slic worker --listen` processes for the farm backend.
    pub workers: Option<Vec<String>>,
    /// Number of local subprocess workers the farm backend spawns (the zero-config
    /// multi-process mode: `slic characterize --spawn-workers N`).
    pub spawn_workers: Option<usize>,
    /// Monte Carlo variation knobs.  The presence of this section (or the `--variation`
    /// CLI flag) enables variation work units; unset fields take profile defaults.
    pub variation: Option<VariationKnobs>,
    /// Transient-kernel knobs.  In flat TOML these are the dotted `kernel.*` keys
    /// (`kernel.simd = true`).
    pub kernel: Option<KernelKnobs>,
    /// Farm resilience knobs.  In flat TOML these are the dotted `farm.*` keys
    /// (`farm.retry_budget = 3`).  Only meaningful with the farm backend.
    pub farm: Option<FarmKnobs>,
    /// Observability knobs.  In flat TOML these are the dotted `observability.*` keys
    /// (`observability.trace = "run.jsonl"`).  Display-only: tracing never changes an
    /// artifact byte.
    pub observability: Option<ObservabilityKnobs>,
}

/// User-facing Monte Carlo variation knobs, every field optional.  In flat TOML these are
/// the dotted `variation.*` keys (`variation.process_seeds = 100`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VariationKnobs {
    /// Monte Carlo process seeds per variation unit; default from the profile
    /// ([`RunProfile::process_seeds`]).
    pub process_seeds: Option<usize>,
    /// Sigma multipliers for corner reporting; default `[1.0, 3.0]`.
    pub sigma_corners: Option<Vec<f64>>,
}

/// User-facing transient-kernel knobs, every field optional.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelKnobs {
    /// Route batched lanes through the SIMD quad kernel (default `false`).  Off, runs
    /// are bitwise identical to the scalar batched kernel; on, delays may differ from
    /// the scalar path by up to the CI-gated 0.5% accuracy envelope in exchange for the
    /// benched speedup.
    pub simd: Option<bool>,
}

/// User-facing observability knobs, every field optional.  In flat TOML these are the
/// dotted `observability.*` keys (`observability.trace = "run.jsonl"`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObservabilityKnobs {
    /// Sidecar JSON-lines trace file the run writes span/event records to; unset = no
    /// tracing.  Equivalent to the `--trace` CLI flag (the flag wins when both are set).
    pub trace: Option<String>,
    /// Append-only cross-run ledger file (`runs.jsonl`) the run appends one
    /// `RunRecord` line to; unset = no ledger.  Equivalent to the `--ledger` CLI flag.
    pub ledger: Option<String>,
    /// Force the live stderr progress line even when stderr is not a TTY (the CLI
    /// enables it automatically on a TTY).  Equivalent to the `--progress` CLI switch.
    pub progress: Option<bool>,
    /// Regression-diff thresholds for `slic history --diff` / `slic profile --diff`.
    pub diff: Option<DiffKnobs>,
}

/// User-facing regression-diff thresholds, every field optional.  In flat TOML these
/// are the dotted `observability.diff.*` keys (`observability.diff.wall_pct = 50.0`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DiffKnobs {
    /// Maximum tolerated wall-time increase, percent (default 50 — wall is noisy).
    pub wall_pct: Option<f64>,
    /// Maximum tolerated increase of gated counters, percent (default 10 —
    /// deterministic counters of a fixed seed reproduce exactly).
    pub counter_pct: Option<f64>,
    /// Maximum tolerated cache-hit-rate drop, percentage points (default 5).
    pub hit_rate_drop_pct: Option<f64>,
}

impl DiffKnobs {
    /// Applies defaults, yielding the thresholds the diff surfaces consume.
    pub fn resolve(&self) -> slic_obs::DiffThresholds {
        let defaults = slic_obs::DiffThresholds::default();
        slic_obs::DiffThresholds {
            wall_pct: self.wall_pct.unwrap_or(defaults.wall_pct),
            counter_pct: self.counter_pct.unwrap_or(defaults.counter_pct),
            hit_rate_drop_pct: self.hit_rate_drop_pct.unwrap_or(defaults.hit_rate_drop_pct),
        }
    }
}

/// User-facing farm resilience knobs, every field optional.  In flat TOML these are the
/// dotted `farm.*` keys (`farm.retry_budget = 3`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FarmKnobs {
    /// Dispatch attempts per job before it degrades to the broker's local fallback;
    /// default = the fleet size (every worker gets one shot).  Must be at least 1.
    pub retry_budget: Option<usize>,
    /// Re-dials per reconnect campaign before a dead worker is retired for the run;
    /// default 4.  `0` means a dead worker stays dead.
    pub reconnect_attempts: Option<u32>,
    /// First-attempt ceiling of the re-dial backoff schedule, in milliseconds
    /// (default 50).
    pub backoff_base_ms: Option<u64>,
    /// Hard ceiling of any single re-dial delay, in milliseconds (default 2000).
    pub backoff_cap_ms: Option<u64>,
    /// Probe TCP workers with a `ping`/`pong` heartbeat before dispatch (default true).
    pub heartbeat: Option<bool>,
    /// Read deadline for one heartbeat round trip, in milliseconds (default 5000).
    pub heartbeat_timeout_ms: Option<u64>,
}

/// Resolved farm resilience tuning — the pipeline-side mirror of `slic_farm::FarmTuning`
/// (this crate does not depend on `slic-farm`; the CLI maps the fields across when it
/// builds the fleet).  The backoff seed is derived from the run seed, so re-dial
/// schedules are replayable per run without ever touching an artifact byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FarmResilience {
    /// Dispatch attempts per job; `None` = fleet size.
    pub retry_budget: Option<usize>,
    /// Re-dials per reconnect campaign before a worker is retired.
    pub reconnect_attempts: u32,
    /// First-attempt backoff ceiling, milliseconds.
    pub backoff_base_ms: u64,
    /// Hard backoff ceiling, milliseconds.
    pub backoff_cap_ms: u64,
    /// Jitter seed of the re-dial schedule (run seed ⊕ salt).
    pub backoff_seed: u64,
    /// Whether workers are heartbeat-probed before dispatch.
    pub heartbeat: bool,
    /// Heartbeat round-trip deadline, milliseconds.
    pub heartbeat_timeout_ms: u64,
}

/// Where the run's transient simulations execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendChoice {
    /// In-process batched kernel (the default).
    Local,
    /// The `slic-farm` worker fleet.
    Farm {
        /// TCP worker addresses to connect to.
        workers: Vec<String>,
        /// Subprocess workers to spawn in addition.
        spawn_workers: usize,
        /// Resilience knobs for the fleet.
        tuning: FarmResilience,
    },
}

/// Every key a run-config file may set.  Parsing rejects anything else: the derived
/// deserializer silently skips unknown fields, and a typo'd knob falling back to its
/// default is the worst kind of misconfiguration (the flags side has always had this
/// strictness via the CLI's flag allowlist).
const KNOWN_CONFIG_KEYS: &[&str] = &[
    "library",
    "technology",
    "historical",
    "profile",
    "cell_pattern",
    "drives",
    "metrics",
    "methods",
    "training_count",
    "validation_points",
    "seed",
    "cache",
    "backend",
    "workers",
    "spawn_workers",
    "variation",
    "kernel",
    "farm",
    "observability",
];

/// Every key of the nested `variation` section.
const KNOWN_VARIATION_KEYS: &[&str] = &["process_seeds", "sigma_corners"];

/// Every key of the nested `kernel` section.
const KNOWN_KERNEL_KEYS: &[&str] = &["simd"];

/// Every key of the nested `observability` section.
const KNOWN_OBSERVABILITY_KEYS: &[&str] = &["trace", "ledger", "progress", "diff"];

/// Every key of the nested `observability.diff` section.
const KNOWN_DIFF_KEYS: &[&str] = &["wall_pct", "counter_pct", "hit_rate_drop_pct"];

/// Every key of the nested `farm` section.
const KNOWN_FARM_KEYS: &[&str] = &[
    "retry_budget",
    "reconnect_attempts",
    "backoff_base_ms",
    "backoff_cap_ms",
    "heartbeat",
    "heartbeat_timeout_ms",
];

/// Rejects unknown top-level, `variation.*` and `kernel.*` keys with a pointed error.
fn check_config_keys(value: &serde::Value) -> Result<(), PipelineError> {
    let Some(entries) = value.as_object() else {
        return Ok(()); // A non-object config fails shape-checking with its own error.
    };
    let listing = |keys: &[&str], prefix: &str| -> String {
        keys.iter()
            .map(|k| format!("{prefix}{k}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    for (key, sub) in entries {
        if !KNOWN_CONFIG_KEYS.contains(&key.as_str()) {
            return Err(PipelineError::config(format!(
                "unknown config key `{key}` (expected one of: {})",
                listing(KNOWN_CONFIG_KEYS, "")
            )));
        }
        let nested = match key.as_str() {
            "variation" => Some(("variation", KNOWN_VARIATION_KEYS)),
            "kernel" => Some(("kernel", KNOWN_KERNEL_KEYS)),
            "farm" => Some(("farm", KNOWN_FARM_KEYS)),
            "observability" => Some(("observability", KNOWN_OBSERVABILITY_KEYS)),
            _ => None,
        };
        if let Some((section, known)) = nested {
            if let Some(inner) = sub.as_object() {
                for (sub_key, sub_value) in inner {
                    if !known.contains(&sub_key.as_str()) {
                        return Err(PipelineError::config(format!(
                            "unknown config key `{section}.{sub_key}` (expected one of: {})",
                            listing(known, &format!("{section}."))
                        )));
                    }
                    // One more level: the diff thresholds nest under observability.
                    if section == "observability" && sub_key == "diff" {
                        if let Some(diff_entries) = sub_value.as_object() {
                            for (diff_key, _) in diff_entries {
                                if !KNOWN_DIFF_KEYS.contains(&diff_key.as_str()) {
                                    return Err(PipelineError::config(format!(
                                        "unknown config key `observability.diff.{diff_key}` \
                                         (expected one of: {})",
                                        listing(KNOWN_DIFF_KEYS, "observability.diff.")
                                    )));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

impl RunConfig {
    /// Parses a configuration from JSON text.  Unknown keys — top-level or inside
    /// `variation` — are rejected rather than silently ignored.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError::Serde`] on malformed JSON or mismatched shapes, and a
    /// [`PipelineError::Config`] naming any unknown key.
    pub fn from_json(text: &str) -> Result<Self, PipelineError> {
        let value: serde::Value = serde_json::from_str(text)?;
        check_config_keys(&value)?;
        Ok(<Self as Deserialize>::from_value(&value)?)
    }

    /// Parses a configuration from flat-TOML text (see [`crate::toml`]).  Unknown keys —
    /// top-level or dotted `variation.*` — are rejected rather than silently ignored.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError::Config`] on TOML syntax errors or unknown keys and a
    /// [`PipelineError::Serde`] on mismatched shapes.
    pub fn from_toml(text: &str) -> Result<Self, PipelineError> {
        let value = toml::parse(text)?;
        check_config_keys(&value)?;
        Ok(<Self as Deserialize>::from_value(&value)?)
    }

    /// Loads a configuration file, dispatching on the `.json` / `.toml` extension.
    ///
    /// # Errors
    ///
    /// Returns an error for unreadable files, unknown extensions or malformed content.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PipelineError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)?;
        match path.extension().and_then(|e| e.to_str()) {
            Some("json") => Self::from_json(&text),
            Some("toml") => Self::from_toml(&text),
            other => Err(PipelineError::config(format!(
                "cannot infer config format of `{}` (extension {:?}); use .json or .toml",
                path.display(),
                other
            ))),
        }
    }

    /// Applies defaults and resolves every name into concrete catalogue objects.
    ///
    /// Defaults: `paper-trio` library, `target_14nm` technology, the two FinFET
    /// historical nodes, the `quick` profile, both metrics, the Bayesian method, seed
    /// `20150313`, no cell/drive filters.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError::Config`] naming any unknown library, technology, metric,
    /// method, profile or drive strength, or a filter selection that leaves no cells.
    pub fn resolve(&self) -> Result<ResolvedConfig, PipelineError> {
        let library_name = self.library.as_deref().unwrap_or("paper-trio");
        let mut library = Library::builtin(library_name).ok_or_else(|| {
            PipelineError::config(format!(
                "unknown library `{library_name}` (expected `paper-trio` or `standard`)"
            ))
        })?;
        if let Some(pattern) = &self.cell_pattern {
            library = library.filter_kinds(pattern);
        }
        if let Some(drives) = &self.drives {
            let parsed: Vec<DriveStrength> = drives
                .iter()
                .map(|d| {
                    DriveStrength::from_name(d).ok_or_else(|| {
                        PipelineError::config(format!("unknown drive strength `{d}`"))
                    })
                })
                .collect::<Result<_, _>>()?;
            library = library.filter_drives(&parsed);
        }
        if library.is_empty() {
            return Err(PipelineError::config(format!(
                "cell selection is empty: library `{library_name}`, pattern {:?}, drives {:?}",
                self.cell_pattern, self.drives
            )));
        }

        let technology_name = self.technology.as_deref().unwrap_or("target_14nm");
        let technology = TechnologyNode::by_name(technology_name).ok_or_else(|| {
            PipelineError::config(format!("unknown technology `{technology_name}`"))
        })?;

        let historical_names: Vec<String> = self
            .historical
            .clone()
            .unwrap_or_else(|| vec!["n16_finfet".to_string(), "n14_finfet".to_string()]);
        let historical: Vec<TechnologyNode> = historical_names
            .iter()
            .map(|name| {
                TechnologyNode::by_name(name).ok_or_else(|| {
                    PipelineError::config(format!("unknown historical technology `{name}`"))
                })
            })
            .collect::<Result<_, _>>()?;
        if historical.is_empty() {
            return Err(PipelineError::config("historical technology list is empty"));
        }

        let profile_name = self.profile.as_deref().unwrap_or("quick");
        let profile = RunProfile::from_name(profile_name).ok_or_else(|| {
            PipelineError::config(format!(
                "unknown profile `{profile_name}` (expected `quick` or `accurate`)"
            ))
        })?;

        let metrics = match &self.metrics {
            None => vec![TimingMetric::Delay, TimingMetric::OutputSlew],
            Some(names) => names
                .iter()
                .map(|name| match name.to_ascii_lowercase().as_str() {
                    "delay" => Ok(TimingMetric::Delay),
                    "slew" | "output-slew" | "output_slew" => Ok(TimingMetric::OutputSlew),
                    other => Err(PipelineError::config(format!("unknown metric `{other}`"))),
                })
                .collect::<Result<_, _>>()?,
        };
        if metrics.is_empty() {
            return Err(PipelineError::config("metric list is empty"));
        }

        let methods = match &self.methods {
            None => vec![MethodKind::ProposedBayesian],
            Some(names) => names
                .iter()
                .map(|name| match name.to_ascii_lowercase().as_str() {
                    "bayesian" | "map" => Ok(MethodKind::ProposedBayesian),
                    "lse" | "least-squares" | "least_squares" => Ok(MethodKind::ProposedLse),
                    "lut" | "table" => Ok(MethodKind::Lut),
                    other => Err(PipelineError::config(format!("unknown method `{other}`"))),
                })
                .collect::<Result<_, _>>()?,
        };
        if methods.is_empty() {
            return Err(PipelineError::config("method list is empty"));
        }

        let seed = self.seed.unwrap_or(20150313);
        let tuning = {
            let knobs = self.farm.clone().unwrap_or_default();
            if knobs.retry_budget == Some(0) {
                return Err(PipelineError::config(
                    "`farm.retry_budget` must be at least 1 (every job needs one dispatch \
                     attempt before it can degrade to the local fallback)",
                ));
            }
            FarmResilience {
                retry_budget: knobs.retry_budget,
                reconnect_attempts: knobs.reconnect_attempts.unwrap_or(4),
                backoff_base_ms: knobs.backoff_base_ms.unwrap_or(50),
                backoff_cap_ms: knobs.backoff_cap_ms.unwrap_or(2_000),
                backoff_seed: seed ^ FARM_SEED_SALT,
                heartbeat: knobs.heartbeat.unwrap_or(true),
                heartbeat_timeout_ms: knobs.heartbeat_timeout_ms.unwrap_or(5_000),
            }
        };
        let workers = self.workers.clone().unwrap_or_default();
        let spawn_workers = self.spawn_workers.unwrap_or(0);
        let backend = match self.backend.as_deref() {
            Some("local") => {
                if !workers.is_empty() || spawn_workers > 0 {
                    return Err(PipelineError::config(
                        "backend is `local` but farm workers are configured; drop \
                         `workers`/`spawn_workers` or set `backend = \"farm\"`",
                    ));
                }
                BackendChoice::Local
            }
            Some("farm") => {
                if workers.is_empty() && spawn_workers == 0 {
                    return Err(PipelineError::config(
                        "the farm backend needs `workers` addresses and/or a \
                         `spawn_workers` count",
                    ));
                }
                BackendChoice::Farm {
                    workers,
                    spawn_workers,
                    tuning,
                }
            }
            // Farm knobs without an explicit backend name imply the farm.
            None if !workers.is_empty() || spawn_workers > 0 => BackendChoice::Farm {
                workers,
                spawn_workers,
                tuning,
            },
            None => BackendChoice::Local,
            Some(other) => {
                return Err(PipelineError::config(format!(
                    "unknown backend `{other}` (expected `local` or `farm`)"
                )));
            }
        };
        if self.farm.is_some() && !matches!(backend, BackendChoice::Farm { .. }) {
            return Err(PipelineError::config(
                "`farm.*` knobs apply to the farm backend only; configure `workers` / \
                 `spawn_workers` or drop the farm section",
            ));
        }

        let simd = self.kernel.as_ref().and_then(|k| k.simd).unwrap_or(false);
        if simd && !matches!(backend, BackendChoice::Local) {
            return Err(PipelineError::config(
                "`kernel.simd` applies to the local backend only; farm workers run \
                 their own kernels — drop `kernel.simd` or the farm configuration",
            ));
        }

        let variation = match &self.variation {
            None => None,
            Some(knobs) => {
                let resolved = VariationConfig {
                    process_seeds: knobs
                        .process_seeds
                        .unwrap_or_else(|| profile.process_seeds()),
                    sigma_corners: knobs
                        .sigma_corners
                        .clone()
                        .unwrap_or_else(|| vec![1.0, 3.0]),
                    seed: seed ^ VARIATION_SEED_SALT,
                };
                resolved
                    .validate()
                    .map_err(|err| PipelineError::config(err.to_string()))?;
                Some(resolved)
            }
        };

        Ok(ResolvedConfig {
            library_name: library_name.to_string(),
            library,
            technology,
            historical,
            profile,
            metrics,
            methods,
            training_count: self
                .training_count
                .unwrap_or_else(|| profile.training_count())
                .max(1),
            validation_points: self
                .validation_points
                .unwrap_or_else(|| profile.validation_points())
                .max(2),
            transient: profile.transient(),
            export_grid: profile.export_grid(),
            seed,
            cache_path: self.cache.clone().map(std::path::PathBuf::from),
            backend,
            variation,
            simd,
            trace_path: self
                .observability
                .as_ref()
                .and_then(|knobs| knobs.trace.clone())
                .map(std::path::PathBuf::from),
            ledger_path: self
                .observability
                .as_ref()
                .and_then(|knobs| knobs.ledger.clone())
                .map(std::path::PathBuf::from),
            progress: self
                .observability
                .as_ref()
                .and_then(|knobs| knobs.progress)
                .unwrap_or(false),
            diff: self
                .observability
                .as_ref()
                .and_then(|knobs| knobs.diff.as_ref())
                .map(DiffKnobs::resolve)
                .unwrap_or_default(),
        })
    }
}

/// A fully resolved run description: every name looked up, every default applied.
#[derive(Debug, Clone)]
pub struct ResolvedConfig {
    /// The configured library name (before filtering).
    pub library_name: String,
    /// The filtered cell selection.
    pub library: Library,
    /// The characterization target.
    pub technology: TechnologyNode,
    /// Historical nodes for the learning stage.
    pub historical: Vec<TechnologyNode>,
    /// The accuracy/cost profile.
    pub profile: RunProfile,
    /// Metrics each arc is characterized for.
    pub metrics: Vec<TimingMetric>,
    /// Extraction methods each (arc, metric) runs.
    pub methods: Vec<MethodKind>,
    /// Training conditions per work unit.
    pub training_count: usize,
    /// Validation conditions per work unit.
    pub validation_points: usize,
    /// Transient solver settings for every stage.
    pub transient: TransientConfig,
    /// Liberty table grid.
    pub export_grid: ExportGrid,
    /// RNG seed.
    pub seed: u64,
    /// Persistent simulation-cache file, when configured.
    pub cache_path: Option<std::path::PathBuf>,
    /// Where transient simulations execute.
    pub backend: BackendChoice,
    /// Monte Carlo variation workload, when enabled.  The seed set and sigma corners are
    /// part of this configuration, so equal resolved configs on any shard draw identical
    /// process samples.
    pub variation: Option<VariationConfig>,
    /// Whether the local backend routes batched lanes through the SIMD quad kernel.
    /// Deliberately *not* part of [`TransientConfig`]: it changes how lanes execute, not
    /// what a simulation means, so cache keys and farm wire hashes must not move with it.
    pub simd: bool,
    /// Sidecar JSON-lines trace file, when tracing is enabled.  Display-only: whether a
    /// run is traced never changes an artifact byte (CI `cmp`-gates this).
    pub trace_path: Option<std::path::PathBuf>,
    /// Append-only cross-run ledger file, when enabled.  Display-only, same contract
    /// as tracing.
    pub ledger_path: Option<std::path::PathBuf>,
    /// Whether the stderr progress line is forced on (the CLI also turns it on when
    /// stderr is a TTY).
    pub progress: bool,
    /// Regression-diff thresholds (`observability.diff.*` with defaults applied).
    pub diff: slic_obs::DiffThresholds,
}

impl ResolvedConfig {
    /// The run's configuration identity: a 16-hex-digit hash over everything that
    /// determines *what* is computed — cells, technology nodes, profile, metrics,
    /// methods, budgets, seed, variation workload, kernel routing.
    ///
    /// Execution placement is deliberately excluded (backend, worker lists, cache /
    /// trace / ledger paths, farm tuning): artifacts are byte-identical across
    /// backends, so a local run and a farmed run of one config share a fingerprint —
    /// which is exactly what lets `slic history` diff them against each other.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut identity = String::with_capacity(256);
        let _ = write!(identity, "library={};", self.library_name);
        for cell in self.library.cells() {
            let _ = write!(identity, "cell={};", cell.name());
        }
        let _ = write!(identity, "technology={};", self.technology.name());
        for node in &self.historical {
            let _ = write!(identity, "historical={};", node.name());
        }
        let _ = write!(
            identity,
            "profile={};metrics={:?};methods={:?};training={};validation={};seed={};simd={};",
            self.profile.name(),
            self.metrics,
            self.methods,
            self.training_count,
            self.validation_points,
            self.seed,
            self.simd,
        );
        if let Some(variation) = &self.variation {
            let _ = write!(
                identity,
                "variation.seeds={};variation.seed={};",
                variation.process_seeds, variation.seed
            );
            for corner in &variation.sigma_corners {
                // Bit-exact: two configs differing in any corner hash apart.
                let _ = write!(identity, "corner={:016x};", corner.to_bits());
            }
        }
        slic_obs::ledger::content_hash(identity.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_resolve_to_the_paper_setup() {
        let resolved = RunConfig::default().resolve().unwrap();
        assert_eq!(resolved.library.len(), 3);
        assert_eq!(resolved.technology.name(), "target-14nm-finfet");
        assert_eq!(resolved.historical.len(), 2);
        assert_eq!(resolved.profile, RunProfile::Quick);
        assert_eq!(resolved.metrics.len(), 2);
        assert_eq!(resolved.methods, vec![MethodKind::ProposedBayesian]);
        assert_eq!(resolved.seed, 20150313);
        assert!(resolved.training_count >= 1);
    }

    #[test]
    fn json_and_toml_configs_agree() {
        let json = r#"{
            "library": "standard",
            "profile": "quick",
            "cell_pattern": "NAND*",
            "drives": ["X1"],
            "metrics": ["delay"],
            "methods": ["bayesian", "lse"],
            "seed": 7
        }"#;
        let toml_text = r#"
            library = "standard"
            profile = "quick"
            cell_pattern = "NAND*"
            drives = ["X1"]
            metrics = ["delay"]
            methods = ["bayesian", "lse"]
            seed = 7
        "#;
        let a = RunConfig::from_json(json).unwrap();
        let b = RunConfig::from_toml(toml_text).unwrap();
        assert_eq!(a, b);
        let resolved = a.resolve().unwrap();
        assert_eq!(resolved.library.len(), 2, "NAND2_X1 and NAND3_X1");
        assert_eq!(resolved.metrics, vec![TimingMetric::Delay]);
        assert_eq!(resolved.methods.len(), 2);
        assert_eq!(resolved.seed, 7);
    }

    #[test]
    fn config_round_trips_through_json() {
        let config = RunConfig {
            library: Some("standard".into()),
            cell_pattern: Some("NOR*".into()),
            seed: Some(11),
            ..RunConfig::default()
        };
        let text = serde_json::to_string_pretty(&config).unwrap();
        let back = RunConfig::from_json(&text).unwrap();
        assert_eq!(config, back);
    }

    #[test]
    fn unknown_names_are_rejected_with_context() {
        let bad = |cfg: RunConfig| cfg.resolve().unwrap_err().to_string();
        assert!(bad(RunConfig {
            library: Some("nope".into()),
            ..Default::default()
        })
        .contains("unknown library"));
        assert!(bad(RunConfig {
            technology: Some("n3".into()),
            ..Default::default()
        })
        .contains("unknown technology"));
        assert!(bad(RunConfig {
            profile: Some("turbo".into()),
            ..Default::default()
        })
        .contains("unknown profile"));
        assert!(bad(RunConfig {
            metrics: Some(vec!["power".into()]),
            ..Default::default()
        })
        .contains("unknown metric"));
        assert!(bad(RunConfig {
            methods: Some(vec!["oracle".into()]),
            ..Default::default()
        })
        .contains("unknown method"));
        assert!(bad(RunConfig {
            drives: Some(vec!["X8".into()]),
            ..Default::default()
        })
        .contains("unknown drive"));
        assert!(bad(RunConfig {
            cell_pattern: Some("XYZ*".into()),
            ..Default::default()
        })
        .contains("selection is empty"));
    }

    /// The resolved resilience defaults for a given run seed.
    fn default_tuning(seed: u64) -> FarmResilience {
        FarmResilience {
            retry_budget: None,
            reconnect_attempts: 4,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
            backoff_seed: seed ^ FARM_SEED_SALT,
            heartbeat: true,
            heartbeat_timeout_ms: 5_000,
        }
    }

    #[test]
    fn backend_resolution_covers_local_farm_and_inference() {
        assert_eq!(
            RunConfig::default().resolve().unwrap().backend,
            BackendChoice::Local
        );
        let explicit = RunConfig {
            backend: Some("farm".into()),
            workers: Some(vec!["10.0.0.5:9200".into()]),
            spawn_workers: Some(2),
            ..Default::default()
        };
        assert_eq!(
            explicit.resolve().unwrap().backend,
            BackendChoice::Farm {
                workers: vec!["10.0.0.5:9200".into()],
                spawn_workers: 2,
                tuning: default_tuning(20150313),
            }
        );
        // Farm knobs alone imply the farm backend.
        let implied = RunConfig {
            spawn_workers: Some(3),
            ..Default::default()
        };
        assert_eq!(
            implied.resolve().unwrap().backend,
            BackendChoice::Farm {
                workers: vec![],
                spawn_workers: 3,
                tuning: default_tuning(20150313),
            }
        );
        let bad = |cfg: RunConfig| cfg.resolve().unwrap_err().to_string();
        assert!(bad(RunConfig {
            backend: Some("cloud".into()),
            ..Default::default()
        })
        .contains("unknown backend"));
        assert!(bad(RunConfig {
            backend: Some("farm".into()),
            ..Default::default()
        })
        .contains("needs `workers`"));
        assert!(bad(RunConfig {
            backend: Some("local".into()),
            spawn_workers: Some(2),
            ..Default::default()
        })
        .contains("farm workers are configured"));
    }

    #[test]
    fn farm_config_round_trips_through_json_and_toml() {
        let json = r#"{"backend": "farm", "workers": ["a:1", "b:2"], "spawn_workers": 2}"#;
        let toml_text = "
            backend = \"farm\"
            workers = [\"a:1\", \"b:2\"]
            spawn_workers = 2
        ";
        let a = RunConfig::from_json(json).unwrap();
        let b = RunConfig::from_toml(toml_text).unwrap();
        assert_eq!(a, b);
        let text = serde_json::to_string(&a).unwrap();
        assert_eq!(RunConfig::from_json(&text).unwrap(), a);
    }

    #[test]
    fn variation_resolution_applies_profile_defaults_and_validates() {
        assert!(RunConfig::default().resolve().unwrap().variation.is_none());
        let enabled = RunConfig {
            variation: Some(VariationKnobs::default()),
            ..Default::default()
        }
        .resolve()
        .unwrap();
        let variation = enabled.variation.expect("variation resolved");
        assert_eq!(variation.process_seeds, RunProfile::Quick.process_seeds());
        assert_eq!(variation.sigma_corners, vec![1.0, 3.0]);
        assert_ne!(
            variation.seed, enabled.seed,
            "the Monte Carlo draw must not reuse the sampling seed stream"
        );
        let custom = RunConfig {
            variation: Some(VariationKnobs {
                process_seeds: Some(40),
                sigma_corners: Some(vec![2.0]),
            }),
            ..Default::default()
        }
        .resolve()
        .unwrap()
        .variation
        .unwrap();
        assert_eq!(custom.process_seeds, 40);
        assert_eq!(custom.sigma_corners, vec![2.0]);
        let bad = RunConfig {
            variation: Some(VariationKnobs {
                process_seeds: Some(2),
                sigma_corners: None,
            }),
            ..Default::default()
        };
        assert!(bad
            .resolve()
            .unwrap_err()
            .to_string()
            .contains("at least 3"));
    }

    #[test]
    fn variation_config_parses_from_json_and_dotted_toml() {
        let json = r#"{"variation": {"process_seeds": 30, "sigma_corners": [1.0, 3.0]}}"#;
        let toml_text = "
            variation.process_seeds = 30
            variation.sigma_corners = [1.0, 3.0]
        ";
        let a = RunConfig::from_json(json).unwrap();
        let b = RunConfig::from_toml(toml_text).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a.variation,
            Some(VariationKnobs {
                process_seeds: Some(30),
                sigma_corners: Some(vec![1.0, 3.0]),
            })
        );
        // And the full config round-trips through JSON.
        let text = serde_json::to_string(&a).unwrap();
        assert_eq!(RunConfig::from_json(&text).unwrap(), a);
    }

    #[test]
    fn unknown_config_keys_are_rejected_not_ignored() {
        // The classic typo the strictness exists for: `variation.seeds` instead of
        // `variation.process_seeds` must fail loudly, not run with the default count.
        let err = RunConfig::from_toml("variation.seeds = 30").unwrap_err();
        assert!(
            err.to_string()
                .contains("unknown config key `variation.seeds`"),
            "{err}"
        );
        assert!(err.to_string().contains("variation.process_seeds"), "{err}");
        let err = RunConfig::from_json(r#"{"variation": {"sigma": [3.0]}}"#).unwrap_err();
        assert!(err.to_string().contains("`variation.sigma`"), "{err}");
        // Top-level typos get the same treatment in both formats.
        let err = RunConfig::from_toml("cach = \"warm.jsonl\"").unwrap_err();
        assert!(
            err.to_string().contains("unknown config key `cach`"),
            "{err}"
        );
        let err = RunConfig::from_json(r#"{"librray": "standard"}"#).unwrap_err();
        assert!(err.to_string().contains("`librray`"), "{err}");
    }

    #[test]
    fn kernel_config_parses_from_json_and_dotted_toml() {
        let json = r#"{"kernel": {"simd": true}}"#;
        let toml_text = "kernel.simd = true";
        let a = RunConfig::from_json(json).unwrap();
        let b = RunConfig::from_toml(toml_text).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.kernel, Some(KernelKnobs { simd: Some(true) }));
        assert!(a.resolve().unwrap().simd);
        // Absent section (or absent flag) resolves to the scalar default.
        assert!(!RunConfig::default().resolve().unwrap().simd);
        let off = RunConfig::from_toml("kernel.simd = false").unwrap();
        assert!(!off.resolve().unwrap().simd);
        // And the section round-trips through JSON.
        let text = serde_json::to_string(&a).unwrap();
        assert_eq!(RunConfig::from_json(&text).unwrap(), a);
    }

    #[test]
    fn unknown_kernel_keys_are_rejected_not_ignored() {
        let err = RunConfig::from_toml("kernel.simds = true").unwrap_err();
        assert!(
            err.to_string()
                .contains("unknown config key `kernel.simds`"),
            "{err}"
        );
        assert!(err.to_string().contains("kernel.simd"), "{err}");
        let err = RunConfig::from_json(r#"{"kernel": {"vectorize": true}}"#).unwrap_err();
        assert!(err.to_string().contains("`kernel.vectorize`"), "{err}");
    }

    #[test]
    fn simd_with_the_farm_backend_is_rejected() {
        let bad = RunConfig {
            kernel: Some(KernelKnobs { simd: Some(true) }),
            spawn_workers: Some(2),
            ..Default::default()
        };
        let err = bad.resolve().unwrap_err().to_string();
        assert!(err.contains("local backend only"), "{err}");
        // simd = false alongside the farm is fine: nothing was requested.
        let ok = RunConfig {
            kernel: Some(KernelKnobs { simd: Some(false) }),
            spawn_workers: Some(2),
            ..Default::default()
        };
        assert!(!ok.resolve().unwrap().simd);
    }

    #[test]
    fn farm_knobs_parse_from_json_and_dotted_toml_and_resolve() {
        let json = r#"{
            "spawn_workers": 2,
            "farm": {"retry_budget": 3, "backoff_base_ms": 10, "heartbeat": false}
        }"#;
        let toml_text = "
            spawn_workers = 2
            farm.retry_budget = 3
            farm.backoff_base_ms = 10
            farm.heartbeat = false
        ";
        let a = RunConfig::from_json(json).unwrap();
        let b = RunConfig::from_toml(toml_text).unwrap();
        assert_eq!(a, b);
        let text = serde_json::to_string(&a).unwrap();
        assert_eq!(RunConfig::from_json(&text).unwrap(), a);
        let BackendChoice::Farm { tuning, .. } = a.resolve().unwrap().backend else {
            panic!("spawn_workers implies the farm backend");
        };
        assert_eq!(tuning.retry_budget, Some(3));
        assert_eq!(tuning.backoff_base_ms, 10);
        assert!(!tuning.heartbeat);
        // Unset knobs keep the broker defaults.
        assert_eq!(tuning.reconnect_attempts, 4);
        assert_eq!(tuning.backoff_cap_ms, 2_000);
        assert_eq!(tuning.heartbeat_timeout_ms, 5_000);
    }

    #[test]
    fn farm_backoff_seed_is_derived_from_the_run_seed() {
        let with_seed = |seed: u64| {
            let config = RunConfig {
                spawn_workers: Some(1),
                seed: Some(seed),
                ..Default::default()
            };
            let BackendChoice::Farm { tuning, .. } = config.resolve().unwrap().backend else {
                panic!("farm backend expected");
            };
            tuning.backoff_seed
        };
        assert_eq!(with_seed(7), with_seed(7), "deterministic per run seed");
        assert_ne!(with_seed(7), with_seed(8), "different runs re-jitter");
        assert_ne!(with_seed(7), 7, "the raw seed is never reused verbatim");
    }

    #[test]
    fn farm_knobs_outside_the_farm_backend_are_rejected() {
        let bad = |cfg: RunConfig| cfg.resolve().unwrap_err().to_string();
        let err = bad(RunConfig {
            farm: Some(FarmKnobs {
                retry_budget: Some(3),
                ..FarmKnobs::default()
            }),
            ..Default::default()
        });
        assert!(err.contains("farm backend only"), "{err}");
        let err = bad(RunConfig {
            spawn_workers: Some(2),
            farm: Some(FarmKnobs {
                retry_budget: Some(0),
                ..FarmKnobs::default()
            }),
            ..Default::default()
        });
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn unknown_farm_keys_are_rejected_not_ignored() {
        let err = RunConfig::from_toml("farm.retries = 3").unwrap_err();
        assert!(
            err.to_string()
                .contains("unknown config key `farm.retries`"),
            "{err}"
        );
        assert!(err.to_string().contains("farm.retry_budget"), "{err}");
        let err = RunConfig::from_json(r#"{"farm": {"backoff": 50}}"#).unwrap_err();
        assert!(err.to_string().contains("`farm.backoff`"), "{err}");
    }

    #[test]
    fn observability_config_parses_from_json_and_dotted_toml() {
        let json = r#"{"observability": {
            "trace": "run.jsonl",
            "ledger": "runs.jsonl",
            "progress": true,
            "diff": {"wall_pct": 25.0}
        }}"#;
        let toml_text = "observability.trace = \"run.jsonl\"\n\
                         observability.ledger = \"runs.jsonl\"\n\
                         observability.progress = true\n\
                         observability.diff.wall_pct = 25.0";
        let a = RunConfig::from_json(json).unwrap();
        let b = RunConfig::from_toml(toml_text).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a.observability,
            Some(ObservabilityKnobs {
                trace: Some("run.jsonl".to_string()),
                ledger: Some("runs.jsonl".to_string()),
                progress: Some(true),
                diff: Some(DiffKnobs {
                    wall_pct: Some(25.0),
                    ..DiffKnobs::default()
                }),
            })
        );
        let resolved = a.resolve().unwrap();
        assert_eq!(
            resolved.trace_path,
            Some(std::path::PathBuf::from("run.jsonl"))
        );
        assert_eq!(
            resolved.ledger_path,
            Some(std::path::PathBuf::from("runs.jsonl"))
        );
        assert!(resolved.progress);
        // Set thresholds stick; unset ones keep the defaults.
        let defaults = slic_obs::DiffThresholds::default();
        assert_eq!(resolved.diff.wall_pct, 25.0);
        assert_eq!(resolved.diff.counter_pct, defaults.counter_pct);
        assert_eq!(resolved.diff.hit_rate_drop_pct, defaults.hit_rate_drop_pct);
        // Absent section resolves to everything off and default thresholds.
        let bare = RunConfig::default().resolve().unwrap();
        assert!(bare.trace_path.is_none());
        assert!(bare.ledger_path.is_none());
        assert!(!bare.progress);
        assert_eq!(bare.diff, defaults);
        // And the section round-trips through JSON.
        let text = serde_json::to_string(&a).unwrap();
        assert_eq!(RunConfig::from_json(&text).unwrap(), a);
    }

    #[test]
    fn unknown_observability_keys_are_rejected_not_ignored() {
        let err = RunConfig::from_toml("observability.traec = \"run.jsonl\"").unwrap_err();
        assert!(
            err.to_string()
                .contains("unknown config key `observability.traec`"),
            "{err}"
        );
        assert!(err.to_string().contains("observability.trace"), "{err}");
        let err = RunConfig::from_json(r#"{"observability": {"metrics": true}}"#).unwrap_err();
        assert!(err.to_string().contains("`observability.metrics`"), "{err}");
        // The nested diff section is just as strict, one level further down.
        let err = RunConfig::from_toml("observability.diff.wall_percent = 10.0").unwrap_err();
        assert!(
            err.to_string()
                .contains("unknown config key `observability.diff.wall_percent`"),
            "{err}"
        );
        assert!(
            err.to_string().contains("observability.diff.wall_pct"),
            "{err}"
        );
    }

    #[test]
    fn fingerprint_tracks_workload_identity_not_placement() {
        let base = || RunConfig {
            seed: Some(7),
            ..RunConfig::default()
        };
        let fingerprint = |config: RunConfig| config.resolve().unwrap().fingerprint();
        let reference = fingerprint(base());
        assert_eq!(reference.len(), 16);
        assert_eq!(reference, fingerprint(base()), "deterministic");

        // What is computed moves the fingerprint...
        assert_ne!(
            reference,
            fingerprint(RunConfig {
                seed: Some(8),
                ..base()
            })
        );
        assert_ne!(
            reference,
            fingerprint(RunConfig {
                cell_pattern: Some("NAND*".into()),
                ..base()
            })
        );
        assert_ne!(
            reference,
            fingerprint(RunConfig {
                variation: Some(VariationKnobs {
                    process_seeds: Some(8),
                    sigma_corners: None,
                }),
                ..base()
            })
        );

        // ...but where it executes does not: a farmed run of the same workload keeps
        // the local fingerprint, so `slic history` can diff across backends.
        assert_eq!(
            reference,
            fingerprint(RunConfig {
                spawn_workers: Some(2),
                ..base()
            })
        );
        assert_eq!(
            reference,
            fingerprint(RunConfig {
                cache: Some("cache.jsonl".into()),
                observability: Some(ObservabilityKnobs {
                    trace: Some("run.jsonl".into()),
                    ledger: Some("runs.jsonl".into()),
                    ..ObservabilityKnobs::default()
                }),
                ..base()
            })
        );
    }

    #[test]
    fn profile_budgets_are_ordered() {
        assert!(RunProfile::Quick.training_count() < RunProfile::Accurate.training_count());
        assert!(RunProfile::Quick.validation_points() < RunProfile::Accurate.validation_points());
        assert_eq!(RunProfile::from_name("QUICK"), Some(RunProfile::Quick));
        assert_eq!(
            RunProfile::from_name("accurate").unwrap().name(),
            "accurate"
        );
        assert!(RunProfile::from_name("warp").is_none());
    }
}
