//! Univariate and multivariate normal distributions.
//!
//! The Bayesian characterization engine models the compact-timing-model parameters with a
//! conjugate Gaussian prior `µ_P ~ N(µ0, Σ0)` (Eq. 7 of the paper) and the per-condition
//! measurement likelihood with an independent Gaussian of precision `β(ξ)` (Eq. 8).  This
//! module provides both building blocks together with sampling, log-densities and the
//! standard-normal CDF/quantile needed elsewhere.

use rand::Rng;
use rand_distr::{Distribution, StandardNormal};
use serde::{Deserialize, Serialize};
use slic_linalg::{Cholesky, LinalgError, Matrix, Vector};
use std::f64::consts::PI;

/// Error function approximation (Abramowitz & Stegun 7.1.26), max absolute error ≈ 1.5e-7.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal cumulative distribution function.
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal quantile (inverse CDF), Acklam's rational approximation.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn standard_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile probability must be in (0, 1)");
    // Coefficients of Acklam's approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// A univariate normal distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gaussian {
    mean: f64,
    std_dev: f64,
}

impl Gaussian {
    /// Creates a normal distribution with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is not strictly positive and finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            std_dev > 0.0 && std_dev.is_finite(),
            "standard deviation must be positive and finite (got {std_dev})"
        );
        Self { mean, std_dev }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Fits a Gaussian to a sample by the method of moments.
    ///
    /// A floor of `1e-300` is applied to the standard deviation so that degenerate samples
    /// still produce a usable (if extremely narrow) distribution.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn fit(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot fit a Gaussian to no samples");
        let mean = crate::moments::mean(samples);
        let sd = crate::moments::std_dev(samples).max(1e-300);
        Self { mean, std_dev: sd }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Variance of the distribution.
    pub fn variance(&self) -> f64 {
        self.std_dev * self.std_dev
    }

    /// Precision (inverse variance) — the `β` of the paper's likelihood (Eq. 8).
    pub fn precision(&self) -> f64 {
        1.0 / self.variance()
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * PI).sqrt())
    }

    /// Natural log of the density at `x`.
    pub fn log_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        -0.5 * z * z - self.std_dev.ln() - 0.5 * (2.0 * PI).ln()
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        standard_normal_cdf((x - self.mean) / self.std_dev)
    }

    /// Quantile (inverse CDF) at probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not strictly inside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        self.mean + self.std_dev * standard_normal_quantile(p)
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let z: f64 = StandardNormal.sample(rng);
        self.mean + self.std_dev * z
    }

    /// Draws `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// A multivariate normal distribution parameterized by mean vector and covariance matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultivariateGaussian {
    mean: Vector,
    covariance: Matrix,
    cholesky: Cholesky,
}

impl MultivariateGaussian {
    /// Creates a multivariate normal from a mean vector and covariance matrix.
    ///
    /// # Errors
    ///
    /// Returns a [`LinalgError`] if the covariance is not square, does not match the mean
    /// dimension, or is not positive definite.
    pub fn new(mean: Vector, covariance: Matrix) -> Result<Self, LinalgError> {
        if covariance.rows() != mean.len() || covariance.cols() != mean.len() {
            return Err(LinalgError::DimensionMismatch {
                context: format!(
                    "mean has {} entries but covariance is {}x{}",
                    mean.len(),
                    covariance.rows(),
                    covariance.cols()
                ),
            });
        }
        let cholesky = covariance.cholesky()?;
        Ok(Self {
            mean,
            covariance,
            cholesky,
        })
    }

    /// Fits a multivariate normal to rows of `samples` (each row is one observation).
    ///
    /// A diagonal jitter `regularization` is added to the sample covariance so that nearly
    /// collinear samples still yield a positive-definite matrix — this is how the prior
    /// covariance `Σ0` is built from only a handful of historical technologies.
    ///
    /// # Errors
    ///
    /// Returns a [`LinalgError`] if the regularized covariance is still not positive
    /// definite.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or rows have inconsistent lengths.
    pub fn fit(samples: &[Vector], regularization: f64) -> Result<Self, LinalgError> {
        assert!(!samples.is_empty(), "cannot fit an MVN to no samples");
        let dim = samples[0].len();
        for s in samples {
            assert_eq!(s.len(), dim, "all samples must have the same dimension");
        }
        let n = samples.len() as f64;
        let mean = Vector::from_fn(dim, |j| samples.iter().map(|s| s[j]).sum::<f64>() / n);
        let denominator = if samples.len() > 1 { n - 1.0 } else { 1.0 };
        let mut cov = Matrix::zeros(dim, dim);
        for s in samples {
            for i in 0..dim {
                for j in 0..dim {
                    cov[(i, j)] += (s[i] - mean[i]) * (s[j] - mean[j]) / denominator;
                }
            }
        }
        let cov = cov.add_diagonal(regularization);
        Self::new(mean, cov)
    }

    /// Dimension of the distribution.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Mean vector.
    pub fn mean(&self) -> &Vector {
        &self.mean
    }

    /// Covariance matrix.
    pub fn covariance(&self) -> &Matrix {
        &self.covariance
    }

    /// Cholesky factor of the covariance.
    pub fn cholesky(&self) -> &Cholesky {
        &self.cholesky
    }

    /// Inverse covariance (precision) matrix.
    pub fn precision(&self) -> Matrix {
        self.cholesky.inverse()
    }

    /// Log density at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn log_pdf(&self, x: &Vector) -> f64 {
        let d2 = self.cholesky.mahalanobis_squared(x, &self.mean);
        -0.5 * (d2 + self.cholesky.log_determinant() + self.dim() as f64 * (2.0 * PI).ln())
    }

    /// Squared Mahalanobis distance of `x` from the mean.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn mahalanobis_squared(&self, x: &Vector) -> f64 {
        self.cholesky.mahalanobis_squared(x, &self.mean)
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vector {
        let z = Vector::from_fn(self.dim(), |_| StandardNormal.sample(rng));
        &self.mean + &self.cholesky.apply_factor(&z)
    }

    /// Draws `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Vector> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Returns a copy with the covariance scaled by `factor` (>1 broadens the prior,
    /// <1 sharpens it).  Used for the bias–variance ablation on prior strength.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive (the scaled covariance would not be a
    /// valid covariance matrix).
    pub fn scaled_covariance(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "covariance scale factor must be positive");
        let cov = self.covariance.scale(factor);
        Self::new(self.mean.clone(), cov).expect("scaling preserves positive definiteness")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn cdf_and_quantile_are_inverse() {
        for p in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let x = standard_normal_quantile(p);
            assert!((standard_normal_cdf(x) - p).abs() < 1e-5, "p = {p}");
        }
    }

    #[test]
    fn gaussian_pdf_cdf_quantile() {
        let g = Gaussian::new(1.0, 2.0);
        assert!((g.pdf(1.0) - 1.0 / (2.0 * (2.0 * PI).sqrt())).abs() < 1e-12);
        assert!((g.cdf(1.0) - 0.5).abs() < 1e-9);
        assert!((g.quantile(0.5) - 1.0).abs() < 1e-6);
        assert!((g.log_pdf(3.0) - g.pdf(3.0).ln()).abs() < 1e-9);
        assert!((g.precision() - 0.25).abs() < 1e-12);
        assert_eq!(Gaussian::standard().mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn gaussian_rejects_bad_sigma() {
        let _ = Gaussian::new(0.0, 0.0);
    }

    #[test]
    fn gaussian_fit_recovers_moments() {
        let samples = [1.0, 2.0, 3.0, 4.0, 5.0];
        let g = Gaussian::fit(&samples);
        assert!((g.mean() - 3.0).abs() < 1e-12);
        assert!((g.variance() - 2.5).abs() < 1e-12);
        // Degenerate sample still yields a valid (very narrow) Gaussian.
        let g = Gaussian::fit(&[2.0, 2.0]);
        assert!(g.std_dev() > 0.0);
    }

    #[test]
    fn gaussian_sampling_moments_converge() {
        let g = Gaussian::new(-0.25, 0.5);
        let mut rng = StdRng::seed_from_u64(42);
        let samples = g.sample_n(&mut rng, 20_000);
        assert!((crate::moments::mean(&samples) - g.mean()).abs() < 0.02);
        assert!((crate::moments::std_dev(&samples) - g.std_dev()).abs() < 0.02);
    }

    fn example_mvn() -> MultivariateGaussian {
        let mean = Vector::from_slice(&[0.4, 1.2, -0.25, 0.1]);
        let cov = Matrix::from_rows(&[
            &[0.04, 0.01, 0.0, 0.0],
            &[0.01, 0.09, 0.02, 0.0],
            &[0.0, 0.02, 0.05, 0.01],
            &[0.0, 0.0, 0.01, 0.02],
        ]);
        MultivariateGaussian::new(mean, cov).unwrap()
    }

    #[test]
    fn mvn_construction_checks_dimensions() {
        let err = MultivariateGaussian::new(Vector::zeros(2), Matrix::identity(3)).unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
        let err = MultivariateGaussian::new(Vector::zeros(2), Matrix::from_diagonal(&[1.0, -1.0]))
            .unwrap_err();
        assert!(matches!(err, LinalgError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn mvn_log_pdf_peaks_at_mean() {
        let mvn = example_mvn();
        let at_mean = mvn.log_pdf(mvn.mean());
        let away = mvn.log_pdf(&Vector::from_slice(&[1.0, 2.0, 0.5, -0.5]));
        assert!(at_mean > away);
        assert_eq!(mvn.mahalanobis_squared(mvn.mean()), 0.0);
    }

    #[test]
    fn mvn_sampling_recovers_mean_and_covariance_scale() {
        let mvn = example_mvn();
        let mut rng = StdRng::seed_from_u64(7);
        let samples = mvn.sample_n(&mut rng, 8_000);
        for j in 0..mvn.dim() {
            let col: Vec<f64> = samples.iter().map(|s| s[j]).collect();
            assert!(
                (crate::moments::mean(&col) - mvn.mean()[j]).abs() < 0.02,
                "component {j}"
            );
            let sd_expected = mvn.covariance()[(j, j)].sqrt();
            assert!(
                (crate::moments::std_dev(&col) - sd_expected).abs() < 0.02,
                "component {j}"
            );
        }
    }

    #[test]
    fn mvn_fit_round_trips_samples() {
        let mvn = example_mvn();
        let mut rng = StdRng::seed_from_u64(11);
        let samples = mvn.sample_n(&mut rng, 5_000);
        let fitted = MultivariateGaussian::fit(&samples, 1e-9).unwrap();
        for j in 0..mvn.dim() {
            assert!((fitted.mean()[j] - mvn.mean()[j]).abs() < 0.03);
        }
        // Covariance entries match to sampling accuracy.
        for i in 0..mvn.dim() {
            for j in 0..mvn.dim() {
                assert!((fitted.covariance()[(i, j)] - mvn.covariance()[(i, j)]).abs() < 0.02);
            }
        }
    }

    #[test]
    fn mvn_fit_handles_few_samples_with_regularization() {
        // Two samples of dimension 4: the raw covariance is rank deficient, the jitter
        // makes it usable — exactly the historical-technology prior situation.
        let samples = vec![
            Vector::from_slice(&[0.39, 0.95, -0.27, 0.09]),
            Vector::from_slice(&[0.41, 1.05, -0.29, 0.10]),
        ];
        let mvn = MultivariateGaussian::fit(&samples, 1e-4).unwrap();
        assert_eq!(mvn.dim(), 4);
        assert!(mvn.covariance()[(0, 0)] > 0.0);
    }

    #[test]
    fn scaled_covariance_changes_spread() {
        let mvn = example_mvn();
        let broad = mvn.scaled_covariance(4.0);
        assert!((broad.covariance()[(0, 0)] - 4.0 * mvn.covariance()[(0, 0)]).abs() < 1e-12);
        assert_eq!(broad.mean(), mvn.mean());
    }

    proptest! {
        #[test]
        fn prop_gaussian_cdf_monotone(mean in -5f64..5.0, sd in 0.1f64..3.0,
                                      a in -10f64..10.0, b in -10f64..10.0) {
            let g = Gaussian::new(mean, sd);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(g.cdf(lo) <= g.cdf(hi) + 1e-12);
        }

        #[test]
        fn prop_gaussian_quantile_round_trip(mean in -5f64..5.0, sd in 0.1f64..3.0,
                                             p in 0.01f64..0.99) {
            let g = Gaussian::new(mean, sd);
            let x = g.quantile(p);
            prop_assert!((g.cdf(x) - p).abs() < 1e-4);
        }

        #[test]
        fn prop_mvn_mahalanobis_nonnegative(x in proptest::collection::vec(-3f64..3.0, 4)) {
            let mvn = example_mvn();
            prop_assert!(mvn.mahalanobis_squared(&Vector::from_slice(&x)) >= 0.0);
        }
    }
}
