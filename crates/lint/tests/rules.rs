//! The fixture corpus: every rule has a must-fire and a must-not-fire snippet, and the
//! suppression / `cfg(test)` machinery is pinned down exactly.  The fixtures live in
//! `tests/fixtures/` — a directory the real scan skips (`SKIP_DIRS`), so deliberately
//! violating code never leaks into the workspace lint run.

use slic_lint::config::LintConfig;
use slic_lint::rules::{analyze_file, FilePolicy, FileReport, Rule};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|err| panic!("cannot read fixture `{}`: {err}", path.display()))
}

fn config() -> LintConfig {
    LintConfig {
        f1_float_wrappers: vec!["Seconds".to_string()],
        l1_blocking_calls: vec!["solve_batch".to_string(), "read_line".to_string()],
        ..LintConfig::default()
    }
}

fn analyze(name: &str, policy: &FilePolicy) -> FileReport {
    analyze_file(name, &fixture(name), policy, &config())
}

fn rules_of(report: &FileReport) -> Vec<Rule> {
    report.violations.iter().map(|v| v.rule).collect()
}

fn messages(report: &FileReport) -> String {
    report
        .violations
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn d1_fires_on_every_nondeterminism_source() {
    let policy = FilePolicy {
        d1: true,
        ..FilePolicy::default()
    };
    let report = analyze("d1_fire.rs", &policy);
    assert!(
        report.violations.len() >= 8,
        "one finding per occurrence:\n{}",
        messages(&report)
    );
    assert!(report.violations.iter().all(|v| v.rule == Rule::D1));
    let text = messages(&report);
    for needle in [
        "HashMap",
        "HashSet",
        "Instant",
        "SystemTime",
        "thread::current",
    ] {
        assert!(text.contains(needle), "missing {needle} finding:\n{text}");
    }
}

#[test]
fn d1_wallclock_exemption_spares_clocks_but_nothing_else() {
    // With the carve-out: Instant/SystemTime are legal, HashMap and thread::current()
    // in the very same file still fire.
    let exempt = FilePolicy {
        d1: true,
        d1_wallclock_exempt: true,
        ..FilePolicy::default()
    };
    let report = analyze("d1_wallclock.rs", &exempt);
    let text = messages(&report);
    assert!(
        !text.contains("Instant") && !text.contains("SystemTime"),
        "clock reads must be spared under the exemption:\n{text}"
    );
    for needle in ["HashMap", "thread::current"] {
        assert!(
            text.contains(needle),
            "the exemption spares clocks only; missing {needle} finding:\n{text}"
        );
    }

    // Without the carve-out (the default) the same file's clock reads are violations —
    // an `Instant` anywhere else in the D1 scope still fails the build.
    let strict = FilePolicy {
        d1: true,
        ..FilePolicy::default()
    };
    let text = messages(&analyze("d1_wallclock.rs", &strict));
    assert!(
        text.contains("Instant") && text.contains("SystemTime"),
        "clock reads must fire when the path is not exempted:\n{text}"
    );
}

#[test]
fn d1_wallclock_exemption_resolves_from_config_paths() {
    let config = LintConfig {
        d1_paths: vec!["crates".to_string()],
        d1_wallclock_exempt_paths: vec!["crates/obs".to_string()],
        ..LintConfig::default()
    };
    let obs = FilePolicy::for_path("crates/obs/src/clock.rs", &config);
    assert!(obs.d1 && obs.d1_wallclock_exempt);
    let spice = FilePolicy::for_path("crates/spice/src/engine.rs", &config);
    assert!(spice.d1 && !spice.d1_wallclock_exempt);
}

#[test]
fn d1_ignores_btree_code_and_test_modules() {
    let policy = FilePolicy {
        d1: true,
        ..FilePolicy::default()
    };
    let report = analyze("d1_clean.rs", &policy);
    // The fixture *contains* HashMap and Instant — inside `#[cfg(test)]`, where wall
    // clocks and hash containers are legitimate.
    assert!(
        report.violations.is_empty(),
        "false positives:\n{}",
        messages(&report)
    );
}

#[test]
fn f1_fires_on_float_equality_and_float_keyed_derives() {
    let policy = FilePolicy {
        f1_eq: true,
        f1_derive: true,
        ..FilePolicy::default()
    };
    let report = analyze("f1_fire.rs", &policy);
    // Two derives (raw f64 field; `Seconds` wrapper field) + two literal comparisons.
    // `x == y` with no float *literal* is a documented miss of the token-level rule.
    assert_eq!(
        rules_of(&report),
        vec![Rule::F1; 4],
        "expected exactly 4 F1:\n{}",
        messages(&report)
    );
    let text = messages(&report);
    assert!(text.contains("derive(Hash/Eq)"), "{text}");
    assert!(
        text.contains("`Seconds`"),
        "wrapper types count as floats: {text}"
    );
    assert!(
        !text.contains("x == y"),
        "no type info, no `x == y` finding: {text}"
    );
}

#[test]
fn f1_allows_integer_equality_and_tolerance_comparisons() {
    let policy = FilePolicy {
        f1_eq: true,
        f1_derive: true,
        ..FilePolicy::default()
    };
    let report = analyze("f1_clean.rs", &policy);
    assert!(
        report.violations.is_empty(),
        "false positives:\n{}",
        messages(&report)
    );
}

#[test]
fn f1_wire_fires_on_decimal_float_serialization() {
    let policy = FilePolicy {
        f1_wire: true,
        ..FilePolicy::default()
    };
    let report = analyze("f1_wire_fire.rs", &policy);
    // `{:.12}`, `{:e}`, and a float literal fed to `format!`.
    assert_eq!(
        rules_of(&report),
        vec![Rule::F1; 3],
        "expected exactly 3 F1:\n{}",
        messages(&report)
    );
}

#[test]
fn f1_wire_allows_hex_bit_patterns() {
    let policy = FilePolicy {
        f1_wire: true,
        ..FilePolicy::default()
    };
    let report = analyze("f1_wire_clean.rs", &policy);
    assert!(
        report.violations.is_empty(),
        "false positives:\n{}",
        messages(&report)
    );
}

#[test]
fn p1_fires_on_every_panicking_construct() {
    let policy = FilePolicy {
        p1: true,
        ..FilePolicy::default()
    };
    let report = analyze("p1_fire.rs", &policy);
    assert_eq!(
        rules_of(&report),
        vec![Rule::P1; 6],
        "unwrap, expect, panic!, unreachable!, todo!, unimplemented!:\n{}",
        messages(&report)
    );
    let text = messages(&report);
    for needle in [
        ".unwrap()",
        ".expect()",
        "`panic!`",
        "`unreachable!`",
        "`todo!`",
        "`unimplemented!`",
    ] {
        assert!(text.contains(needle), "missing {needle} finding:\n{text}");
    }
}

#[test]
fn p1_ignores_test_modules_and_fallible_style() {
    let policy = FilePolicy {
        p1: true,
        ..FilePolicy::default()
    };
    let report = analyze("p1_clean.rs", &policy);
    // The fixture unwraps and panics — inside `#[cfg(test)]`, where that is the point.
    assert!(
        report.violations.is_empty(),
        "false positives:\n{}",
        messages(&report)
    );
}

#[test]
fn l1_fires_when_a_guard_spans_a_blocking_call() {
    let policy = FilePolicy {
        l1: true,
        ..FilePolicy::default()
    };
    let report = analyze("l1_fire.rs", &policy);
    assert_eq!(
        rules_of(&report),
        vec![Rule::L1],
        "expected exactly 1 L1:\n{}",
        messages(&report)
    );
    let text = messages(&report);
    assert!(text.contains("solve_batch"), "{text}");
    assert!(text.contains("`guard`"), "names the live guard: {text}");
}

#[test]
fn l1_allows_dropped_and_scope_closed_guards() {
    let policy = FilePolicy {
        l1: true,
        ..FilePolicy::default()
    };
    let report = analyze("l1_clean.rs", &policy);
    assert!(
        report.violations.is_empty(),
        "false positives:\n{}",
        messages(&report)
    );
}

#[test]
fn wellformed_suppressions_silence_their_line_and_the_next() {
    let policy = FilePolicy {
        f1_eq: true,
        p1: true,
        ..FilePolicy::default()
    };
    let report = analyze("suppress_ok.rs", &policy);
    assert!(
        report.violations.is_empty(),
        "suppressions must hold:\n{}",
        messages(&report)
    );
    assert_eq!(
        report.suppressed, 2,
        "one stand-alone (line above) and one trailing suppression"
    );
}

#[test]
fn malformed_suppressions_are_violations_and_silence_nothing() {
    let policy = FilePolicy {
        p1: true,
        ..FilePolicy::default()
    };
    let report = analyze("suppress_bad.rs", &policy);
    let s1 = report
        .violations
        .iter()
        .filter(|v| v.rule == Rule::S1)
        .count();
    let p1 = report
        .violations
        .iter()
        .filter(|v| v.rule == Rule::P1)
        .count();
    // Missing justification and unknown rule code are each S1; neither silences its
    // unwrap, and a well-formed comment one blank line too far silences nothing either.
    assert_eq!(s1, 2, "two malformed comments:\n{}", messages(&report));
    assert_eq!(p1, 3, "all three unwraps must fire:\n{}", messages(&report));
    assert_eq!(report.suppressed, 0);
}

#[test]
fn the_scanner_never_walks_the_fixture_corpus() {
    let config = LintConfig {
        roots: vec!["tests".to_string()],
        skip: Vec::new(),
        ..LintConfig::default()
    };
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = slic_lint::collect_files(root, &config).expect("walkable");
    assert!(
        files
            .iter()
            .all(|f| !f.to_string_lossy().contains("fixtures")),
        "fixtures must stay out of real scans: {files:?}"
    );
}
