//! Three-dimensional lookup tables with trilinear interpolation.

use serde::{Deserialize, Serialize};
use slic_spice::InputPoint;
use std::fmt;

/// A dense table of values over a `(Sin, Cload, Vdd)` grid.
///
/// Axes are strictly increasing; queries outside the grid are clamped to the edge (the
/// behaviour of production timing tools, which refuse to extrapolate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lut3d {
    sin_axis: Vec<f64>,
    cload_axis: Vec<f64>,
    vdd_axis: Vec<f64>,
    /// Row-major values indexed `[sin][cload][vdd]`, flattened.
    values: Vec<f64>,
}

impl Lut3d {
    /// Creates a table from its axes and a filler function evaluated at every grid point.
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty or not strictly increasing.
    pub fn from_fn(
        sin_axis: Vec<f64>,
        cload_axis: Vec<f64>,
        vdd_axis: Vec<f64>,
        mut fill: impl FnMut(f64, f64, f64) -> f64,
    ) -> Self {
        validate_axis("sin", &sin_axis);
        validate_axis("cload", &cload_axis);
        validate_axis("vdd", &vdd_axis);
        let mut values = Vec::with_capacity(sin_axis.len() * cload_axis.len() * vdd_axis.len());
        for &s in &sin_axis {
            for &c in &cload_axis {
                for &v in &vdd_axis {
                    values.push(fill(s, c, v));
                }
            }
        }
        Self {
            sin_axis,
            cload_axis,
            vdd_axis,
            values,
        }
    }

    /// Creates a table from axes and pre-computed values in `[sin][cload][vdd]` order.
    ///
    /// # Panics
    ///
    /// Panics if the axes are invalid or `values.len()` does not match the grid size.
    pub fn from_values(
        sin_axis: Vec<f64>,
        cload_axis: Vec<f64>,
        vdd_axis: Vec<f64>,
        values: Vec<f64>,
    ) -> Self {
        validate_axis("sin", &sin_axis);
        validate_axis("cload", &cload_axis);
        validate_axis("vdd", &vdd_axis);
        assert_eq!(
            values.len(),
            sin_axis.len() * cload_axis.len() * vdd_axis.len(),
            "value count must match the grid size"
        );
        Self {
            sin_axis,
            cload_axis,
            vdd_axis,
            values,
        }
    }

    /// Number of grid points (`= simulations needed to fill the table`).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when the table holds no values (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Grid shape `(sin levels, cload levels, vdd levels)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (
            self.sin_axis.len(),
            self.cload_axis.len(),
            self.vdd_axis.len(),
        )
    }

    /// The slew axis.
    pub fn sin_axis(&self) -> &[f64] {
        &self.sin_axis
    }

    /// The load axis.
    pub fn cload_axis(&self) -> &[f64] {
        &self.cload_axis
    }

    /// The supply axis.
    pub fn vdd_axis(&self) -> &[f64] {
        &self.vdd_axis
    }

    fn index(&self, i: usize, j: usize, k: usize) -> f64 {
        self.values[(i * self.cload_axis.len() + j) * self.vdd_axis.len() + k]
    }

    /// Value stored at grid indices `(i, j, k)` = (slew, load, supply).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn at(&self, i: usize, j: usize, k: usize) -> f64 {
        assert!(
            i < self.sin_axis.len() && j < self.cload_axis.len() && k < self.vdd_axis.len(),
            "grid index out of range"
        );
        self.index(i, j, k)
    }

    /// Trilinear interpolation at an arbitrary input point, clamped to the grid boundary.
    pub fn interpolate(&self, point: &InputPoint) -> f64 {
        let (i0, i1, ti) = bracket(&self.sin_axis, point.sin.value());
        let (j0, j1, tj) = bracket(&self.cload_axis, point.cload.value());
        let (k0, k1, tk) = bracket(&self.vdd_axis, point.vdd.value());

        let mut acc = 0.0;
        for (i, wi) in [(i0, 1.0 - ti), (i1, ti)] {
            for (j, wj) in [(j0, 1.0 - tj), (j1, tj)] {
                for (k, wk) in [(k0, 1.0 - tk), (k1, tk)] {
                    let w = wi * wj * wk;
                    if w != 0.0 {
                        acc += w * self.index(i, j, k);
                    }
                }
            }
        }
        acc
    }
}

impl fmt::Display for Lut3d {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (a, b, c) = self.shape();
        write!(f, "Lut3d {a}x{b}x{c} ({} entries)", self.len())
    }
}

/// Finds the bracketing indices and interpolation fraction of `x` on `axis`.
///
/// Values outside the axis clamp to the end intervals with a fraction of 0 or 1.
fn bracket(axis: &[f64], x: f64) -> (usize, usize, f64) {
    if axis.len() == 1 || x <= axis[0] {
        return (0, 0, 0.0);
    }
    let last = axis.len() - 1;
    if x >= axis[last] {
        return (last, last, 0.0);
    }
    // Axis lengths are tiny (2–10 levels); a linear scan is the clearest correct choice.
    let mut hi = 1;
    while axis[hi] < x {
        hi += 1;
    }
    let lo = hi - 1;
    let t = (x - axis[lo]) / (axis[hi] - axis[lo]);
    (lo, hi, t)
}

fn validate_axis(name: &str, axis: &[f64]) {
    assert!(!axis.is_empty(), "{name} axis must not be empty");
    assert!(
        axis.windows(2).all(|w| w[1] > w[0]),
        "{name} axis must be strictly increasing"
    );
    assert!(
        axis.iter().all(|x| x.is_finite()),
        "{name} axis must contain only finite values"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use slic_units::{Farads, Seconds, Volts};

    fn point(sin: f64, cload: f64, vdd: f64) -> InputPoint {
        InputPoint::new(Seconds(sin), Farads(cload), Volts(vdd))
    }

    /// A table filled with a trilinear-exact function: interpolation must be exact inside.
    fn linear_table() -> Lut3d {
        Lut3d::from_fn(
            vec![1.0, 5.0, 15.0],
            vec![0.5, 2.0, 6.0],
            vec![0.65, 0.85, 1.0],
            |s, c, v| 2.0 * s + 3.0 * c - 4.0 * v + 7.0,
        )
    }

    #[test]
    fn construction_and_shape() {
        let t = linear_table();
        assert_eq!(t.shape(), (3, 3, 3));
        assert_eq!(t.len(), 27);
        assert!(!t.is_empty());
        assert!(format!("{t}").contains("3x3x3"));
        assert_eq!(t.sin_axis().len(), 3);
        assert_eq!(t.cload_axis().len(), 3);
        assert_eq!(t.vdd_axis().len(), 3);
    }

    #[test]
    fn at_returns_grid_values() {
        let t = linear_table();
        let expected = 2.0 * 5.0 + 3.0 * 2.0 - 4.0 * 0.85 + 7.0;
        assert!((t.at(1, 1, 1) - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn at_rejects_out_of_range() {
        let _ = linear_table().at(3, 0, 0);
    }

    #[test]
    fn interpolation_is_exact_for_multilinear_functions() {
        let t = linear_table();
        for (s, c, v) in [(2.0, 1.0, 0.7), (7.5, 3.3, 0.9), (14.9, 5.9, 0.99)] {
            let expected = 2.0 * s + 3.0 * c - 4.0 * v + 7.0;
            let got = t.interpolate(&point(s, c, v));
            assert!(
                (got - expected).abs() < 1e-9,
                "({s},{c},{v}): {got} vs {expected}"
            );
        }
    }

    #[test]
    fn interpolation_matches_grid_at_nodes() {
        let t = linear_table();
        let got = t.interpolate(&point(5.0, 2.0, 0.85));
        assert!((got - t.at(1, 1, 1)).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_queries_clamp() {
        let t = linear_table();
        let below = t.interpolate(&point(0.1, 0.1, 0.1));
        assert!((below - t.at(0, 0, 0)).abs() < 1e-12);
        let above = t.interpolate(&point(100.0, 100.0, 2.0));
        assert!((above - t.at(2, 2, 2)).abs() < 1e-12);
    }

    #[test]
    fn single_level_axes_are_constant_in_that_dimension() {
        let t = Lut3d::from_fn(vec![5.0], vec![1.0, 2.0], vec![0.8], |_, c, _| c * 10.0);
        assert_eq!(t.shape(), (1, 2, 1));
        let a = t.interpolate(&point(1.0, 1.5, 0.9));
        let b = t.interpolate(&point(20.0, 1.5, 0.5));
        assert!(
            (a - b).abs() < 1e-12,
            "slew/vdd must not matter with one level"
        );
        assert!((a - 15.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_axis_rejected() {
        let _ = Lut3d::from_fn(vec![1.0, 1.0], vec![1.0], vec![1.0], |_, _, _| 0.0);
    }

    #[test]
    #[should_panic(expected = "value count")]
    fn wrong_value_count_rejected() {
        let _ = Lut3d::from_values(vec![1.0, 2.0], vec![1.0], vec![1.0], vec![0.0; 3]);
    }

    #[test]
    fn from_values_round_trip() {
        let t = Lut3d::from_values(vec![1.0, 2.0], vec![3.0], vec![4.0], vec![10.0, 20.0]);
        assert_eq!(t.at(0, 0, 0), 10.0);
        assert_eq!(t.at(1, 0, 0), 20.0);
    }

    proptest! {
        #[test]
        fn prop_interpolation_within_value_range(s in 0.0f64..20.0, c in 0.0f64..8.0, v in 0.5f64..1.2) {
            let t = linear_table();
            let lo = (0..3).flat_map(|i| (0..3).flat_map(move |j| (0..3).map(move |k| (i, j, k))))
                .map(|(i, j, k)| t.at(i, j, k))
                .fold(f64::INFINITY, f64::min);
            let hi = (0..3).flat_map(|i| (0..3).flat_map(move |j| (0..3).map(move |k| (i, j, k))))
                .map(|(i, j, k)| t.at(i, j, k))
                .fold(f64::NEG_INFINITY, f64::max);
            let val = t.interpolate(&point(s, c, v));
            prop_assert!(val >= lo - 1e-9 && val <= hi + 1e-9);
        }

        #[test]
        fn prop_bracket_fraction_in_unit_interval(x in -5.0f64..25.0) {
            let axis = [1.0, 2.0, 4.0, 8.0, 16.0];
            let (lo, hi, t) = bracket(&axis, x);
            prop_assert!(lo <= hi && hi < axis.len());
            prop_assert!((0.0..=1.0).contains(&t));
        }
    }
}
