//! The workspace's only wall clock, behind a trait so every consumer is testable and
//! every *other* crate stays clock-free.
//!
//! `slic-lint`'s D1 rule bans `Instant`/`SystemTime` in result-path crates because a
//! wall-clock read that influences an artifact breaks bit-identical replays.  Telemetry
//! still needs real durations, so the ban is scoped: `configs/lint.toml` exempts only
//! `crates/obs` (`[rules.D1] wallclock_exempt_paths`), and within this crate the read
//! is confined to [`MonotonicClock`] — everything downstream sees opaque nanosecond
//! counts through the [`Clock`] trait.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic nanosecond source.  Implementations must never go backwards.
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed since this clock's origin.
    fn now_ns(&self) -> u64;
}

/// The production clock: monotonic nanoseconds since construction.
///
/// This struct owns the only `Instant` in the workspace outside test modules.
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    origin: std::time::Instant,
}

impl MonotonicClock {
    /// Starts a clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: std::time::Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // Saturate rather than wrap: a run longer than u64::MAX nanoseconds (584 years)
        // is not a real concern, but truncation must not panic in debug builds.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX) // slic-lint: allow(P1) -- try_from only fails past 584 years of runtime; saturating is the documented behaviour.
    }
}

/// A hand-cranked clock for deterministic tests: starts at zero, advances on demand.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock stopped at zero nanoseconds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the clock forward by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = MonotonicClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances_exactly_as_told() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_ns(), 0);
        clock.advance(250);
        clock.advance(50);
        assert_eq!(clock.now_ns(), 300);
    }
}
