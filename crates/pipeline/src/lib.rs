//! `slic-pipeline` — the library-scale characterization pipeline.
//!
//! The per-arc studies in `slic` answer "how accurate is method X on this arc?"; this crate
//! answers the production question: *characterize the whole library*.  The flow mirrors the
//! batch drivers used by production characterization tools:
//!
//! 1. **Configure** — a [`RunConfig`] (JSON or flat TOML, every field optional) selects the
//!    library, target and historical technologies, `quick`/`accurate` profile, cell-kind
//!    glob and drive-strength filters, metrics and extraction methods;
//! 2. **Plan** — a [`CharacterizationPlan`] enumerates the work units
//!    `cells × primary arcs × metrics × methods`, and [`CharacterizationPlan::split`]
//!    partitions them into disjoint shards (stable by `(arc, metric, method)`) for
//!    distributed execution;
//! 3. **Learn** — [`PipelineRunner::learn`] archives compact-model fits of the historical
//!    nodes (reusing `slic::historical` with the run's shared counter and cache);
//! 4. **Characterize** — [`PipelineRunner::characterize`] executes the units in parallel
//!    (rayon) against one shared engine: every transient goes through one
//!    [`SimulationCounter`](slic_spice::SimulationCounter) and one
//!    [`SimulationCache`](slic_spice::SimulationCache) — in-memory by default, or a
//!    [`DiskSimCache`](slic_spice::DiskSimCache) (`cache` config key) whose warm state
//!    survives process restarts — so delay/slew unit pairs, repeated runs and shard
//!    workers pay for each coordinate once;
//! 5. **Persist / export / merge** — the [`RunArtifact`] (per-unit results, fitted
//!    [`CharacterizedLibrary`], cost totals, cache statistics) saves and reloads as JSON,
//!    renders Liberty text through [`slic::liberty::export_fitted_library`] at zero
//!    additional simulation cost, and [`RunArtifact::merge`] joins shard artifacts back
//!    into the artifact of the whole run.
//!
//! The `slic` CLI (`crates/cli`) wraps these stages as the `learn`, `characterize`
//! (`--shard i/n`, `--cache file`), `merge`, `export` and `report` subcommands.
//!
//! # Example
//!
//! ```no_run
//! use slic_pipeline::{CharacterizationPlan, PipelineRunner, RunConfig};
//!
//! let config = RunConfig::default().resolve().expect("default config resolves");
//! let runner = PipelineRunner::new(config).expect("quick profile is valid");
//! let (learning, artifact) = runner.run().expect("pipeline runs");
//! println!("{}", artifact.summary_markdown());
//! let liberty = artifact
//!     .characterized
//!     .to_liberty(runner.engine(), runner.config().export_grid)
//!     .expect("fitted arcs exist");
//! std::fs::write("library.lib", liberty).expect("write .lib");
//! let _ = learning.database.to_json();
//! let _ = CharacterizationPlan::from_config(runner.config());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod config;
pub mod error;
pub mod plan;
pub mod runner;
pub mod toml;

pub use artifact::{
    CharacterizedArc, CharacterizedLibrary, FarmSection, RunArtifact, UnitResult, VariationSection,
};
pub use config::{
    BackendChoice, DiffKnobs, FarmKnobs, FarmResilience, ObservabilityKnobs, ResolvedConfig,
    RunConfig, RunProfile, VariationKnobs,
};
pub use error::PipelineError;
pub use plan::{CharacterizationPlan, UnitKind, WorkUnit};
pub use runner::PipelineRunner;
