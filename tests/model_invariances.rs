//! Integration test of the compact model's physical invariances on *simulated* (not
//! model-generated) data — the Figs. 2/3 and Table I claims.

use slic::prelude::*;
use slic_timing_model::{load_slew_collapse, vdd_collapse};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Simulates a NOR2 fall arc over a structured (Vdd × (Cload, Sin)) grid in the 14-nm node
/// and returns delay and slew samples with their effective currents.
fn nor2_grid_samples() -> (Vec<TimingSample>, Vec<TimingSample>) {
    let tech = TechnologyNode::n14_finfet();
    let engine = CharacterizationEngine::with_config(tech, TransientConfig::fast())
        .expect("valid transient configuration");
    let cell = Cell::new(CellKind::Nor2, DriveStrength::X1);
    let arc = TimingArc::new(cell, 0, Transition::Fall);
    let nominal = ProcessSample::nominal();
    let mut delay = Vec::new();
    let mut slew = Vec::new();
    for &vdd in &[0.68, 0.76, 0.84, 0.92, 1.0] {
        for &(cload, sin) in &[(1.0, 2.0), (2.0, 5.0), (3.5, 8.0), (5.0, 12.0)] {
            let point = InputPoint::new(
                Seconds::from_picoseconds(sin),
                Farads::from_femtofarads(cload),
                Volts(vdd),
            );
            let m = engine.simulate_nominal(cell, &arc, &point);
            let ieff = engine.ieff(&arc, &point, &nominal);
            delay.push(TimingSample::new(point, ieff, m.delay));
            slew.push(TimingSample::new(point, ieff, m.output_slew));
        }
    }
    (delay, slew)
}

#[test]
fn table1_analogue_four_parameter_fit_is_accurate_for_simulated_cells() {
    let tech = TechnologyNode::n14_finfet();
    let engine = CharacterizationEngine::with_config(tech, TransientConfig::fast())
        .expect("valid transient configuration");
    let mut rng = StdRng::seed_from_u64(4);
    let points = engine.input_space().sample_uniform(&mut rng, 60);
    let nominal = ProcessSample::nominal();
    let fitter = LeastSquaresFitter::new();
    for kind in [CellKind::Inv, CellKind::Nand2, CellKind::Nor2] {
        let cell = Cell::new(kind, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let samples: Vec<TimingSample> = points
            .iter()
            .map(|p| {
                let m = engine.simulate_nominal(cell, &arc, p);
                TimingSample::new(*p, engine.ieff(&arc, p, &nominal), m.delay)
            })
            .collect();
        let fit = fitter.fit(&samples);
        let error = fit.params.mean_relative_error_percent(&samples);
        // Table I reports 0.9-2.1 % fitting error; our oracle is a different simulator, so
        // allow a looser but still tight bound.
        assert!(error < 5.0, "{kind:?}: fit error = {error}%");
        assert!(
            fit.params.kd > 0.05 && fit.params.kd < 2.0,
            "{kind:?}: kd = {}",
            fit.params.kd
        );
        assert!(
            fit.params.v_prime < 0.2,
            "{kind:?}: V' = {}",
            fit.params.v_prime
        );
    }
}

#[test]
fn fig2_analogue_vdd_collapse_holds_on_simulated_data() {
    let (delay, slew) = nor2_grid_samples();
    let fitter = LeastSquaresFitter::new();
    let delay_params = fitter.fit(&delay).params;
    let slew_params = fitter.fit(&slew).params;

    for (samples, params, label) in [
        (&delay, &delay_params, "delay"),
        (&slew, &slew_params, "slew"),
    ] {
        let series = vdd_collapse(samples, params.v_prime);
        assert_eq!(
            series.len(),
            4,
            "{label}: one series per (Cload, Sin) group"
        );
        for s in &series {
            assert!(
                s.coefficient_of_variation < 0.08,
                "{label} {}: Td*Ieff/(Vdd+V') should be nearly constant, cv = {}",
                s.label,
                s.coefficient_of_variation
            );
        }
    }
}

#[test]
fn fig3_analogue_load_slew_collapse_holds_on_simulated_data() {
    let (delay, _) = nor2_grid_samples();
    let params = LeastSquaresFitter::new().fit(&delay).params;
    let series = load_slew_collapse(&delay, &params);
    assert_eq!(series.len(), 5, "one series per Vdd level");
    for s in &series {
        assert!(
            s.coefficient_of_variation < 0.08,
            "{}: Td/(Cload+Cpar+alpha*Sin) should be nearly constant, cv = {}",
            s.label,
            s.coefficient_of_variation
        );
    }
}

#[test]
fn extended_model_with_cross_term_does_not_fit_worse() {
    let (delay, _) = nor2_grid_samples();
    let base_fit = LeastSquaresFitter::new().fit(&delay);
    let base_err = base_fit.params.mean_relative_error_percent(&delay);
    // Seed the extended model with the base fit and a zero cross term: its error can only
    // match or improve once gamma is allowed to move (here we simply verify the evaluation
    // plumbing agrees at gamma = 0 and that the base fit is already tight).
    let extended = ExtendedTimingParams::new(base_fit.params, 0.0);
    let ext_err = extended.mean_relative_error_percent(&delay);
    assert!((ext_err - base_err).abs() < 1e-9);
    assert!(base_err < 5.0);
}
