//! End-to-end integration test of the nominal characterization flow (the Fig. 6 pipeline):
//! historical learning → prior/precision learning → MAP extraction on the target node →
//! validation against direct simulation, compared with the LSE and LUT baselines.

use slic::historical::{HistoricalLearner, HistoricalLearningConfig};
use slic::nominal::{MethodKind, NominalStudy, NominalStudyConfig};
use slic::prelude::*;

fn learned_database() -> HistoricalDatabase {
    let config = HistoricalLearningConfig {
        grid_levels: (3, 3, 2),
        transient: TransientConfig::fast(),
    };
    HistoricalLearner::new(config)
        .learn(
            &[TechnologyNode::n16_finfet(), TechnologyNode::n14_finfet()],
            &Library::paper_trio(),
        )
        .database
}

#[test]
fn bayesian_flow_beats_lut_at_small_sample_counts() {
    let db = learned_database();
    let config = NominalStudyConfig {
        validation_points: 80,
        training_counts: vec![2, 5, 20],
        ..NominalStudyConfig::default()
    };
    let study = NominalStudy::new(TechnologyNode::target_14nm(), &db, config);
    let cell = Cell::new(CellKind::Nor2, DriveStrength::X1);
    let arc = TimingArc::new(cell, 0, Transition::Fall);
    let result = study.run(cell, &arc, TimingMetric::Delay);

    let bayes = result.curve(MethodKind::ProposedBayesian);
    let lse = result.curve(MethodKind::ProposedLse);
    let lut = result.curve(MethodKind::Lut);

    // At two training simulations the Bayesian method is already usable and far better than
    // a two-point LUT (the paper's central claim).
    assert!(
        bayes.errors_percent[0] < 10.0,
        "k=2 Bayesian error = {}",
        bayes.errors_percent[0]
    );
    assert!(
        bayes.errors_percent[0] < lut.errors_percent[0],
        "Bayesian ({}) must beat LUT ({}) at k=2",
        bayes.errors_percent[0],
        lut.errors_percent[0]
    );
    // With 20 simulations every method has converged to a few percent; the compact model
    // should still be at least as good as the LUT there.
    assert!(bayes.final_error() < 8.0);
    assert!(lse.final_error() < 10.0);

    // Speedup accounting: the Bayesian flow reaches LUT-final accuracy with fewer
    // simulations than the LUT itself spent.
    let target = lut.final_error();
    let sims_bayes = bayes
        .simulations_to_reach(target)
        .expect("bayesian reaches LUT accuracy");
    let sims_lut = lut
        .simulations_to_reach(target)
        .expect("lut reaches its own accuracy");
    assert!(
        sims_bayes < sims_lut,
        "bayesian needs {sims_bayes} sims vs {sims_lut} for the LUT"
    );
}

#[test]
fn slew_characterization_works_through_the_same_pipeline() {
    let db = learned_database();
    let config = NominalStudyConfig {
        validation_points: 60,
        training_counts: vec![3, 10],
        ..NominalStudyConfig::default()
    };
    let study = NominalStudy::new(TechnologyNode::target_14nm(), &db, config);
    let cell = Cell::new(CellKind::Nand2, DriveStrength::X1);
    let arc = TimingArc::new(cell, 0, Transition::Rise);
    let result = study.run(cell, &arc, TimingMetric::OutputSlew);
    let bayes = result.curve(MethodKind::ProposedBayesian);
    assert!(
        bayes.final_error() < 12.0,
        "slew error at k=10 should be moderate, got {}",
        bayes.final_error()
    );
    assert!(bayes.errors_percent.iter().all(|e| e.is_finite()));
}

#[test]
fn database_survives_serialization_between_flow_stages() {
    let db = learned_database();
    let json = db.to_json().expect("serialize");
    let restored = HistoricalDatabase::from_json(&json).expect("deserialize");

    // The JSON float formatter is allowed one ULP of slack, so compare semantically rather
    // than bit-for-bit: same structure, and every numeric field equal to within 1e-12
    // relative.
    assert_eq!(db.len(), restored.len());
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1e-300);
    for (a, b) in db.records().iter().zip(restored.records()) {
        assert_eq!(a.tech_name, b.tech_name);
        assert_eq!(a.arc_id, b.arc_id);
        assert_eq!(a.metric, b.metric);
        assert!(close(a.params.kd, b.params.kd));
        assert!(close(a.params.cpar, b.params.cpar));
        assert!(close(a.params.v_prime, b.params.v_prime));
        assert!(close(a.params.alpha, b.params.alpha));
        assert_eq!(a.residuals.len(), b.residuals.len());
        for (ra, rb) in a.residuals.iter().zip(&b.residuals) {
            assert!(close(ra.relative_residual, rb.relative_residual));
            assert!(close(ra.point.vdd.value(), rb.point.vdd.value()));
        }
    }

    // A prior learned from the restored database matches one from the original to the same
    // tolerance.
    let a = PriorBuilder::new()
        .build(&db, TimingMetric::Delay, None)
        .unwrap();
    let b = PriorBuilder::new()
        .build(&restored, TimingMetric::Delay, None)
        .unwrap();
    assert!(close(a.mean_params().kd, b.mean_params().kd));
    assert!(close(a.mean_params().cpar, b.mean_params().cpar));
}
