//! P1 must-not-fire: fallible style in library code, panics confined to tests.

fn lookup(values: &[f64], index: usize) -> Option<f64> {
    values.get(index).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_the_whole_point_of_a_test() {
        let values = [1.0, 2.0];
        let v = lookup(&values, 1).unwrap();
        assert_eq!(v, 2.0);
        lookup(&values, 9).ok_or("missing").expect_err("out of range");
    }

    #[test]
    #[should_panic]
    fn panics_are_assertable() {
        panic!("expected");
    }
}
