//! Newtype wrappers for the physical quantities used throughout the workspace.
//!
//! Each quantity wraps an `f64` expressed in SI base units (volts, farads, seconds,
//! amperes, coulombs, degrees Celsius).  Only physically meaningful cross-quantity
//! arithmetic is provided; everything else is a compile error.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the common scalar-quantity behaviour for a newtype over `f64`.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a new quantity from a value in SI base units.
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in SI base units.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value of the quantity.
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns `true` when the underlying value is finite (not NaN or infinite).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the larger of `self` and `other`.
            ///
            /// NaN values are propagated the same way [`f64::max`] handles them.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps the quantity into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` (delegates to [`f64::clamp`]).
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Linear interpolation between `self` (at `t = 0`) and `other` (at `t = 1`).
            pub fn lerp(self, other: Self, t: f64) -> Self {
                Self(self.0 + (other.0 - self.0) * t)
            }

            /// The SI unit symbol for this quantity (e.g. `"V"`).
            pub const fn unit_symbol() -> &'static str {
                $unit
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", crate::format::engineering(self.0), $unit)
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for f64 {
            fn from(value: $name) -> f64 {
                value.0
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// Electric potential in volts.
    Volts,
    "V"
);
quantity!(
    /// Capacitance in farads.
    Farads,
    "F"
);
quantity!(
    /// Time in seconds.  Used both for delays and for transition (slew) times.
    Seconds,
    "s"
);
quantity!(
    /// Current in amperes.
    Amperes,
    "A"
);
quantity!(
    /// Charge in coulombs.
    Coulombs,
    "C"
);
quantity!(
    /// Temperature in degrees Celsius.
    Celsius,
    "degC"
);

// --- Physically meaningful cross-quantity arithmetic -------------------------------------

impl Mul<Farads> for Volts {
    type Output = Coulombs;
    /// `Q = C · V`
    fn mul(self, rhs: Farads) -> Coulombs {
        Coulombs(self.0 * rhs.0)
    }
}

impl Mul<Volts> for Farads {
    type Output = Coulombs;
    /// `Q = C · V`
    fn mul(self, rhs: Volts) -> Coulombs {
        Coulombs(self.0 * rhs.0)
    }
}

impl Div<Amperes> for Coulombs {
    type Output = Seconds;
    /// `t = Q / I`
    fn div(self, rhs: Amperes) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Div<Seconds> for Coulombs {
    type Output = Amperes;
    /// `I = Q / t`
    fn div(self, rhs: Seconds) -> Amperes {
        Amperes(self.0 / rhs.0)
    }
}

impl Mul<Seconds> for Amperes {
    type Output = Coulombs;
    /// `Q = I · t`
    fn mul(self, rhs: Seconds) -> Coulombs {
        Coulombs(self.0 * rhs.0)
    }
}

impl Mul<Amperes> for Seconds {
    type Output = Coulombs;
    /// `Q = I · t`
    fn mul(self, rhs: Amperes) -> Coulombs {
        Coulombs(self.0 * rhs.0)
    }
}

impl Div<Volts> for Coulombs {
    type Output = Farads;
    /// `C = Q / V`
    fn div(self, rhs: Volts) -> Farads {
        Farads(self.0 / rhs.0)
    }
}

impl Volts {
    /// Converts a value expressed in millivolts.
    pub fn from_millivolts(mv: f64) -> Self {
        Volts(mv * 1e-3)
    }

    /// Returns the value expressed in millivolts.
    pub fn millivolts(self) -> f64 {
        self.0 * 1e3
    }
}

impl Farads {
    /// Converts a value expressed in femtofarads.
    pub fn from_femtofarads(ff: f64) -> Self {
        Farads(ff * 1e-15)
    }

    /// Returns the value expressed in femtofarads.
    pub fn femtofarads(self) -> f64 {
        self.0 * 1e15
    }

    /// Converts a value expressed in picofarads.
    pub fn from_picofarads(pf: f64) -> Self {
        Farads(pf * 1e-12)
    }
}

impl Seconds {
    /// Converts a value expressed in picoseconds.
    pub fn from_picoseconds(ps: f64) -> Self {
        Seconds(ps * 1e-12)
    }

    /// Returns the value expressed in picoseconds.
    pub fn picoseconds(self) -> f64 {
        self.0 * 1e12
    }

    /// Converts a value expressed in nanoseconds.
    pub fn from_nanoseconds(ns: f64) -> Self {
        Seconds(ns * 1e-9)
    }

    /// Returns the value expressed in nanoseconds.
    pub fn nanoseconds(self) -> f64 {
        self.0 * 1e9
    }
}

impl Amperes {
    /// Converts a value expressed in microamperes.
    pub fn from_microamperes(ua: f64) -> Self {
        Amperes(ua * 1e-6)
    }

    /// Returns the value expressed in microamperes.
    pub fn microamperes(self) -> f64 {
        self.0 * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_from_voltage_and_capacitance() {
        let q = Volts(1.0) * Farads(2.0e-15);
        assert!((q.value() - 2.0e-15).abs() < 1e-30);
        let q2 = Farads(2.0e-15) * Volts(1.0);
        assert_eq!(q, q2);
    }

    #[test]
    fn delay_from_charge_and_current() {
        let t = Coulombs(4e-15) / Amperes(2e-6);
        assert!((t.value() - 2e-9).abs() < 1e-18);
    }

    #[test]
    fn current_from_charge_and_time() {
        let i = Coulombs(4e-15) / Seconds(2e-9);
        assert!((i.value() - 2e-6).abs() < 1e-15);
    }

    #[test]
    fn like_quantity_division_is_dimensionless() {
        let ratio = Seconds(4e-12) / Seconds(2e-12);
        assert!((ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = Volts(0.7);
        let b = Volts(0.1);
        assert_eq!(a + b, Volts(0.7999999999999999));
        assert!(a > b);
        assert_eq!((a - b).abs(), Volts(0.6).abs());
        assert_eq!(-b, Volts(-0.1));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn scalar_multiplication_both_ways() {
        assert_eq!(Volts(0.5) * 2.0, Volts(1.0));
        assert_eq!(2.0 * Volts(0.5), Volts(1.0));
        assert_eq!(Volts(1.0) / 2.0, Volts(0.5));
    }

    #[test]
    fn unit_conversions() {
        assert!((Farads::from_femtofarads(1.67).value() - 1.67e-15).abs() < 1e-27);
        assert!((Seconds::from_picoseconds(5.09).picoseconds() - 5.09).abs() < 1e-9);
        assert!((Volts::from_millivolts(734.0).value() - 0.734).abs() < 1e-12);
        assert!((Amperes::from_microamperes(60.0).value() - 60e-6).abs() < 1e-15);
        assert!((Farads::from_picofarads(0.001).femtofarads() - 1.0).abs() < 1e-9);
        assert!((Seconds::from_nanoseconds(1.0).nanoseconds() - 1.0).abs() < 1e-12);
        assert!((Volts(0.5).millivolts() - 500.0).abs() < 1e-9);
        assert!((Amperes(5e-6).microamperes() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn clamp_and_lerp() {
        assert_eq!(Volts(1.2).clamp(Volts(0.0), Volts(1.0)), Volts(1.0));
        assert_eq!(Volts(-0.2).clamp(Volts(0.0), Volts(1.0)), Volts(0.0));
        let mid = Volts(0.0).lerp(Volts(1.0), 0.25);
        assert!((mid.value() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Seconds = vec![Seconds(1e-12), Seconds(2e-12), Seconds(3e-12)]
            .into_iter()
            .sum();
        assert!((total.picoseconds() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn display_uses_engineering_notation() {
        let s = format!("{}", Farads(1.67e-15));
        assert!(s.contains('f'), "expected femto prefix in {s}");
        assert!(s.ends_with('F'));
        let s = format!("{}", Seconds(5.09e-12));
        assert!(s.contains('p'), "expected pico prefix in {s}");
    }

    #[test]
    fn serde_round_trip_is_transparent() {
        let json = serde_json_value(Volts(0.8));
        assert_eq!(json, "0.8");
        let back: Volts = serde_json_parse("0.8");
        assert_eq!(back, Volts(0.8));
    }

    // Minimal JSON helpers so the unit crate doesn't need serde_json as a dependency:
    // serde's `Serialize`/`Deserialize` with `transparent` means the f64 round-trips through
    // any self-describing format; here we exercise it with a tiny hand-rolled encoder.
    fn serde_json_value(v: Volts) -> String {
        format!("{}", v.value())
    }

    fn serde_json_parse(s: &str) -> Volts {
        Volts(s.parse().unwrap())
    }

    #[test]
    fn is_finite_flags_nan_and_inf() {
        assert!(Volts(1.0).is_finite());
        assert!(!Volts(f64::NAN).is_finite());
        assert!(!Volts(f64::INFINITY).is_finite());
    }

    #[test]
    fn default_and_zero_agree() {
        assert_eq!(Volts::default(), Volts::ZERO);
        assert_eq!(Seconds::default(), Seconds::ZERO);
    }
}
