//! Offline stand-in for the `rand` crate.
//!
//! Implements the API surface this workspace uses: the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], a deterministic
//! [`rngs::StdRng`] built on xoshiro256++ (seeded through SplitMix64, following the
//! xoshiro reference recommendation), and [`seq::SliceRandom::shuffle`].
//!
//! Streams differ from the real `rand::StdRng` (a different generator), but every consumer
//! in this workspace asserts statistical properties rather than exact draws, so the
//! substitution is behaviour-compatible.

#![forbid(unsafe_code)]

use std::ops::Range;

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of a type with a standard distribution (`f64` in `[0, 1)`, full-range
    /// integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / 16_777_216.0)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types drawable via [`Rng::gen_range`].
pub trait UniformSample: Sized {
    /// Draws one value uniformly from the half-open `range`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl UniformSample for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        range.start + rng.gen::<f64>() * (range.end - range.start)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                // Modulo bias is < span/2^64, irrelevant for the spans used here.
                range.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u64, usize, u32, i64, i32);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro reference implementation.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_uniform_ish() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..1000).map(|_| a.gen::<f64>()).collect();
        let ys: Vec<f64> = (0..1000).map(|_| b.gen::<f64>()).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn ranges_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
            let n = rng.gen_range(3usize..9);
            assert!((3..9).contains(&n));
        }
        let mut perm: Vec<usize> = (0..50).collect();
        perm.shuffle(&mut rng);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(perm, sorted, "shuffle of 50 elements must move something");
        assert!(perm.choose(&mut rng).is_some());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(xs, ys);
    }
}
