//! F1 must-fire: float equality comparisons and float-keyed derives.

#[derive(Hash, PartialEq, Eq)]
struct Keyed {
    width: f64,
    name: String,
}

#[derive(Hash)]
struct Wrapped {
    delay: Seconds,
}

fn compare(x: f64, y: f64) -> bool {
    if x == 0.25 {
        return true;
    }
    if y != 1.0 {
        return false;
    }
    x == y
}
