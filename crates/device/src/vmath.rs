//! Branch-free four-lane vector math for the SIMD compiled model.
//!
//! The transient hot path spends most of its time in the transcendentals of
//! [`CompiledDevice::drain_current`](crate::CompiledDevice): per device evaluation it pays
//! one `ln`, two `exp` and two `ln_1p` through libm, and a libm call can neither inline nor
//! vectorize.  This module provides the same functions as plain-Rust `[f64; 4]` arithmetic
//! — range reduction by bit manipulation, fixed-degree polynomial kernels, `if`-free value
//! selection — so the autovectorizer can keep all four lanes in vector registers on the
//! baseline `x86-64` target (SSE2) with no unstable features and no `unsafe`.
//!
//! Accuracy: the polynomial degrees are sized to the SIMD mode's *end-to-end* budget, not
//! to ulp-exactness — every kernel stays within `1e-8` relative of libm over the domains
//! the device model produces, five orders of magnitude below the 0.5 % accuracy bound the
//! SIMD kernel is CI-gated on, while keeping the Horner chains short enough to beat libm.
//! The lanes are computed **element-wise**: lane `i` of every result depends only on lane
//! `i` of the inputs, so a lane's value is independent of what shares its quad — the
//! property that keeps batched SIMD results independent of batch composition.
//!
//! On targets with hardware FMA (the workspace compiles for `x86-64-v3`, see
//! `.cargo/config.toml`) the Horner recurrences use fused multiply-adds; elsewhere they
//! fall back to separate multiply and add.  SIMD-mode results therefore depend on the
//! build target — one more reason the mode is opt-in and accuracy-gated rather than
//! bitwise-guaranteed.

/// Four independent lanes of `f64`.
pub type F64x4 = [f64; 4];

/// Broadcasts one scalar into all four lanes.
#[inline(always)]
pub fn splat(x: f64) -> F64x4 {
    [x; 4]
}

/// `a·b + c`, fused when the target has hardware FMA, otherwise two rounded operations.
///
/// Without the gate, `f64::mul_add` on a non-FMA target would call libm's software
/// `fma()` — correctly rounded but far slower than the two-op form, which is accurate
/// enough for these kernels' error budget.
#[inline(always)]
fn mul_add(a: f64, b: f64, c: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        a * b + c
    }
}

/// `log2(e)`, the exponent-reduction factor of [`exp4`].
const LOG2_E: f64 = std::f64::consts::LOG2_E;
/// High part of `ln 2` for two-step argument reduction.
const LN2_HI: f64 = 6.931_471_803_691_238e-1;
/// Low part of `ln 2` (`LN2_HI + LN2_LO` is `ln 2` to ~107 bits).
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
/// `1.5 · 2^52`: adding and subtracting this rounds to the nearest integer in
/// round-to-nearest mode, and leaves the integer in the low mantissa bits.
const ROUND_MAGIC: f64 = 6_755_399_441_055_744.0;

/// Per-element `e^x`, branch-free.
///
/// Arguments above `708` clamp (the result is within rounding of `f64::MAX`'s scale);
/// arguments below `-708` underflow to **exactly zero**, like libm's `exp`.  The exact
/// zero matters twice: it reproduces the scalar kernel's `Fsat → r` limit for `r → 0`
/// bit for bit, and it keeps near-underflow magnitudes (≈`3e-308`) from flowing into
/// later passes as denormal operands — x86 handles denormals through microcode assists
/// costing hundreds of cycles *per lane per round*, which measurably dominated whole
/// transients whose pull-up device idles at `vds ≈ 0`.  Relative error stays below
/// `1e-9` (degree-8 Taylor kernel on `|r| ≤ ln2/2` after exact two-step reduction —
/// remainder `r⁹/9! ≈ 3e-10` relative, sized to the SIMD mode's accuracy budget, not to
/// the ulp).
#[inline(always)]
pub fn exp4(x: F64x4) -> F64x4 {
    let mut out = [0.0_f64; 4];
    for i in 0..4 {
        let x_raw = x[i];
        let x = x_raw.clamp(-708.0, 708.0);
        // k = round(x / ln2) via the magic-number trick (no float→int conversion, which
        // SSE2 only has for 32-bit lanes); t's low mantissa bits hold k as an integer.
        let t = mul_add(x, LOG2_E, ROUND_MAGIC);
        let k = t - ROUND_MAGIC;
        let r = mul_add(k, -LN2_LO, mul_add(k, -LN2_HI, x));
        // exp(r) on |r| ≤ 0.3466 by degree-8 Taylor.
        let p = 1.0 / 40_320.0;
        let p = mul_add(p, r, 1.0 / 5_040.0);
        let p = mul_add(p, r, 1.0 / 720.0);
        let p = mul_add(p, r, 1.0 / 120.0);
        let p = mul_add(p, r, 1.0 / 24.0);
        let p = mul_add(p, r, 1.0 / 6.0);
        let p = mul_add(p, r, 1.0 / 2.0);
        let p = mul_add(p, r, 1.0);
        let p = mul_add(p, r, 1.0);
        // 2^k assembled from t's low bits: (k + 1023) << 52 as an f64 bit pattern.
        let scale = f64::from_bits(t.to_bits().wrapping_shl(52).wrapping_add(1.0_f64.to_bits()));
        out[i] = if x_raw < -708.0 { 0.0 } else { p * scale };
    }
    out
}

/// Bit offset that centres the reduced mantissa on `[√½, √2)`: the bits of `√½`.
const SQRT_HALF_BITS: u64 = 0x3fe6_a09e_667f_3bcd;

/// Per-element natural logarithm for strictly positive, normal arguments.
///
/// Arguments are clamped up to `f64::MIN_POSITIVE` (the device model never produces a
/// subnormal voltage ratio; the clamp only guards the bit decomposition).  Relative error
/// stays below `5e-9` (atanh series to `s⁹` on the reduced mantissa — remainder
/// `s¹⁰/11 ≈ 2e-9` relative, sized to the SIMD mode's accuracy budget).
#[inline(always)]
pub fn ln4(x: F64x4) -> F64x4 {
    let mut out = [0.0_f64; 4];
    for i in 0..4 {
        let x = x[i].max(f64::MIN_POSITIVE);
        // Decompose x = 2^k · m with m ∈ [√½, √2).
        let ix = x.to_bits().wrapping_sub(SQRT_HALF_BITS);
        let k = exponent_to_f64(ix);
        let m = f64::from_bits((ix & 0x000f_ffff_ffff_ffff).wrapping_add(SQRT_HALF_BITS));
        // ln m = 2·atanh(s) with s = (m−1)/(m+1), |s| ≤ 0.1716.
        let s = (m - 1.0) / (m + 1.0);
        let s2 = s * s;
        let p = 1.0 / 9.0;
        let p = mul_add(p, s2, 1.0 / 7.0);
        let p = mul_add(p, s2, 1.0 / 5.0);
        let p = mul_add(p, s2, 1.0 / 3.0);
        let p = mul_add(p, s2, 1.0);
        let ln_m = 2.0 * s * p;
        out[i] = mul_add(k, LN2_HI, mul_add(k, LN2_LO, ln_m));
    }
    out
}

/// Converts the small signed integer in the top bits of `ix` (an arithmetic-shift-by-52
/// exponent extraction) to `f64` without an `i64 → f64` conversion instruction, which
/// x86 has no packed form of below AVX-512 and which would therefore scalarize the lane
/// loop: the integer is planted in the low mantissa bits of the rounding magic constant
/// and recovered by one subtraction.
#[inline(always)]
fn exponent_to_f64(ix: u64) -> f64 {
    let k_int = ((ix as i64) >> 52) as u64;
    f64::from_bits(ROUND_MAGIC.to_bits().wrapping_add(k_int)) - ROUND_MAGIC
}

/// Streams [`exp4`] over a worklist: `out[k] = exp4(xs[k])`.
///
/// Outlined (`inline(never)`) on purpose: a loop whose body is exactly one polynomial
/// kernel is the shape the vectorizer compiles fully packed — the kernel's constants stay
/// hoisted in registers across items and successive independent items pipeline.  Inlining
/// these loops into a larger sweep function lets the compiler merge them into a body too
/// big to vectorize coherently, which measurably halves throughput.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline(never)]
pub fn exp4_batch(xs: &[F64x4], out: &mut [F64x4]) {
    assert_eq!(xs.len(), out.len());
    for (o, x) in out.iter_mut().zip(xs) {
        *o = exp4(*x);
    }
}

/// Streams [`ln4`] over a worklist: `out[k] = ln4(xs[k])`.  Outlined for the same
/// codegen reason as [`exp4_batch`].
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline(never)]
pub fn ln4_batch(xs: &[F64x4], out: &mut [F64x4]) {
    assert_eq!(xs.len(), out.len());
    for (o, x) in out.iter_mut().zip(xs) {
        *o = ln4(*x);
    }
}

/// Per-element `ln(1 + y)` for `y ≥ 0`, accurate for tiny `y`.
///
/// Uses the correction form `ln(u) · y / (u − 1)` with `u = 1 + y`, which repairs the
/// cancellation of forming `u` in one multiply; lanes where `u` rounds to exactly 1 return
/// `y` itself (the exact limit).
#[inline(always)]
pub fn ln1p4(y: F64x4) -> F64x4 {
    let mut u = [0.0_f64; 4];
    let mut d = [0.0_f64; 4];
    for i in 0..4 {
        u[i] = 1.0 + y[i];
        d[i] = u[i] - 1.0;
    }
    let ln_u = ln4(u);
    let mut out = [0.0_f64; 4];
    for i in 0..4 {
        // d == 0 ⇒ the ratio would be 0/0; select the exact small-y limit instead.
        let corrected = ln_u[i] * (y[i] / d[i]);
        out[i] = if d[i] == 0.0 { y[i] } else { corrected };
    }
    out
}

/// Per-element softplus `ln(1 + e^x)` with the same large-`x` cutoff as the scalar
/// compiled model: lanes with `x > 30` return `x` exactly (the neglected `ln(1 + e^−x)`
/// is below `1e-13`).
#[inline(always)]
pub fn softplus4(x: F64x4) -> F64x4 {
    let sp = ln1p4(exp4(x));
    let mut out = [0.0_f64; 4];
    for i in 0..4 {
        out[i] = if x[i] > 30.0 { x[i] } else { sp[i] };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rel_err(approx: f64, exact: f64) -> f64 {
        (approx - exact).abs() / exact.abs().max(1e-300)
    }

    #[test]
    fn exp4_matches_libm_across_the_model_range() {
        let mut x = -60.0;
        while x <= 40.0 {
            let got = exp4(splat(x))[0];
            assert!(
                rel_err(got, x.exp()) < 1e-9,
                "exp({x}): got {got:e}, libm {:e}",
                x.exp()
            );
            x += 0.037;
        }
    }

    #[test]
    fn exp4_extremes_are_safe() {
        let out = exp4([-1000.0, 708.0, 0.0, -708.0]);
        assert_eq!(out[0], 0.0, "deep underflow is exactly zero, like libm");
        assert!(out[1].is_finite() && out[1] > 1e300);
        assert_eq!(out[2], 1.0);
        assert!(
            out[3] > 0.0 && out[3] < 1e-300,
            "−708 itself is still normal"
        );
    }

    #[test]
    fn ln4_matches_libm_across_the_model_range() {
        // Voltage ratios the model produces span tiny linear-region values to ~10.
        let mut x = 1e-12_f64;
        while x < 20.0 {
            let got = ln4(splat(x))[0];
            assert!(
                rel_err(got, x.ln()) < 5e-9,
                "ln({x:e}): got {got}, libm {}",
                x.ln()
            );
            x *= 1.11;
        }
        assert_eq!(ln4(splat(1.0))[0], 0.0);
    }

    #[test]
    fn ln1p4_handles_tiny_and_huge_arguments() {
        for y in [0.0, 1e-300, 1e-18, 1e-9, 0.5, 1.0, 1e3, 1e12] {
            let got = ln1p4(splat(y))[0];
            assert!(
                rel_err(got, y.ln_1p()) < 5e-9,
                "ln1p({y:e}): got {got:e}, libm {:e}",
                y.ln_1p()
            );
        }
        assert_eq!(ln1p4(splat(0.0))[0], 0.0);
    }

    #[test]
    fn softplus4_matches_the_scalar_cutoff_form() {
        let mut x = -50.0_f64;
        while x <= 50.0 {
            let scalar = if x > 30.0 { x } else { x.exp().ln_1p() };
            let got = softplus4(splat(x))[0];
            // Two polynomial kernels compose here, so their budgets add.
            assert!(
                rel_err(got, scalar) < 1e-8,
                "softplus({x}): got {got:e}, scalar {scalar:e}"
            );
            x += 0.173;
        }
    }

    #[test]
    fn lanes_are_independent() {
        // Lane i of a vector op must equal the same op with that lane alone — the
        // composition-independence the SIMD worklist relies on.
        let x = [-3.7, 0.42, 12.9, 29.99];
        let vec_exp = exp4(x);
        let vec_sp = softplus4(x);
        for i in 0..4 {
            assert_eq!(vec_exp[i].to_bits(), exp4(splat(x[i]))[i].to_bits());
            assert_eq!(vec_sp[i].to_bits(), softplus4(splat(x[i]))[i].to_bits());
        }
    }

    proptest! {
        #[test]
        fn prop_exp4_tracks_libm(x in -700.0_f64..700.0) {
            prop_assert!(rel_err(exp4(splat(x))[0], x.exp()) < 1e-9);
        }

        #[test]
        fn prop_ln4_tracks_libm(x in 1e-30_f64..1e3) {
            prop_assert!(rel_err(ln4(splat(x))[0], x.ln()) < 5e-9);
        }

        #[test]
        fn prop_softplus4_tracks_scalar(x in -700.0_f64..700.0) {
            let scalar = if x > 30.0 { x } else { x.exp().ln_1p() };
            prop_assert!(rel_err(softplus4(splat(x))[0], scalar) < 1e-8);
        }
    }
}
