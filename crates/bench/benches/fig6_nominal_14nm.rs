//! Fig. 6: average testing error for delay `Td` when characterizing a 14-nm library, as a
//! function of the number of training samples, for "Proposed Model + Bayesian Inference",
//! "Proposed Model + LSE" and the lookup table — plus the resulting simulation-count
//! speedups (the paper reports ≈15× total: ≈6× from the model, ≈2.5× from the prior).

use criterion::{criterion_group, criterion_main, Criterion};
use slic::nominal::{MethodKind, NominalStudy, NominalStudyConfig};
use slic::prelude::*;
use slic_bench::{banner, bench_historical_db, finfet_history};

fn study_config() -> NominalStudyConfig {
    NominalStudyConfig {
        validation_points: 250,
        training_counts: vec![1, 2, 3, 5, 10, 20, 50],
        ..NominalStudyConfig::default()
    }
}

fn regenerate(db: &HistoricalDatabase) {
    banner(
        "Fig. 6",
        "Nominal 14-nm delay characterization error vs training samples (three methods)",
    );
    let study = NominalStudy::new(TechnologyNode::target_14nm(), db, study_config());
    for kind in CellKind::PAPER_TRIO {
        let cell = Cell::new(kind, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let result = study.run(cell, &arc, TimingMetric::Delay);
        println!("\n{} / delay:", arc.id());
        println!("{}", result.to_markdown());
        let bayes = result.curve(MethodKind::ProposedBayesian);
        let lse = result.curve(MethodKind::ProposedLse);
        let lut = result.curve(MethodKind::Lut);
        let target = bayes
            .final_error()
            .max(lut.final_error())
            .max(lse.final_error());
        let fmt = |v: Option<f64>| v.map_or("n/a".to_string(), |x| format!("{x:.1}x"));
        println!(
            "speedups at {target:.2}% accuracy: total (Bayesian vs LUT) = {}, model alone (LSE vs LUT) = {}, prior (Bayesian vs LSE) = {}",
            fmt(result.speedup_at(target, MethodKind::ProposedBayesian, MethodKind::Lut)),
            fmt(result.speedup_at(target, MethodKind::ProposedLse, MethodKind::Lut)),
            fmt(result.speedup_at(target, MethodKind::ProposedBayesian, MethodKind::ProposedLse)),
        );
    }
    println!("\n(paper: ~4.3% error with a prior plus two fitting points; up to 15x fewer simulations than the LUT)");
}

fn bench(c: &mut Criterion) {
    let db = bench_historical_db(&finfet_history());
    regenerate(&db);

    // Kernel: one MAP extraction from two fresh simulations (the inner step of the sweep).
    let study = NominalStudy::new(TechnologyNode::target_14nm(), &db, study_config());
    let cell = Cell::new(CellKind::Nor2, DriveStrength::X1);
    let arc = TimingArc::new(cell, 0, Transition::Fall);
    let extractor = study.map_extractor(cell, TimingMetric::Delay);
    let engine = study.engine();
    let nominal = ProcessSample::nominal();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    let points = engine.input_space().sample_latin_hypercube(&mut rng, 2);
    let samples: Vec<TimingSample> = points
        .iter()
        .map(|p| {
            let m = engine.simulate_nominal(cell, &arc, p);
            TimingSample::new(*p, engine.ieff(&arc, p, &nominal), m.delay)
        })
        .collect();
    c.bench_function("fig6_map_extraction_k2", |b| {
        b.iter(|| extractor.extract(&samples))
    });
}

criterion_group! {
    name = benches;
    config = slic_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
