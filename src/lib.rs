//! `slic-suite` — the workspace umbrella package.
//!
//! This package exists to host the cross-crate integration tests (`tests/`) and the
//! runnable examples (`examples/`).  The actual library API lives in the [`slic`] crate and
//! the substrate crates it re-exports; this module only re-exports `slic` for convenience so
//! examples can `use slic_suite as _;` if desired.

pub use slic;
