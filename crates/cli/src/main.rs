//! `slic` — the command-line driver of the characterization pipeline.
//!
//! Subcommands mirror the resumable pipeline stages:
//!
//! ```text
//! slic learn        # historical nodes -> historical-database JSON
//! slic characterize # plan + run -> run-artifact JSON (+ optional Liberty)
//!                   # --shard i/n runs one shard; --cache shares warm state on disk
//!                   # --backend farm --workers a,b | --spawn-workers N farms the sims out
//! slic worker       # serve transient batches for a farm broker (TCP or stdio)
//! slic merge        # shard artifacts -> the whole-run artifact
//! slic export       # run artifact -> Liberty text
//! slic report       # run artifact -> Markdown summary
//! slic cache        # cache maintenance (compact)
//! slic profile      # reconstruct a --trace sidecar into a performance report
//!                   # --diff gates one trace against another; --format chrome exports
//!                   # Perfetto-loadable JSON
//! slic history      # list / diff the cross-run ledger written by --ledger
//! slic bench diff   # gate a fresh kernel bench report against the committed one
//! slic lint         # workspace invariant checker (slic-lint)
//! ```
//!
//! Run `slic help` for the full flag reference.  Argument parsing is hand-rolled
//! (`--flag value` pairs only) because the build environment vendors no CLI crate.

use slic_bayes::HistoricalDatabase;
use slic_device::TechnologyNode;
use slic_farm::{
    serve_listener, serve_stdio, FarmBackend, FarmTuning, FaultPlan, ServeOutcome, WorkerOptions,
};
use slic_obs::{
    Clock, DiffReport, DiffThresholds, MetricsSnapshot, MonotonicClock, Observability,
    ProgressMeter, RunRecord, TraceRecorder,
};
use slic_pipeline::{
    BackendChoice, CharacterizationPlan, FarmSection, PipelineError, PipelineRunner, RunArtifact,
    RunConfig, RunProfile,
};
use slic_spice::{CharacterizationEngine, CompactionOptions, DiskSimCache};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "slic — statistical library characterization pipeline

USAGE:
    slic <learn|characterize|worker|merge|export|report|cache|profile|history|bench|lint|help> [--flag value]...

OBSERVABILITY FLAGS (learn, characterize and worker):
    --trace <file>          record a JSON-lines span/event trace of the run to <file>
                            (config key `observability.trace`; the flag wins).  Tracing
                            is display-only: artifact bytes are identical with it on or
                            off.  Analyze the sidecar with `slic profile <file>`.
    --ledger <file>         append one run record (config fingerprint, seed, wall time,
                            sims paid vs cached, artifact hash, metrics snapshot) to the
                            cross-run ledger at <file> (config key `observability.ledger`;
                            learn/characterize only).  Display-only like --trace.  Read it
                            back with `slic history <file>`.
    --progress              render a live stderr progress line (units done, sims paid vs
                            cached, farmed lanes, ETA) even when stderr is not a TTY; on
                            a TTY the line is on by default for learn/characterize.
                            Progress also emits rate-limited `progress` trace events.

FARM FLAGS (learn and characterize):
    --backend <name>        local (default) | farm
    --workers <a,b,...>     TCP addresses of `slic worker --listen` processes
    --spawn-workers <n>     spawn n subprocess workers of this binary (zero-config
                            multi-process run); combinable with --workers
    --retry-budget <n>      re-dispatch attempts per job before it degrades to the
                            local fallback (default: fleet size)
    --reconnect-attempts <n> re-dials per dead worker per reconnection round, spaced
                            by seeded exponential backoff (default 4)

SUBCOMMANDS:
    learn         Characterize the historical technologies and archive the
                  compact-model fits.
                    --historical <a,b,...>  historical node names
                                            (default n16_finfet,n14_finfet)
                    --library <name>        paper-trio (default) | standard
                    --profile <name>        quick (default) | accurate
                    --cache <file>          persistent simulation cache (JSON lines)
                    --simd                  route batched lanes through the SIMD quad
                                            kernel (kernel.simd = true)
                    --out <file>            output database JSON (default history.json)

    characterize  Run a library-scale characterization plan (or one shard of it).
                    --config <file>         run config (.json or .toml); CLI flags
                                            below override its fields
                    --history <file>        database JSON from `slic learn`;
                                            omitted = learn inline first
                    --library <name>        paper-trio | standard
                    --technology <name>     e.g. target_14nm, target_28nm
                    --profile <name>        quick | accurate
                    --cells <glob>          cell-kind filter, e.g. 'NAND*'
                    --drives <a,b,...>      drive filter, e.g. X1,X2
                    --metrics <a,b,...>     delay,slew
                    --methods <a,b,...>     bayesian,lse,lut
                    --seed <n>              sampling seed
                    --shard <i/n>           run shard i of n (1-based), e.g. 2/4;
                                            merge the artifacts with `slic merge`
                    --cache <file>          persistent simulation cache shared by
                                            shard workers and reruns
                    --variation             add Monte Carlo variation units: every
                                            export-grid point under every process seed,
                                            reduced to mean/sigma/skew tables in the
                                            artifact (and LVF groups in --liberty)
                    --variation-seeds <n>   Monte Carlo seeds per unit (implies
                                            --variation; default from profile)
                    --variation-sigma <a,b> sigma corners reported, e.g. 1,3
                                            (implies --variation)
                    --simd                  route batched lanes through the SIMD quad
                                            kernel (local backend only); delays stay
                                            within the CI-gated 0.5% accuracy envelope,
                                            and the artifact gains a kernel cost section
                    --out <file>            run artifact JSON (default run.json)
                    --liberty <file>        also write the Liberty text here

    worker        Serve transient-simulation batches to a farm broker.  Speaks the
                  JSON-lines wire protocol on stdio by default (the --spawn-workers
                  transport); --listen serves TCP instead.
                    --listen <addr>         bind address, e.g. 127.0.0.1:0 (the actual
                                            port is printed on stdout once bound)
                    --max-batches <n>       serve n batches then drop the connection
                                            without replying (rolling-restart drain /
                                            failover fault injection); exits nonzero
                    --fault-seed <n>        seed for the fault plan's randomized
                                            choices (jittered delays); default 0
                    --fault-drop-after <n>  drop the connection after n messages,
                                            counted per connection (flapping worker)
                    --fault-delay-ms <n>    sleep n ms (plus seeded jitter) before
                                            answering each batch (slow worker)
                    --fault-garbage-every <n> reply to every n-th batch with garbage
                                            bytes instead of results
                    --fault-refuse-reconnects <n> after a fault drop, refuse n broker
                                            re-dials before serving again

    merge         Join shard artifacts into the whole-run artifact.
                    --inputs <a,b,...>      shard artifact JSON files (required)
                    --out <file>            merged artifact JSON (default merged.json)

    export        Render the Liberty text of a finished run.
                    --run <file>            run artifact JSON (default run.json)
                    --out <file>            output .lib path (stdout when omitted)
                    --variation             emit LVF-style ocv_sigma_*/ocv_skewness_*
                                            groups from the artifact's variation tables
                                            (requires a --variation characterization)

    report        Print the Markdown summary of a finished run, including the
                  sigma/skew tables of a statistical run.  A shard artifact is
                  labelled PARTIAL so its totals are never mistaken for the whole run.
                    --run <file>            run artifact JSON (default run.json)

    cache         Cache maintenance.
                    compact --cache <file>  rewrite the append-only simulation-cache log
                                            as a deduplicated last-record-wins snapshot
                                            (taken under the same lock every flush uses)
                                            and report how many records were dropped
                            --drop-legacy   additionally evict records written by a
                                            kernel predating this binary's (they can
                                            never answer a lookup again); reported
                                            separately from the duplicate count
                            --quarantine    salvage a log with corrupt interior lines:
                                            valid records are kept, corrupt lines move
                                            to a `.quarantine` sidecar for inspection
                                            (default: corruption aborts, log untouched)

    profile       Reconstruct the span tree of a `--trace` sidecar: per-phase time,
                  top-N hottest (cell, arc) units, per-worker utilization, cache
                  effectiveness.  A corrupt or truncated tail is salvaged — the report
                  covers the complete prefix, the dropped lines are counted on stderr,
                  and the exit code is nonzero.
                    slic profile <trace.jsonl> [--format md|json|chrome] [--top <n>]
                    slic profile --diff <old.jsonl> <new.jsonl>   regression-gate two
                                            traces: total and per-phase wall deltas plus
                                            cache drift against thresholds; exits nonzero
                                            on regression
                    --format <name>         md (default) | json | chrome (Chrome
                                            trace-event JSON — load in ui.perfetto.dev)
                    --top <n>               hottest-unit rows to keep (default 10)
                    --config <file>         read `observability.diff.*` thresholds
                    --wall-pct <f>          max wall-time rise, percent (default 50)
                    --counter-pct <f>       max gated-counter rise, percent (default 10)
                    --hit-rate-drop <f>     max cache-hit-rate drop, points (default 5)

    history       List the cross-run ledger written by `--ledger`, or gate its newest
                  run against the previous run of the same config fingerprint.
                    slic history <runs.jsonl>            list every recorded run
                    slic history <runs.jsonl> --diff     diff the last two runs with
                                            matching fingerprints; exits nonzero on
                                            regression (wall, sims paid, hit rate,
                                            gated counters, artifact hash drift)
                    --fingerprint <hex>     diff this fingerprint instead of the most
                                            recently recorded one
                    --config/--wall-pct/--counter-pct/--hit-rate-drop   as in profile

    bench         Kernel benchmark gates.
                    bench diff <fresh.json> [<committed.json>]   compare a fresh
                                            `make bench-kernel` report against the
                                            committed baseline (BENCH_transient.json);
                                            exits nonzero when any variant falls below
                                            half the committed throughput

    lint          Run the workspace invariant checker (determinism, float hygiene,
                  panic policy, lock discipline) against the committed baseline.
                  Exits nonzero on any new violation or stale baseline entry.
                    --root <dir>            workspace root (default .)
                    --config <file>         policy file (default configs/lint.toml)
                    --baseline <file>       baseline (default lint-baseline.json)
                    --format <name>         human (default) | json
                    --update-baseline       rewrite the baseline from this run's
                                            baselineable findings (still fails on
                                            deny-class D1/F1/S1 violations)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    if matches!(command, "help" | "--help" | "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    const CONFIG_FLAGS: &[&str] = &[
        "config",
        "library",
        "technology",
        "historical",
        "profile",
        "cells",
        "drives",
        "metrics",
        "methods",
        "seed",
        "cache",
        "backend",
        "workers",
        "spawn-workers",
        "retry-budget",
        "reconnect-attempts",
        "trace",
        "ledger",
        "out",
    ];
    // profile/history/bench mix positionals with their own flag sets and threshold
    // overrides; they dispatch before the generic flag machinery below.
    match command {
        "profile" => return cmd_profile_entry(&args[1..]),
        "history" => return cmd_history_entry(&args[1..]),
        "bench" => return cmd_bench_entry(&args[1..]),
        _ => {}
    }
    // `slic cache <action> --flag value ...` takes a positional action before its flags.
    // `switches` are valueless boolean flags (recorded as "true" when present).
    let (flag_args, allowed, switches): (&[String], Vec<&str>, Vec<&str>) = match command {
        "learn" => (&args[1..], CONFIG_FLAGS.to_vec(), vec!["simd", "progress"]),
        "characterize" => {
            let mut flags = CONFIG_FLAGS.to_vec();
            flags.extend([
                "history",
                "liberty",
                "shard",
                "variation-seeds",
                "variation-sigma",
            ]);
            (&args[1..], flags, vec!["variation", "simd", "progress"])
        }
        "worker" => (
            &args[1..],
            vec![
                "listen",
                "max-batches",
                "fault-seed",
                "fault-drop-after",
                "fault-delay-ms",
                "fault-garbage-every",
                "fault-refuse-reconnects",
                "trace",
            ],
            vec![],
        ),
        "lint" => (
            &args[1..],
            vec!["root", "config", "baseline", "format"],
            vec!["update-baseline"],
        ),
        "merge" => (&args[1..], vec!["inputs", "out"], vec![]),
        "export" => (&args[1..], vec!["run", "out"], vec!["variation"]),
        "report" => (&args[1..], vec!["run"], vec![]),
        "cache" => match args.get(1).map(String::as_str) {
            Some("compact") => (
                &args[2..],
                vec!["cache", "trace"],
                vec!["drop-legacy", "quarantine"],
            ),
            Some(other) => {
                eprintln!("error: unknown cache action `{other}` (expected `compact`)");
                return ExitCode::from(2);
            }
            None => {
                eprintln!("error: `slic cache` needs an action, e.g. `slic cache compact`");
                return ExitCode::from(2);
            }
        },
        other => {
            eprintln!("error: unknown subcommand `{other}`\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let flags = match parse_flags(flag_args, &allowed, &switches) {
        Ok(flags) => flags,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let outcome = match command {
        "learn" => cmd_learn(&flags),
        "characterize" => cmd_characterize(&flags),
        "worker" => cmd_worker(&flags),
        "merge" => cmd_merge(&flags),
        "export" => cmd_export(&flags),
        "report" => cmd_report(&flags),
        "cache" => cmd_cache_compact(&flags),
        "lint" => return cmd_lint(&flags),
        _ => unreachable!("unknown subcommands rejected above"),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}

/// `slic lint`: run the workspace invariant checker against the committed baseline.
fn cmd_lint(flags: &BTreeMap<String, String>) -> ExitCode {
    let root = std::path::PathBuf::from(flags.get("root").map_or(".", String::as_str));
    let config_path = root.join(
        flags
            .get("config")
            .map_or("configs/lint.toml", String::as_str),
    );
    let baseline_path = root.join(
        flags
            .get("baseline")
            .map_or("lint-baseline.json", String::as_str),
    );
    let format = flags.get("format").map_or("human", String::as_str);
    if !matches!(format, "human" | "json") {
        eprintln!("error: unknown lint format `{format}` (expected human or json)");
        return ExitCode::from(2);
    }
    let fail = |err: &dyn std::fmt::Display| {
        eprintln!("error: {err}");
        ExitCode::from(2)
    };
    let config = match slic_lint::config::LintConfig::load(&config_path) {
        Ok(config) => config,
        Err(err) => return fail(&err),
    };
    if flags.contains_key("update-baseline") {
        let run = match slic_lint::run(&root, &config) {
            Ok(run) => run,
            Err(err) => return fail(&err),
        };
        let baseline = slic_lint::baseline::Baseline::from_violations(&run.violations);
        if let Err(err) = std::fs::write(&baseline_path, baseline.to_json()) {
            eprintln!("error: cannot write `{}`: {err}", baseline_path.display());
            return ExitCode::from(2);
        }
        let deny: Vec<_> = run.violations.iter().filter(|v| v.rule.is_deny()).collect();
        for violation in &deny {
            eprintln!("{violation}");
        }
        eprintln!(
            "baseline rewritten: {} entr(ies) at `{}`",
            run.violations.len() - deny.len(),
            baseline_path.display()
        );
        if deny.is_empty() {
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "{} deny-class violation(s) remain (D1/F1/S1 are never baselineable)",
            deny.len()
        );
        return ExitCode::FAILURE;
    }
    let baseline = match slic_lint::baseline::Baseline::load(&baseline_path) {
        Ok(baseline) => baseline,
        Err(err) => return fail(&err),
    };
    let outcome = match slic_lint::check(&root, &config, &baseline) {
        Ok(outcome) => outcome,
        Err(err) => return fail(&err),
    };
    let report = match format {
        "json" => slic_lint::render_json(&outcome.run, &outcome.diff),
        _ => slic_lint::render_human(&outcome.run, &outcome.diff),
    };
    print!("{report}");
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Parses `--flag value` pairs plus valueless `switches` (recorded as `"true"`); rejects
/// stray positionals, missing values, and flags the subcommand does not consume (a typo'd
/// flag must not silently fall back to a default).
fn parse_flags(
    args: &[String],
    allowed: &[&str],
    switches: &[&str],
) -> Result<BTreeMap<String, String>, String> {
    let mut flags = BTreeMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let name = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument `{arg}` (flags are `--name value`)"))?;
        let value = if switches.contains(&name) {
            "true".to_string()
        } else if allowed.contains(&name) {
            it.next()
                .ok_or_else(|| format!("flag `--{name}` is missing its value"))?
                .clone()
        } else {
            return Err(format!(
                "unknown flag `--{name}` for this subcommand (expected one of: {})",
                allowed
                    .iter()
                    .chain(switches)
                    .map(|f| format!("--{f}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        };
        if flags.insert(name.to_string(), value).is_some() {
            return Err(format!("flag `--{name}` given twice"));
        }
    }
    Ok(flags)
}

fn comma_list(text: &str) -> Vec<String> {
    text.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// Builds the run configuration from an optional `--config` file plus CLI overrides.
fn build_config(flags: &BTreeMap<String, String>) -> Result<RunConfig, PipelineError> {
    let mut config = match flags.get("config") {
        Some(path) => RunConfig::load(path)?,
        None => RunConfig::default(),
    };
    if let Some(v) = flags.get("library") {
        config.library = Some(v.clone());
    }
    if let Some(v) = flags.get("technology") {
        config.technology = Some(v.clone());
    }
    if let Some(v) = flags.get("historical") {
        config.historical = Some(comma_list(v));
    }
    if let Some(v) = flags.get("profile") {
        config.profile = Some(v.clone());
    }
    if let Some(v) = flags.get("cells") {
        config.cell_pattern = Some(v.clone());
    }
    if let Some(v) = flags.get("drives") {
        config.drives = Some(comma_list(v));
    }
    if let Some(v) = flags.get("metrics") {
        config.metrics = Some(comma_list(v));
    }
    if let Some(v) = flags.get("methods") {
        config.methods = Some(comma_list(v));
    }
    if let Some(v) = flags.get("seed") {
        let seed = v
            .parse::<u64>()
            .map_err(|_| PipelineError::config(format!("`--seed {v}` is not an integer")))?;
        config.seed = Some(seed);
    }
    if let Some(v) = flags.get("cache") {
        config.cache = Some(v.clone());
    }
    if let Some(v) = flags.get("backend") {
        config.backend = Some(v.clone());
    }
    if let Some(v) = flags.get("workers") {
        config.workers = Some(comma_list(v));
    }
    if let Some(v) = flags.get("spawn-workers") {
        let count = v.parse::<usize>().map_err(|_| {
            PipelineError::config(format!("`--spawn-workers {v}` is not an integer"))
        })?;
        config.spawn_workers = Some(count);
    }
    if let Some(v) = flags.get("retry-budget") {
        let budget = v.parse::<usize>().map_err(|_| {
            PipelineError::config(format!("`--retry-budget {v}` is not an integer"))
        })?;
        let mut knobs = config.farm.clone().unwrap_or_default();
        knobs.retry_budget = Some(budget);
        config.farm = Some(knobs);
    }
    if let Some(v) = flags.get("reconnect-attempts") {
        let attempts = v.parse::<u32>().map_err(|_| {
            PipelineError::config(format!("`--reconnect-attempts {v}` is not an integer"))
        })?;
        let mut knobs = config.farm.clone().unwrap_or_default();
        knobs.reconnect_attempts = Some(attempts);
        config.farm = Some(knobs);
    }
    // Any variation flag enables the Monte Carlo workload on top of whatever (if
    // anything) the config file's `variation` section set.
    if flags.contains_key("variation")
        || flags.contains_key("variation-seeds")
        || flags.contains_key("variation-sigma")
    {
        let mut knobs = config.variation.clone().unwrap_or_default();
        if let Some(v) = flags.get("variation-seeds") {
            let seeds = v.parse::<usize>().map_err(|_| {
                PipelineError::config(format!("`--variation-seeds {v}` is not an integer"))
            })?;
            knobs.process_seeds = Some(seeds);
        }
        if let Some(v) = flags.get("variation-sigma") {
            let corners: Vec<f64> = comma_list(v)
                .iter()
                .map(|c| {
                    c.parse::<f64>().map_err(|_| {
                        PipelineError::config(format!(
                            "`--variation-sigma {v}`: `{c}` is not a number"
                        ))
                    })
                })
                .collect::<Result<_, _>>()?;
            knobs.sigma_corners = Some(corners);
        }
        config.variation = Some(knobs);
    }
    if flags.contains_key("simd") {
        let mut knobs = config.kernel.clone().unwrap_or_default();
        knobs.simd = Some(true);
        config.kernel = Some(knobs);
    }
    if let Some(v) = flags.get("trace") {
        let mut knobs = config.observability.clone().unwrap_or_default();
        knobs.trace = Some(v.clone());
        config.observability = Some(knobs);
    }
    if let Some(v) = flags.get("ledger") {
        let mut knobs = config.observability.clone().unwrap_or_default();
        knobs.ledger = Some(v.clone());
        config.observability = Some(knobs);
    }
    if flags.contains_key("progress") {
        let mut knobs = config.observability.clone().unwrap_or_default();
        knobs.progress = Some(true);
        config.observability = Some(knobs);
    }
    Ok(config)
}

/// Builds the observability bundle for a resolved configuration: a file-backed trace
/// recorder when `observability.trace` / `--trace` asked for one, the free disabled
/// recorder otherwise.  The metrics registry is always live.
fn build_observability(
    config: &slic_pipeline::ResolvedConfig,
) -> Result<Observability, PipelineError> {
    let trace = match &config.trace_path {
        Some(path) => TraceRecorder::to_file(path).map_err(|err| {
            PipelineError::config(format!(
                "cannot create trace file `{}`: {err}",
                path.display()
            ))
        })?,
        None => TraceRecorder::disabled(),
    };
    // The stderr progress line draws when the config (or `--progress`) forced it, or
    // automatically when a human is watching stderr.  The meter also runs line-less
    // whenever tracing is live, so rate-limited `progress` events land in the
    // sidecar; with neither display it stays the free disabled meter.
    use std::io::IsTerminal as _;
    let render_line = config.progress || std::io::stderr().is_terminal();
    let progress = if render_line || trace.is_enabled() {
        ProgressMeter::new(trace.clone(), render_line)
    } else {
        ProgressMeter::disabled()
    };
    Ok(Observability {
        trace,
        progress,
        ..Observability::default()
    })
}

/// Builds the runner for a resolved configuration, standing a farm fleet up when the
/// backend choice asks for one.  Returns the fleet handle alongside, so callers can
/// report dispatch statistics after the run.
fn build_runner(
    config: slic_pipeline::ResolvedConfig,
    obs: &Observability,
) -> Result<(PipelineRunner, Option<Arc<FarmBackend>>), PipelineError> {
    match config.backend.clone() {
        BackendChoice::Local => Ok((
            PipelineRunner::new(config)?.with_observability(obs.clone()),
            None,
        )),
        BackendChoice::Farm {
            workers,
            spawn_workers,
            tuning,
        } => {
            let program = if spawn_workers > 0 {
                Some(std::env::current_exe().map_err(|err| {
                    PipelineError::config(format!("cannot locate the slic binary to spawn: {err}"))
                })?)
            } else {
                None
            };
            let tuning = FarmTuning {
                retry_budget: tuning.retry_budget,
                reconnect_attempts: tuning.reconnect_attempts,
                backoff_base_ms: tuning.backoff_base_ms,
                backoff_cap_ms: tuning.backoff_cap_ms,
                backoff_seed: tuning.backoff_seed,
                heartbeat: tuning.heartbeat,
                heartbeat_timeout_ms: tuning.heartbeat_timeout_ms,
            };
            let farm =
                FarmBackend::with_tuning(&workers, spawn_workers, program.as_deref(), tuning)
                    .map_err(|err| PipelineError::config(format!("farm backend: {err}")))?
                    .with_observability(obs.clone());
            println!(
                "farm: {} worker(s) connected ({} remote, {} spawned)",
                farm.fleet_size(),
                workers.len(),
                spawn_workers,
            );
            let farm = Arc::new(farm);
            let runner =
                PipelineRunner::with_backend(config, farm.clone())?.with_observability(obs.clone());
            Ok((runner, Some(farm)))
        }
    }
}

/// Prints the unified post-run summary in one stable, documented order:
///
///   1. `kernel (...)`         — transient kernel cost, when the backend exposes one
///   2. `dispatch: ...`        — batched-dispatch lane accounting, when lanes flowed
///   3. `farm: ...`            — fleet liveness and job totals, farmed runs only
///   4. `farm resilience: ...` — reconnect/heartbeat/degradation counters, farmed runs
///      only (the chaos CI job greps this line; its shape is load-bearing)
///   5. `metrics: ...`         — the unified registry snapshot, sorted, deterministic
///      serialization
///
/// Both `slic learn` and `slic characterize` print through here, so the order can never
/// drift between subcommands.  Before printing, every per-subsystem counter struct
/// (kernel, dispatch, farm, cache tiers) is folded into the metrics registry, and the
/// snapshot is written to the trace as the final `metrics` event — the cache-
/// effectiveness record `slic profile` reads back.  Returns the snapshot so the
/// run-ledger record can carry the identical metrics the summary printed.
fn print_run_summary(runner: &PipelineRunner, farm: Option<&FarmBackend>) -> MetricsSnapshot {
    let obs = runner.observability();
    if let Some(stats) = runner.engine().backend().kernel_stats() {
        obs.metrics.counter_set("kernel.sims", stats.sims);
        obs.metrics.counter_set("kernel.steps", stats.steps);
        obs.metrics
            .counter_set("kernel.rejected_steps", stats.rejected_steps);
        obs.metrics
            .counter_set("kernel.device_evals", stats.device_evals);
        let occupancy = stats
            .quad_occupancy()
            .map(|o| format!(", {:.0}% quad occupancy", o * 100.0))
            .unwrap_or_default();
        println!(
            "kernel ({}): {} sims, {:.1} steps/sim, {:.1} device evals/sim, \
             {} rejected steps{occupancy}",
            if stats.simd { "simd" } else { "scalar" },
            stats.sims,
            stats.steps_per_sim(),
            stats.device_evals_per_sim(),
            stats.rejected_steps,
        );
    }
    let dispatch = runner.engine().dispatch_stats();
    obs.metrics
        .counter_set("dispatch.lanes", dispatch.lanes_dispatched);
    obs.metrics
        .counter_set("dispatch.lanes.claimed", dispatch.lanes_claimed);
    obs.metrics
        .counter_set("dispatch.lanes.cached", dispatch.lanes_cached);
    obs.metrics
        .counter_set("dispatch.lanes.deferred", dispatch.lanes_deferred);
    if dispatch.lanes_dispatched > 0 {
        println!(
            "dispatch: {} lanes ({} solved, {} cache hits, {} deferred)",
            dispatch.lanes_dispatched,
            dispatch.lanes_claimed,
            dispatch.lanes_cached,
            dispatch.lanes_deferred,
        );
    }
    if let Some(farm) = farm {
        let stats = farm.stats();
        obs.metrics
            .counter_set("farm.jobs_completed", stats.jobs_completed);
        obs.metrics.counter_set("farm.failovers", stats.failovers);
        obs.metrics.counter_set("farm.reconnects", stats.reconnects);
        obs.metrics
            .counter_set("farm.heartbeats_missed", stats.heartbeats_missed);
        obs.metrics
            .counter_set("farm.degraded_jobs", stats.degraded_jobs);
        obs.metrics
            .counter_set("farm.lanes_remote", stats.lanes_remote);
        obs.metrics
            .counter_set("farm.lanes_local", stats.lanes_local);
        report_farm(farm);
    }
    let cache = runner.cache();
    obs.metrics.counter_set("cache.hits", cache.hits());
    obs.metrics
        .counter_set("cache.hits.warm", cache.warm_hits());
    obs.metrics.counter_set("cache.misses", cache.misses());
    let snapshot = obs.metrics.snapshot();
    let attrs = snapshot.attrs();
    let attr_refs: Vec<(&str, String)> = attrs
        .iter()
        .map(|(name, value)| (name.as_str(), value.clone()))
        .collect();
    obs.trace.event("metrics", &attr_refs);
    obs.trace.flush();
    print!("{}", snapshot.render());
    snapshot
}

/// Appends one [`RunRecord`] to the cross-run ledger when the resolved config named
/// one (`observability.ledger` / `--ledger`).  Called after the artifact is written,
/// so a ledger failure can never cost a run its results — but it still fails the
/// command loudly, because a silently-missing record would defeat `slic history`.
fn append_run_record(
    config: &slic_pipeline::ResolvedConfig,
    kind: &str,
    wall_ns: u64,
    sims_paid: u64,
    sims_cached: u64,
    artifact_json: &str,
    snapshot: MetricsSnapshot,
) -> Result<(), PipelineError> {
    let Some(path) = &config.ledger_path else {
        return Ok(());
    };
    let record = RunRecord {
        kind: kind.to_string(),
        fingerprint: config.fingerprint(),
        seed: config.seed,
        profile: config.profile.name().to_string(),
        backend: match &config.backend {
            BackendChoice::Local => "local".to_string(),
            BackendChoice::Farm { .. } => "farm".to_string(),
        },
        wall_ns,
        sims_paid,
        sims_cached,
        artifact_hash: slic_obs::ledger::content_hash(artifact_json.as_bytes()),
        snapshot,
    };
    slic_obs::ledger::append(path, &record).map_err(|err| {
        PipelineError::config(format!(
            "cannot append to ledger `{}`: {err}",
            path.display()
        ))
    })?;
    println!(
        "ledger: {kind} run recorded (fingerprint {}, artifact {}) -> {}",
        record.fingerprint,
        record.artifact_hash,
        path.display()
    );
    Ok(())
}

/// Prints the fleet's dispatch summary after a farmed run (the chaos CI job greps the
/// resilience counters out of this line).
fn report_farm(farm: &FarmBackend) {
    let stats = farm.stats();
    println!(
        "farm: {}/{} workers live; {} jobs dispatched, {} failovers; {} lanes remote, {} \
         lanes local fallback",
        farm.live_workers(),
        farm.fleet_size(),
        stats.jobs_completed,
        stats.failovers,
        stats.lanes_remote,
        stats.lanes_local,
    );
    println!(
        "farm resilience: {} reconnects, {} heartbeats missed, {} jobs degraded to local \
         solving",
        stats.reconnects, stats.heartbeats_missed, stats.degraded_jobs,
    );
}

/// The farm's post-run record in artifact form (display-only; never serialized).
fn farm_section(farm: &FarmBackend) -> FarmSection {
    let stats = farm.stats();
    FarmSection {
        fleet_size: farm.fleet_size(),
        workers_live: farm.live_workers(),
        jobs_completed: stats.jobs_completed,
        failovers: stats.failovers,
        reconnects: stats.reconnects,
        heartbeats_missed: stats.heartbeats_missed,
        degraded_jobs: stats.degraded_jobs,
        lanes_remote: stats.lanes_remote,
        lanes_local: stats.lanes_local,
    }
}

/// Parses a 1-based `--shard i/n` specification into `(index, count)`.
fn parse_shard_spec(text: &str) -> Result<(usize, usize), PipelineError> {
    let bad = || {
        PipelineError::config(format!(
            "`--shard {text}` is not a shard specification; expected `i/n` with 1 <= i <= n, \
             e.g. `2/4`"
        ))
    };
    let (index, count) = text.split_once('/').ok_or_else(bad)?;
    let index: usize = index.trim().parse().map_err(|_| bad())?;
    let count: usize = count.trim().parse().map_err(|_| bad())?;
    if index == 0 || count == 0 || index > count {
        return Err(bad());
    }
    Ok((index, count))
}

fn cmd_learn(flags: &BTreeMap<String, String>) -> Result<(), PipelineError> {
    let wall = MonotonicClock::new();
    let config = build_config(flags)?.resolve()?;
    let obs = build_observability(&config)?;
    let (runner, farm) = build_runner(config, &obs)?;
    let learning = runner.learn();
    let out = flags
        .get("out")
        .map(String::as_str)
        .unwrap_or("history.json");
    let database_json = learning.database.to_json()?;
    std::fs::write(out, &database_json)?;
    // A failed cache write must fail the command, not just warn from a destructor:
    // later shard workers rely on the warm state being on disk.
    {
        let _span = obs.trace.span("cache.flush", &[]);
        runner.cache().persist()?;
    }
    println!(
        "learned {} records from {} technologies in {} simulations -> {out}",
        learning.database.len(),
        learning.database.technology_names().len(),
        learning.simulation_cost,
    );
    let snapshot = print_run_summary(&runner, farm.as_deref());
    append_run_record(
        runner.config(),
        "learn",
        wall.now_ns(),
        learning.simulation_cost,
        runner.cache().hits(),
        &database_json,
        snapshot,
    )?;
    Ok(())
}

/// Assembles the worker's fault-injection script from its `--fault-*` flags, `None` when
/// no fault flag was given.
fn build_fault_plan(flags: &BTreeMap<String, String>) -> Result<Option<FaultPlan>, PipelineError> {
    let parse = |flag: &str| -> Result<Option<u64>, PipelineError> {
        flags
            .get(flag)
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|_| PipelineError::config(format!("`--{flag} {v}` is not an integer")))
            })
            .transpose()
    };
    let plan = FaultPlan {
        seed: parse("fault-seed")?.unwrap_or(0),
        drop_after_messages: parse("fault-drop-after")?,
        delay_ms: parse("fault-delay-ms")?,
        garbage_every: parse("fault-garbage-every")?,
        refuse_reconnects: parse("fault-refuse-reconnects")?.unwrap_or(0),
    };
    let scripted = plan.is_active() || flags.contains_key("fault-seed");
    Ok(scripted.then_some(plan))
}

fn cmd_worker(flags: &BTreeMap<String, String>) -> Result<(), PipelineError> {
    let max_batches = match flags.get("max-batches") {
        Some(v) => Some(v.parse::<u64>().map_err(|_| {
            PipelineError::config(format!("`--max-batches {v}` is not an integer"))
        })?),
        None => None,
    };
    let fault = build_fault_plan(flags)?;
    let trace = match flags.get("trace") {
        Some(path) => TraceRecorder::to_file(std::path::Path::new(path)).map_err(|err| {
            PipelineError::config(format!("cannot create trace file `{path}`: {err}"))
        })?,
        None => TraceRecorder::disabled(),
    };
    let outcome = match flags.get("listen") {
        Some(address) => {
            let listener = std::net::TcpListener::bind(address).map_err(|err| {
                PipelineError::config(format!("cannot bind worker to `{address}`: {err}"))
            })?;
            let bound = listener.local_addr()?;
            let options = WorkerOptions {
                name: format!("tcp:{bound}"),
                max_batches,
                fault,
                trace: trace.clone(),
            };
            // The broker (or a test) needs the resolved port when binding to :0.
            println!("worker listening on {bound}");
            use std::io::Write as _;
            std::io::stdout().flush()?;
            serve_listener(&listener, &options)?
        }
        None => {
            let options = WorkerOptions {
                name: format!("stdio:{}", std::process::id()),
                max_batches,
                fault,
                trace: trace.clone(),
            };
            serve_stdio(&options)?
        }
    };
    // Flush before interpreting the outcome: the abrupt-death branches below exit
    // nonzero, and the trace's salvaged prefix is exactly what `slic profile` reports.
    trace.flush();
    match outcome {
        ServeOutcome::Shutdown | ServeOutcome::Disconnected => Ok(()),
        // An exhausted batch limit is a deliberate abrupt death: exit nonzero so process
        // supervisors (and the failover tests) can tell it apart from an orderly stop.
        ServeOutcome::BatchLimit => Err(PipelineError::config(
            "worker reached its --max-batches limit and dropped the connection",
        )),
        // Only the stdio transport can surface a fault drop (a TCP listener goes back to
        // accept); the pipe is gone, so exit nonzero like any other abrupt death.
        ServeOutcome::FaultDrop => Err(PipelineError::config(
            "worker's fault plan dropped the stdio connection",
        )),
    }
}

fn cmd_cache_compact(flags: &BTreeMap<String, String>) -> Result<(), PipelineError> {
    let path = flags
        .get("cache")
        .ok_or_else(|| PipelineError::config("`slic cache compact` needs `--cache <file>`"))?;
    let options = CompactionOptions {
        drop_legacy: flags.contains_key("drop-legacy"),
        quarantine: flags.contains_key("quarantine"),
    };
    let trace = match flags.get("trace") {
        Some(out) => TraceRecorder::to_file(std::path::Path::new(out)).map_err(|err| {
            PipelineError::config(format!("cannot create trace file `{out}`: {err}"))
        })?,
        None => TraceRecorder::disabled(),
    };
    let report = {
        let _span = trace.span("cache.compact", &[("cache", path.clone())]);
        DiskSimCache::compact_with(path, options)?
    };
    trace.flush();
    println!(
        "compacted `{path}`: kept {} records, dropped {} superseded duplicates, evicted \
         {} legacy-kernel records, quarantined {} corrupt lines",
        report.kept, report.dropped, report.dropped_legacy, report.quarantined,
    );
    Ok(())
}

fn cmd_characterize(flags: &BTreeMap<String, String>) -> Result<(), PipelineError> {
    if flags.contains_key("shard") && flags.contains_key("liberty") {
        return Err(PipelineError::config(
            "`--liberty` with `--shard` would silently export a partial library; run the \
             shards, join them with `slic merge`, then render with `slic export`",
        ));
    }
    let wall = MonotonicClock::new();
    let config = build_config(flags)?.resolve()?;
    let export_grid = config.export_grid;
    let obs = build_observability(&config)?;
    let (runner, farm) = build_runner(config, &obs)?;
    let full_plan = CharacterizationPlan::from_config(runner.config())?;
    let plan = match flags.get("shard") {
        Some(spec) => {
            let (index, count) = parse_shard_spec(spec)?;
            let shard = full_plan.split(count)?.swap_remove(index - 1);
            println!(
                "shard {index}/{count}: {} of {} units over {} arcs of `{}` on {}",
                shard.len(),
                full_plan.len(),
                shard.arcs().len(),
                shard.library_name(),
                runner.config().technology.name(),
            );
            shard
        }
        None => {
            println!(
                "plan: {} units over {} arcs of `{}` on {}",
                full_plan.len(),
                full_plan.arcs().len(),
                full_plan.library_name(),
                runner.config().technology.name(),
            );
            full_plan
        }
    };

    let database = match flags.get("history") {
        Some(path) => HistoricalDatabase::from_json(&std::fs::read_to_string(path)?)
            .map_err(|err| PipelineError::config(format!("cannot parse `{path}`: {err}")))?,
        None => {
            println!("no --history given; learning inline...");
            runner.learn().database
        }
    };

    let mut artifact = runner.characterize(&plan, &database)?;
    // Attach the fleet record for reporting; the section is display-only and never
    // serialized, so the saved JSON stays byte-identical to a local run's.
    if let Some(farm) = &farm {
        artifact.farm = Some(farm_section(farm));
    }
    // Persist the (possibly disk-backed) cache before reporting success: shard workers
    // and reruns depend on it, and the drop-time flush can only warn.
    {
        let _span = obs.trace.span("cache.flush", &[]);
        runner.cache().persist()?;
    }
    let out = flags.get("out").map(String::as_str).unwrap_or("run.json");
    let artifact_json = artifact.to_json()?;
    std::fs::write(out, &artifact_json)?;
    println!(
        "characterized {}/{} arcs in {} simulations ({} cache hits) -> {out}",
        artifact.characterized.arcs.len(),
        plan.arcs().len(),
        artifact.total_simulations,
        artifact.cache_hits,
    );
    if let Some(variation) = &artifact.variation {
        println!(
            "variation: {} Monte Carlo seeds, {} sigma/skew tables",
            variation.process_seeds,
            variation.tables.len(),
        );
    }
    // Post-run summary — kernel, dispatch, farm, resilience, metrics, in that
    // documented order (see `print_run_summary`).
    let snapshot = print_run_summary(&runner, farm.as_deref());
    append_run_record(
        runner.config(),
        "characterize",
        wall.now_ns(),
        artifact.total_simulations,
        artifact.cache_hits,
        &artifact_json,
        snapshot,
    )?;
    if let Some(liberty_path) = flags.get("liberty") {
        if artifact.characterized.arcs.is_empty() {
            return Err(PipelineError::config(format!(
                "no arc obtained both delay and slew fits, so there is nothing to export to \
                 `{liberty_path}` (the run artifact `{out}` was still written); a Liberty \
                 export needs both metrics and a parameter-producing method (bayesian or lse)"
            )));
        }
        let text = match &artifact.variation {
            Some(variation) if !variation.tables.is_empty() => artifact
                .characterized
                .to_liberty_with_variation(runner.engine(), export_grid, variation)?,
            _ => artifact
                .characterized
                .to_liberty(runner.engine(), export_grid)?,
        };
        std::fs::write(liberty_path, text)?;
        println!("liberty -> {liberty_path}");
    }
    Ok(())
}

/// Argument splitter for `slic profile`: diff mode takes two positional trace files
/// after `--diff`; report mode takes one positional trace file before its flags.
fn cmd_profile_entry(args: &[String]) -> ExitCode {
    if args.first().map(String::as_str) == Some("--diff") {
        match (args.get(1), args.get(2)) {
            (Some(old), Some(new)) if !old.starts_with("--") && !new.starts_with("--") => {
                let flags = match parse_flags(&args[3..], THRESHOLD_FLAGS, &[]) {
                    Ok(flags) => flags,
                    Err(message) => {
                        eprintln!("error: {message}");
                        return ExitCode::from(2);
                    }
                };
                return cmd_profile_diff(old, new, &flags);
            }
            _ => {
                eprintln!(
                    "error: `slic profile --diff` needs two trace files, e.g. `slic profile \
                     --diff old.trace.jsonl new.trace.jsonl`"
                );
                return ExitCode::from(2);
            }
        }
    }
    match args.first().map(String::as_str) {
        Some(path) if !path.starts_with("--") => {
            let flags = match parse_flags(&args[1..], &["format", "top"], &[]) {
                Ok(flags) => flags,
                Err(message) => {
                    eprintln!("error: {message}");
                    return ExitCode::from(2);
                }
            };
            cmd_profile(path, &flags)
        }
        _ => {
            eprintln!(
                "error: `slic profile` needs a trace file, e.g. `slic profile run.trace.jsonl`"
            );
            ExitCode::from(2)
        }
    }
}

/// `slic profile <trace.jsonl>`: reconstruct the span tree of a trace sidecar.
///
/// A corrupt or truncated tail never hides the healthy prefix: every well-formed line
/// is salvaged into the report, the dropped-line count goes to stderr, and the exit
/// code is nonzero so CI can't mistake a damaged trace for a complete one.
fn cmd_profile(path: &str, flags: &BTreeMap<String, String>) -> ExitCode {
    let format = flags.get("format").map_or("md", String::as_str);
    if !matches!(format, "md" | "json" | "chrome") {
        eprintln!("error: unknown profile format `{format}` (expected md, json or chrome)");
        return ExitCode::from(2);
    }
    let top = match flags.get("top").map(|v| v.parse::<usize>()) {
        None => 10,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("error: `--top` expects an integer");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("error: cannot read trace `{path}`: {err}");
            return ExitCode::from(2);
        }
    };
    let parsed = slic_obs::profile::parse_trace(&text);
    if parsed.records.is_empty() {
        eprintln!(
            "error: `{path}` contains no parseable trace records ({} corrupt line(s))",
            parsed.dropped
        );
        return ExitCode::from(2);
    }
    match format {
        // The Perfetto export is a direct re-encoding of the salvaged records; it
        // needs no report (and `--top` has nothing to truncate).
        "chrome" => print!("{}", slic_obs::perfetto::render_chrome(&parsed)),
        "json" => print!(
            "{}",
            slic_obs::profile::render_json(&slic_obs::profile::build_report(&parsed, top))
        ),
        _ => print!(
            "{}",
            slic_obs::profile::render_md(&slic_obs::profile::build_report(&parsed, top))
        ),
    }
    if parsed.dropped > 0 {
        eprintln!(
            "warning: dropped {} corrupt/truncated line(s) from `{path}`; the report \
             covers the salvaged prefix only",
            parsed.dropped
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The threshold-override flags shared by `slic profile --diff` and `slic history`.
const THRESHOLD_FLAGS: &[&str] = &["config", "wall-pct", "counter-pct", "hit-rate-drop"];

/// Resolves the regression-gate thresholds: `observability.diff.*` from an optional
/// `--config` file first, CLI flag overrides on top, library defaults underneath.
fn resolve_thresholds(flags: &BTreeMap<String, String>) -> Result<DiffThresholds, String> {
    let mut thresholds = match flags.get("config") {
        Some(path) => RunConfig::load(path)
            .map_err(|err| err.to_string())?
            .observability
            .and_then(|knobs| knobs.diff)
            .map(|knobs| knobs.resolve())
            .unwrap_or_default(),
        None => DiffThresholds::default(),
    };
    let parse = |flag: &str| -> Result<Option<f64>, String> {
        flags
            .get(flag)
            .map(|v| {
                v.parse::<f64>()
                    .map_err(|_| format!("`--{flag} {v}` is not a number"))
            })
            .transpose()
    };
    if let Some(v) = parse("wall-pct")? {
        thresholds.wall_pct = v;
    }
    if let Some(v) = parse("counter-pct")? {
        thresholds.counter_pct = v;
    }
    if let Some(v) = parse("hit-rate-drop")? {
        thresholds.hit_rate_drop_pct = v;
    }
    Ok(thresholds)
}

/// `slic profile --diff <old> <new>`: regression-gate one trace against another.
///
/// Exits `FAILURE` on any gated regression (or a corrupt tail in either trace), `2`
/// on unreadable inputs — so CI distinguishes "slower" from "broken invocation".
fn cmd_profile_diff(old_path: &str, new_path: &str, flags: &BTreeMap<String, String>) -> ExitCode {
    let thresholds = match resolve_thresholds(flags) {
        Ok(thresholds) => thresholds,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let load = |path: &str| -> Result<(slic_obs::profile::ProfileReport, usize), String> {
        let text = std::fs::read_to_string(path)
            .map_err(|err| format!("cannot read trace `{path}`: {err}"))?;
        let parsed = slic_obs::profile::parse_trace(&text);
        if parsed.records.is_empty() {
            return Err(format!(
                "`{path}` contains no parseable trace records ({} corrupt line(s))",
                parsed.dropped
            ));
        }
        Ok((slic_obs::profile::build_report(&parsed, 0), parsed.dropped))
    };
    let ((old, old_dropped), (new, new_dropped)) = match (load(old_path), load(new_path)) {
        (Ok(old), Ok(new)) => (old, new),
        (Err(message), _) | (_, Err(message)) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let report = slic_obs::diff::diff_profiles(&old, &new, &thresholds);
    print!(
        "{}",
        report.render_md(&format!("profile diff: {old_path} -> {new_path}"))
    );
    let mut failed = !report.is_clean();
    if old_dropped + new_dropped > 0 {
        eprintln!(
            "warning: dropped {} corrupt/truncated line(s) across the two traces",
            old_dropped + new_dropped
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Argument splitter for `slic history`: one positional ledger file, then flags.
fn cmd_history_entry(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|p| !p.starts_with("--")) else {
        eprintln!("error: `slic history` needs a ledger file, e.g. `slic history runs.jsonl`");
        return ExitCode::from(2);
    };
    let mut allowed = THRESHOLD_FLAGS.to_vec();
    allowed.push("fingerprint");
    let flags = match parse_flags(&args[1..], &allowed, &["diff"]) {
        Ok(flags) => flags,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    cmd_history(path, &flags)
}

/// Renders monotonic nanoseconds as seconds with millisecond resolution.
fn format_wall(ns: u64) -> String {
    format!(
        "{}.{:03}s",
        ns / 1_000_000_000,
        ns % 1_000_000_000 / 1_000_000
    )
}

/// `slic history <runs.jsonl>`: list the cross-run ledger, or (`--diff`) gate the
/// newest run against the previous run with the same config fingerprint.
///
/// Alignment is by fingerprint, never by position: the ledger interleaves runs of
/// different configs (and of `learn` vs `characterize`), and comparing across
/// fingerprints would diff two different workloads.
fn cmd_history(path: &str, flags: &BTreeMap<String, String>) -> ExitCode {
    let parsed = match slic_obs::ledger::load(std::path::Path::new(path)) {
        Ok(parsed) => parsed,
        Err(err) => {
            eprintln!("error: cannot read ledger `{path}`: {err}");
            return ExitCode::from(2);
        }
    };
    if parsed.records.is_empty() {
        eprintln!(
            "error: `{path}` holds no readable run records ({} dropped line(s))",
            parsed.dropped
        );
        return ExitCode::from(2);
    }
    let dropped_warning = |failed: bool| -> ExitCode {
        if parsed.dropped > 0 {
            eprintln!(
                "warning: dropped {} corrupt/truncated line(s) from `{path}`; the \
                 ledger covers the salvaged records only",
                parsed.dropped
            );
            return ExitCode::FAILURE;
        }
        if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    };
    if !flags.contains_key("diff") {
        println!("# run ledger: {path}\n");
        println!("| # | kind | fingerprint | profile | backend | seed | wall | sims paid | cached | artifact |");
        println!("|--:|------|-------------|---------|---------|------|-----:|----------:|-------:|----------|");
        for (index, record) in parsed.records.iter().enumerate() {
            println!(
                "| {} | {} | {} | {} | {} | {:016x} | {} | {} | {} | {} |",
                index + 1,
                record.kind,
                record.fingerprint,
                record.profile,
                record.backend,
                record.seed,
                format_wall(record.wall_ns),
                record.sims_paid,
                record.sims_cached,
                record.artifact_hash,
            );
        }
        return dropped_warning(false);
    }
    let thresholds = match resolve_thresholds(flags) {
        Ok(thresholds) => thresholds,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let fingerprint = flags.get("fingerprint").cloned().unwrap_or_else(|| {
        parsed
            .records
            .last()
            .expect("records is non-empty")
            .fingerprint
            .clone()
    });
    let matching: Vec<_> = parsed
        .records
        .iter()
        .filter(|record| record.fingerprint == fingerprint)
        .collect();
    if matching.len() < 2 {
        eprintln!(
            "error: ledger `{path}` holds {} run(s) with fingerprint {fingerprint}; a diff \
             needs two",
            matching.len()
        );
        return ExitCode::from(2);
    }
    let old = matching[matching.len() - 2];
    let new = matching[matching.len() - 1];
    let report = slic_obs::diff::diff_runs(old, new, &thresholds);
    print!(
        "{}",
        report.render_md(&format!(
            "history diff: fingerprint {fingerprint} ({} vs {})",
            old.kind, new.kind
        ))
    );
    dropped_warning(!report.is_clean())
}

/// Argument splitter for `slic bench`: `diff <fresh.json> [<committed.json>]`.
fn cmd_bench_entry(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("diff") => {}
        Some(other) => {
            eprintln!("error: unknown bench action `{other}` (expected `diff`)");
            return ExitCode::from(2);
        }
        None => {
            eprintln!(
                "error: `slic bench` needs an action, e.g. `slic bench diff \
                 target/bench_fresh.json`"
            );
            return ExitCode::from(2);
        }
    }
    let Some(fresh) = args.get(1).filter(|p| !p.starts_with("--")) else {
        eprintln!(
            "error: `slic bench diff` needs a fresh report, e.g. `slic bench diff \
             target/bench_fresh.json [BENCH_transient.json]`"
        );
        return ExitCode::from(2);
    };
    let committed = match args.get(2) {
        Some(p) if !p.starts_with("--") => p.as_str(),
        Some(other) => {
            eprintln!("error: unexpected argument `{other}` for `slic bench diff`");
            return ExitCode::from(2);
        }
        None => "BENCH_transient.json",
    };
    if args.len() > 3 {
        eprintln!("error: `slic bench diff` takes at most two report paths");
        return ExitCode::from(2);
    }
    cmd_bench_diff(committed, fresh)
}

/// `slic bench diff <fresh.json> [<committed.json>]`: gate a fresh transient-kernel
/// bench report against the committed baseline.
///
/// Replaces `tools/bench_kernel_diff.py` with the same contract: one row per
/// committed `(variant, preset)` pair, a derived-speedup table, and a nonzero exit
/// when any fresh variant falls below half its committed throughput — the same
/// noise-tolerant floor the CI speedup gate applies.  A variant missing from the
/// fresh (reduced-mode) report is informational, not a regression.
fn cmd_bench_diff(committed_path: &str, fresh_path: &str) -> ExitCode {
    use slic_obs::profile::Json;
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|err| format!("cannot read bench report `{path}`: {err}"))?;
        slic_obs::profile::parse_json(&text).map_err(|err| format!("`{path}`: {err}"))
    };
    let (committed, fresh) = match (load(committed_path), load(fresh_path)) {
        (Ok(committed), Ok(fresh)) => (committed, fresh),
        (Err(message), _) | (_, Err(message)) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    // One (variant-name, preset) row per bench variant, in the report's file order.
    let variants = |report: &Json| -> Vec<(String, String, u64)> {
        let Some(Json::Arr(items)) = report.get("variants") else {
            return Vec::new();
        };
        items
            .iter()
            .filter_map(|v| {
                Some((
                    v.get("name")?.as_str()?.to_string(),
                    v.get("config")?.as_str()?.to_string(),
                    v.get("sims_per_sec")?.as_u64()?,
                ))
            })
            .collect()
    };
    let committed_variants = variants(&committed);
    let fresh_variants = variants(&fresh);
    if committed_variants.is_empty() {
        eprintln!("error: `{committed_path}` holds no bench variants");
        return ExitCode::from(2);
    }
    let mode = |report: &Json| match report.get("reduced") {
        Some(Json::Bool(true)) => "reduced",
        _ => "full",
    };
    let mut report = DiffReport::default();
    for (name, config, base) in &committed_variants {
        match fresh_variants
            .iter()
            .find(|(n, c, _)| n == name && c == config)
        {
            // Below half the committed throughput (a 50% drop) is the regression
            // floor; anything above it is run-to-run noise.
            Some((_, _, now)) => {
                report.push_drop_gated(&format!("{name}/{config} sims/s"), *base, *now, 50.0, 1)
            }
            None => report.push_info(&format!("{name}/{config} sims/s (missing)"), *base, 0),
        }
    }
    print!(
        "{}",
        report.render_md(&format!(
            "transient-kernel diff vs {committed_path} (committed {}, fresh {})",
            mode(&committed),
            mode(&fresh)
        ))
    );
    // The derived speedup ratios, committed vs fresh, for context (never gated: the
    // per-variant rows above already cover the regression surface).
    if let Some(Json::Obj(speedups)) = committed.get("speedups") {
        println!("\n{:<44}{:>10}{:>10}", "speedup", "committed", "fresh");
        for (key, base) in speedups {
            let Json::Num(base) = base else { continue };
            let now = match fresh.get("speedups").and_then(|s| s.get(key)) {
                Some(Json::Num(now)) => format!("{now:>9.2}x"),
                _ => format!("{:>10}", "(missing)"),
            };
            println!("{key:<44}{base:>9.2}x{now}");
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_merge(flags: &BTreeMap<String, String>) -> Result<(), PipelineError> {
    let inputs = flags
        .get("inputs")
        .ok_or_else(|| PipelineError::config("`slic merge` needs `--inputs a.json,b.json,...`"))?;
    let paths = comma_list(inputs);
    if paths.is_empty() {
        return Err(PipelineError::config("`--inputs` lists no artifact files"));
    }
    let mut shards = Vec::with_capacity(paths.len());
    for path in &paths {
        shards.push(RunArtifact::load(path).map_err(|err| {
            PipelineError::config(format!("cannot load shard artifact `{path}`: {err}"))
        })?);
    }
    let merged = RunArtifact::merge(&shards)?;
    let out = flags
        .get("out")
        .map(String::as_str)
        .unwrap_or("merged.json");
    merged.save(out)?;
    println!(
        "merged {} shards: {} of {} planned units, {} arcs characterized, {} simulations \
         ({} cache hits, {} misses) -> {out}",
        shards.len(),
        merged.units.len(),
        merged.planned_units,
        merged.characterized.arcs.len(),
        merged.total_simulations,
        merged.cache_hits,
        merged.cache_misses,
    );
    Ok(())
}

/// Rebuilds the artifact's engine (technology + profile transient settings) for export.
fn engine_for(
    artifact: &RunArtifact,
) -> Result<(CharacterizationEngine, RunProfile), PipelineError> {
    let technology = TechnologyNode::by_name(&artifact.technology).ok_or_else(|| {
        PipelineError::config(format!(
            "artifact references unknown technology `{}`",
            artifact.technology
        ))
    })?;
    let profile = RunProfile::from_name(&artifact.profile).ok_or_else(|| {
        PipelineError::config(format!(
            "artifact references unknown profile `{}`",
            artifact.profile
        ))
    })?;
    let engine = CharacterizationEngine::with_config(technology, profile.transient())?;
    Ok((engine, profile))
}

fn cmd_export(flags: &BTreeMap<String, String>) -> Result<(), PipelineError> {
    let run_path = flags.get("run").map(String::as_str).unwrap_or("run.json");
    let artifact = RunArtifact::load(run_path)?;
    if artifact.is_partial() {
        return Err(PipelineError::config(format!(
            "`{run_path}` is a shard artifact covering {} of {} planned units; exporting \
             it would silently produce a partial library — join the shards with `slic \
             merge` first",
            artifact.units.len(),
            artifact.planned_units
        )));
    }
    if artifact.characterized.arcs.is_empty() {
        return Err(PipelineError::config(format!(
            "`{run_path}` contains no fully characterized arcs to export"
        )));
    }
    let (engine, profile) = engine_for(&artifact)?;
    let text = if flags.contains_key("variation") {
        let variation = artifact
            .variation
            .as_ref()
            .filter(|v| !v.tables.is_empty())
            .ok_or_else(|| {
                PipelineError::config(format!(
                    "`{run_path}` has no variation tables to export; rerun `slic \
                     characterize --variation` first"
                ))
            })?;
        artifact.characterized.to_liberty_with_variation(
            &engine,
            profile.export_grid(),
            variation,
        )?
    } else {
        artifact
            .characterized
            .to_liberty(&engine, profile.export_grid())?
    };
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, text)?;
            println!(
                "exported {} arcs of `{}` -> {path}",
                artifact.characterized.arcs.len(),
                artifact.library,
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_report(flags: &BTreeMap<String, String>) -> Result<(), PipelineError> {
    let run_path = flags.get("run").map(String::as_str).unwrap_or("run.json");
    let artifact = RunArtifact::load(run_path)?;
    print!("{}", artifact.summary_markdown());
    Ok(())
}
