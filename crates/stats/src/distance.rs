//! Distribution- and point-error metrics.
//!
//! The paper scores each characterization method by its average absolute error in the mean
//! and standard deviation of delay / slew over the validation set (Eqs. 16–19), and Fig. 9
//! visually compares distributions.  This module adds the quantitative counterparts: mean
//! absolute relative error for scalar predictions and the Kolmogorov–Smirnov statistic for
//! whole distributions.

/// Relative error `|predicted − reference| / |reference|`.
///
/// Falls back to the absolute error when the reference is exactly zero so the metric stays
/// finite.
pub fn relative_error(predicted: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        (predicted - reference).abs()
    } else {
        (predicted - reference).abs() / reference.abs()
    }
}

/// Mean absolute relative error over paired predictions and references, in **percent**
/// (matching the paper's "prediction error (%)" axes).
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mean_relative_error_percent(predicted: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(
        predicted.len(),
        reference.len(),
        "prediction/reference length mismatch"
    );
    assert!(!predicted.is_empty(), "error metric over empty set");
    100.0
        * predicted
            .iter()
            .zip(reference)
            .map(|(&p, &r)| relative_error(p, r))
            .sum::<f64>()
        / predicted.len() as f64
}

/// Mean absolute error over paired predictions and references (the literal form of
/// Eqs. 16–19, without normalization).
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mean_absolute_error(predicted: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(
        predicted.len(),
        reference.len(),
        "prediction/reference length mismatch"
    );
    assert!(!predicted.is_empty(), "error metric over empty set");
    predicted
        .iter()
        .zip(reference)
        .map(|(&p, &r)| (p - r).abs())
        .sum::<f64>()
        / predicted.len() as f64
}

/// Two-sample Kolmogorov–Smirnov statistic: the maximum absolute difference between the
/// empirical CDFs of `a` and `b`.
///
/// Returns a value in `[0, 1]`; `0` means identical empirical distributions.
///
/// # Panics
///
/// Panics if either sample is empty or contains NaN.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "KS statistic of empty sample"
    );
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("NaN in KS input"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("NaN in KS input"));
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let mut i = 0usize;
    let mut j = 0usize;
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = if sa[i] <= sb[j] { sa[i] } else { sb[j] };
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / na;
        let fb = j as f64 / nb;
        d = d.max((fa - fb).abs());
    }
    d
}

/// Symmetric percentage difference `200·|a − b| / (|a| + |b|)`, useful for comparing two
/// characterizations where neither is the reference.  Returns `0` when both are zero.
pub fn symmetric_percent_difference(a: f64, b: f64) -> f64 {
    let denom = a.abs() + b.abs();
    if denom == 0.0 {
        0.0
    } else {
        200.0 * (a - b).abs() / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn relative_error_basic() {
        assert!((relative_error(11.0, 10.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(9.0, 10.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(0.5, 0.0), 0.5);
        assert_eq!(relative_error(5.0, 5.0), 0.0);
    }

    #[test]
    fn mean_relative_error_is_percent() {
        let err = mean_relative_error_percent(&[11.0, 9.0], &[10.0, 10.0]);
        assert!((err - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mean_absolute_error_basic() {
        let err = mean_absolute_error(&[1.0, 2.0, 3.0], &[1.0, 1.0, 1.0]);
        assert!((err - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = mean_absolute_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn empty_error_set_rejected() {
        let _ = mean_relative_error_percent(&[], &[]);
    }

    #[test]
    fn ks_identical_samples_is_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_statistic(&a, &a), 0.0);
    }

    #[test]
    fn ks_disjoint_samples_is_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_shifted_samples_is_intermediate() {
        let a: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let b: Vec<f64> = (0..100).map(|i| i as f64 / 100.0 + 0.25).collect();
        let d = ks_statistic(&a, &b);
        assert!(d > 0.15 && d < 0.4, "d = {d}");
    }

    #[test]
    fn ks_is_symmetric() {
        let a = [1.0, 5.0, 2.0, 8.0];
        let b = [0.5, 3.0, 9.0];
        assert!((ks_statistic(&a, &b) - ks_statistic(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn symmetric_difference_basic() {
        assert_eq!(symmetric_percent_difference(0.0, 0.0), 0.0);
        assert!((symmetric_percent_difference(1.0, 1.0)).abs() < 1e-12);
        assert!((symmetric_percent_difference(2.0, 1.0) - 200.0 / 3.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_ks_in_unit_interval(a in proptest::collection::vec(-1e3f64..1e3, 1..64),
                                    b in proptest::collection::vec(-1e3f64..1e3, 1..64)) {
            let d = ks_statistic(&a, &b);
            prop_assert!((0.0..=1.0).contains(&d));
        }

        #[test]
        fn prop_relative_error_nonnegative(p in -1e3f64..1e3, r in -1e3f64..1e3) {
            prop_assert!(relative_error(p, r) >= 0.0);
        }

        #[test]
        fn prop_mae_zero_iff_equal(values in proptest::collection::vec(-1e3f64..1e3, 1..32)) {
            prop_assert_eq!(mean_absolute_error(&values, &values), 0.0);
        }
    }
}
