//! Simplified virtual-source MOSFET compact model.
//!
//! The model follows the structure of the MIT virtual-source (MVS) model that the paper
//! cites for its effective-current definition: the drain current is the product of the
//! channel charge at the virtual source, the injection velocity, and a saturation function
//! of the drain voltage,
//!
//! ```text
//! Id = W · Cinv · q_ov(Vgs, Vds) · v_x0 · Fsat(Vds)
//! q_ov  = n·φt · ln(1 + exp((Vgs − Vth0 + δ·Vds) / (n·φt)))     (smooth overdrive, DIBL)
//! Fsat  = (Vds/Vdsat) / (1 + (Vds/Vdsat)^β)^(1/β)               (linear → saturation)
//! ```
//!
//! This captures subthreshold conduction, DIBL, velocity saturation and the super-linear
//! growth of delay at low `Vdd` — the physics the characterization experiments rely on —
//! while remaining cheap enough to evaluate millions of times inside the transient solver.

use serde::{Deserialize, Serialize};
use slic_units::{Amperes, Volts};

/// Thermal voltage at room temperature (300 K), in volts.
pub const THERMAL_VOLTAGE: f64 = 0.02585;

/// Transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Polarity {
    /// N-channel device (pull-down network).
    Nmos,
    /// P-channel device (pull-up network).
    Pmos,
}

impl Polarity {
    /// Returns the complementary polarity.
    pub fn complement(self) -> Self {
        match self {
            Polarity::Nmos => Polarity::Pmos,
            Polarity::Pmos => Polarity::Nmos,
        }
    }
}

/// Physical parameters of a single (unit-width) device.
///
/// All values are in SI units.  A `DeviceParams` value describes the *nominal* device of a
/// technology node; process variation is applied by
/// [`ProcessSample::apply`](crate::variation::ProcessSample::apply).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceParams {
    /// Threshold voltage magnitude at `Vds = 0` (V).
    pub vth0: f64,
    /// Drain-induced barrier lowering coefficient (V of Vth shift per V of Vds).
    pub dibl: f64,
    /// Subthreshold slope ideality factor `n` (dimensionless, ≥ 1).
    pub ss_factor: f64,
    /// Virtual-source injection velocity (m/s).
    pub vx0: f64,
    /// Effective inversion-charge capacitance per unit gate area (F/m²).
    pub cinv: f64,
    /// Device width of the unit transistor (m).
    pub width: f64,
    /// Drain saturation voltage scale (V).
    pub vdsat: f64,
    /// Saturation-transition sharpness exponent `β` (dimensionless, ≈ 1.4–2).
    pub beta_sat: f64,
    /// Gate capacitance of the unit device (F) as seen by a driving stage.
    pub gate_cap: f64,
    /// Drain junction/parasitic capacitance of the unit device (F).
    pub drain_cap: f64,
}

impl DeviceParams {
    /// Validates that all parameters are physically meaningful.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let checks: [(bool, &str); 9] = [
            (
                self.vth0 > 0.0 && self.vth0 < 1.5,
                "vth0 must be in (0, 1.5) V",
            ),
            (
                self.dibl >= 0.0 && self.dibl < 0.5,
                "dibl must be in [0, 0.5)",
            ),
            (
                self.ss_factor >= 1.0 && self.ss_factor < 3.0,
                "ss_factor must be in [1, 3)",
            ),
            (self.vx0 > 0.0, "vx0 must be positive"),
            (self.cinv > 0.0, "cinv must be positive"),
            (self.width > 0.0, "width must be positive"),
            (self.vdsat > 0.0, "vdsat must be positive"),
            (self.beta_sat >= 1.0, "beta_sat must be >= 1"),
            (
                self.gate_cap >= 0.0 && self.drain_cap >= 0.0,
                "capacitances must be non-negative",
            ),
        ];
        for (ok, msg) in checks {
            if !ok {
                return Err(msg.to_string());
            }
        }
        Ok(())
    }

    /// Returns a copy with the width scaled by `factor` (gate and drain capacitance scale
    /// along with it).  Used to build the equivalent-inverter devices of multi-input cells.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn scaled_width(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "width scale factor must be positive");
        Self {
            width: self.width * factor,
            gate_cap: self.gate_cap * factor,
            drain_cap: self.drain_cap * factor,
            ..self.clone()
        }
    }
}

/// A transistor: polarity plus parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mosfet {
    polarity: Polarity,
    params: DeviceParams,
}

impl Mosfet {
    /// Creates an N-channel device.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`DeviceParams::validate`].
    pub fn nmos(params: DeviceParams) -> Self {
        Self::new(Polarity::Nmos, params)
    }

    /// Creates a P-channel device.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`DeviceParams::validate`].
    pub fn pmos(params: DeviceParams) -> Self {
        Self::new(Polarity::Pmos, params)
    }

    /// Creates a device of the given polarity.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`DeviceParams::validate`].
    pub fn new(polarity: Polarity, params: DeviceParams) -> Self {
        if let Err(msg) = params.validate() {
            panic!("invalid device parameters: {msg}");
        }
        Self { polarity, params }
    }

    /// The device polarity.
    pub fn polarity(&self) -> Polarity {
        self.polarity
    }

    /// The device parameters.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Returns a copy with the width scaled by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn scaled_width(&self, factor: f64) -> Self {
        Self {
            polarity: self.polarity,
            params: self.params.scaled_width(factor),
        }
    }

    /// Compiles this device for repeated raw-`f64` evaluation (the transient hot path).
    pub fn compile(&self) -> crate::compiled::CompiledDevice {
        crate::compiled::CompiledDevice::from_params(&self.params)
    }

    /// Drain current magnitude for *terminal-magnitude* voltages.
    ///
    /// `vgs` and `vds` are interpreted as the magnitudes of the gate-source and drain-source
    /// voltages in the polarity's own reference frame (i.e. pass `|Vgs|` and `|Vds|`); the
    /// returned current is always non-negative.  Negative inputs are clamped to zero, which
    /// models the device being off / in cut-off for reverse bias within the accuracy needed
    /// by the switching simulator.
    ///
    /// Delegates to [`CompiledDevice`](crate::compiled::CompiledDevice) so one-off DC
    /// evaluations and the transient solver's hoisted inner loop agree bit for bit; callers
    /// evaluating in a loop should [`compile`](Self::compile) once instead.
    pub fn drain_current(&self, vgs: Volts, vds: Volts) -> Amperes {
        Amperes(self.compile().drain_current(vgs.value(), vds.value()))
    }

    /// Saturation drain current at `Vgs = Vds = Vdd`.
    pub fn idsat(&self, vdd: Volts) -> Amperes {
        self.drain_current(vdd, vdd)
    }

    /// Effective switching current per Eq. (4) of the paper:
    /// `Ieff = [ Id(Vgs=Vdd, Vds=Vdd/2) + Id(Vgs=Vdd/2, Vds=Vdd) ] / 2`.
    pub fn ieff(&self, vdd: Volts) -> Amperes {
        let half = Volts(vdd.value() * 0.5);
        let high = self.drain_current(vdd, half);
        let low = self.drain_current(half, vdd);
        Amperes(0.5 * (high.value() + low.value()))
    }

    /// Subthreshold leakage current at `Vgs = 0`, `Vds = Vdd`.
    pub fn leakage(&self, vdd: Volts) -> Amperes {
        self.drain_current(Volts(0.0), vdd)
    }

    /// Total capacitance the device presents on its gate terminal.
    pub fn gate_capacitance(&self) -> f64 {
        self.params.gate_cap
    }

    /// Total parasitic capacitance the device presents on its drain terminal.
    pub fn drain_capacitance(&self) -> f64 {
        self.params.drain_cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reference_params() -> DeviceParams {
        DeviceParams {
            vth0: 0.32,
            dibl: 0.08,
            ss_factor: 1.25,
            vx0: 8.5e4,
            cinv: 1.6e-2,
            width: 2.0e-7,
            vdsat: 0.22,
            beta_sat: 1.8,
            gate_cap: 0.35e-15,
            drain_cap: 0.22e-15,
        }
    }

    #[test]
    fn validation_accepts_reference_and_rejects_bad_values() {
        assert!(reference_params().validate().is_ok());
        let mut p = reference_params();
        p.vth0 = -0.1;
        assert!(p.validate().is_err());
        let mut p = reference_params();
        p.ss_factor = 0.5;
        assert!(p.validate().is_err());
        let mut p = reference_params();
        p.beta_sat = 0.2;
        assert!(p.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid device parameters")]
    fn constructor_panics_on_invalid_params() {
        let mut p = reference_params();
        p.vx0 = -1.0;
        let _ = Mosfet::nmos(p);
    }

    #[test]
    fn current_is_positive_and_off_at_zero_vds() {
        let m = Mosfet::nmos(reference_params());
        assert_eq!(m.drain_current(Volts(0.8), Volts(0.0)).value(), 0.0);
        assert!(m.drain_current(Volts(0.8), Volts(0.8)).value() > 0.0);
        // Negative magnitudes are clamped (device off).
        assert!(m.drain_current(Volts(-0.5), Volts(0.8)).value() < 1e-7);
    }

    #[test]
    fn current_magnitude_is_in_microampere_range() {
        let m = Mosfet::nmos(reference_params());
        let id = m.idsat(Volts(0.8)).value();
        assert!(id > 1e-6 && id < 1e-3, "Idsat = {id}");
    }

    #[test]
    fn current_increases_with_vgs_and_vds() {
        let m = Mosfet::nmos(reference_params());
        let low = m.drain_current(Volts(0.5), Volts(0.8)).value();
        let high = m.drain_current(Volts(0.8), Volts(0.8)).value();
        assert!(high > low);
        let lin = m.drain_current(Volts(0.8), Volts(0.05)).value();
        let sat = m.drain_current(Volts(0.8), Volts(0.8)).value();
        assert!(sat > lin);
    }

    #[test]
    fn current_saturates_with_vds() {
        let m = Mosfet::nmos(reference_params());
        let at_sat = m.drain_current(Volts(0.8), Volts(0.7)).value();
        let beyond = m.drain_current(Volts(0.8), Volts(0.9)).value();
        // DIBL keeps a slight increase, but it must be much less than in the linear region.
        let linear_slope = m.drain_current(Volts(0.8), Volts(0.1)).value()
            - m.drain_current(Volts(0.8), Volts(0.05)).value();
        assert!((beyond - at_sat) < linear_slope);
    }

    #[test]
    fn subthreshold_conduction_is_exponential() {
        let m = Mosfet::nmos(reference_params());
        let i1 = m.drain_current(Volts(0.10), Volts(0.8)).value();
        let i2 = m.drain_current(Volts(0.20), Volts(0.8)).value();
        // 100 mV of gate drive deep in subthreshold should give well over 10x current.
        assert!(i2 / i1 > 10.0, "ratio = {}", i2 / i1);
    }

    #[test]
    fn ieff_is_between_half_and_full_saturation_current() {
        let m = Mosfet::nmos(reference_params());
        let vdd = Volts(0.8);
        let ieff = m.ieff(vdd).value();
        let idsat = m.idsat(vdd).value();
        assert!(ieff < idsat);
        assert!(ieff > 0.2 * idsat);
    }

    #[test]
    fn leakage_is_orders_of_magnitude_below_drive() {
        let m = Mosfet::nmos(reference_params());
        let vdd = Volts(0.8);
        assert!(m.leakage(vdd).value() < 1e-3 * m.idsat(vdd).value());
    }

    #[test]
    fn width_scaling_scales_current_and_caps_linearly() {
        let m = Mosfet::nmos(reference_params());
        let m2 = m.scaled_width(2.0);
        let vdd = Volts(0.8);
        let ratio = m2.idsat(vdd).value() / m.idsat(vdd).value();
        assert!((ratio - 2.0).abs() < 1e-9);
        assert!((m2.gate_capacitance() - 2.0 * m.gate_capacitance()).abs() < 1e-30);
        assert!((m2.drain_capacitance() - 2.0 * m.drain_capacitance()).abs() < 1e-30);
    }

    #[test]
    fn polarity_helpers() {
        assert_eq!(Polarity::Nmos.complement(), Polarity::Pmos);
        assert_eq!(Polarity::Pmos.complement(), Polarity::Nmos);
        let m = Mosfet::pmos(reference_params());
        assert_eq!(m.polarity(), Polarity::Pmos);
        assert_eq!(m.params().vth0, reference_params().vth0);
    }

    proptest! {
        #[test]
        fn prop_current_monotone_in_vgs(vgs1 in 0.0f64..1.0, vgs2 in 0.0f64..1.0,
                                        vds in 0.05f64..1.0) {
            let m = Mosfet::nmos(reference_params());
            let (lo, hi) = if vgs1 <= vgs2 { (vgs1, vgs2) } else { (vgs2, vgs1) };
            let i_lo = m.drain_current(Volts(lo), Volts(vds)).value();
            let i_hi = m.drain_current(Volts(hi), Volts(vds)).value();
            prop_assert!(i_hi >= i_lo - 1e-18);
        }

        #[test]
        fn prop_current_monotone_in_vds(vds1 in 0.0f64..1.0, vds2 in 0.0f64..1.0,
                                        vgs in 0.0f64..1.0) {
            let m = Mosfet::nmos(reference_params());
            let (lo, hi) = if vds1 <= vds2 { (vds1, vds2) } else { (vds2, vds1) };
            let i_lo = m.drain_current(Volts(vgs), Volts(lo)).value();
            let i_hi = m.drain_current(Volts(vgs), Volts(hi)).value();
            prop_assert!(i_hi >= i_lo - 1e-18);
        }

        #[test]
        fn prop_ieff_scales_with_width(factor in 0.25f64..8.0, vdd in 0.6f64..1.0) {
            let m = Mosfet::nmos(reference_params());
            let scaled = m.scaled_width(factor);
            let r = scaled.ieff(Volts(vdd)).value() / m.ieff(Volts(vdd)).value();
            prop_assert!((r - factor).abs() < 1e-6 * factor);
        }

        #[test]
        fn prop_current_finite(vgs in -0.5f64..1.5, vds in -0.5f64..1.5) {
            let m = Mosfet::nmos(reference_params());
            prop_assert!(m.drain_current(Volts(vgs), Volts(vds)).value().is_finite());
        }
    }
}
