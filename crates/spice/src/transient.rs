//! Adaptive-step transient simulation of a single switching event.
//!
//! The circuit being integrated is the cell's equivalent inverter (Fig. 1(b) of the paper)
//! driving its output load:
//!
//! ```text
//!            Vdd
//!             |
//!          [ PMOS ]  vgs_p = Vdd − vin,  vds_p = Vdd − vout
//!             |
//!   vin ──────┼────────── vout ──┬─────────┐
//!             |                  |         |
//!          [ NMOS ]            Cload   Cpar (+ Miller Cm)
//!             |                  |         |
//!            GND                GND       GND
//! ```
//!
//! The single state variable is the output voltage; the input is an ideal voltage ramp with
//! the requested slew.  The ODE `C_tot · dVout/dt = I_pmos − I_nmos + Cm · dVin/dt` is
//! integrated with the **Bogacki–Shampine 3(2) embedded pair**: each step produces a
//! third-order solution plus a second-order error estimate from the same stages, a PI
//! controller adapts the step size to hold the local truncation error at a budget derived
//! from the configuration, and the FSAL (first-same-as-last) property reuses the final
//! stage of an accepted step as the first stage of the next — three derivative evaluations
//! per accepted step instead of the five the seed RK4 kernel paid.  The 20 % / 50 % / 80 %
//! crossing times are recovered by bisecting the cubic Hermite interpolant of each step
//! (the stage derivatives at both step ends are already available), which keeps the
//! measured delay and slew accurate even at the larger steps the error controller allows.
//!
//! All device physics is evaluated through [`CompiledInverter`]: the per-simulation model
//! constants are hoisted once per lane, and the inner loop runs on raw `f64` with no unit
//! wrappers and no `powf`.
//!
//! The seed's classical RK4 kernel is kept, bit-compatible, as
//! [`simulate_switching_rk4`]: it is the golden reference the parity suite and the bench
//! regression gate compare against.

use crate::input::InputPoint;
use crate::measure::{
    TimingMeasurement, DELAY_THRESHOLD, SLEW_HIGH_THRESHOLD, SLEW_LOW_THRESHOLD, SLEW_SCALE,
};
use serde::{Deserialize, Serialize};
use slic_cells::{EquivalentInverter, TimingArc, Transition};
use slic_device::CompiledInverter;
use slic_units::Seconds;
use std::error::Error;
use std::fmt;

/// Tuning knobs of the transient solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientConfig {
    /// Maximum output-voltage change allowed per step, as a fraction of `Vdd`.  The
    /// embedded-pair integrator derives its local-truncation-error budget from this same
    /// knob, so one configuration keys both kernels (and the simulation cache).
    pub dv_max_fraction: f64,
    /// Stimulus-resolution knob: the RK4 reference kernel caps its ramp steps at
    /// `ramp_time / min_steps_per_ramp` (so it takes at least this many steps across the
    /// input ramp).  The embedded-pair kernel senses the stimulus through its error
    /// estimate and lands exactly on the ramp-end kink, so it derives a 16×-relaxed cap
    /// from the same knob and may resolve the ramp in as few as `min_steps_per_ramp / 16`
    /// steps.
    pub min_steps_per_ramp: usize,
    /// Simulation horizon as a multiple of the estimated switching time constant.
    pub max_time_factor: f64,
    /// Gate-to-drain (Miller) coupling capacitance as a fraction of the cell input
    /// capacitance.
    pub miller_fraction: f64,
}

impl TransientConfig {
    /// Accuracy-oriented settings used for baseline ("golden") characterization.
    pub fn accurate() -> Self {
        Self {
            dv_max_fraction: 1.0 / 400.0,
            min_steps_per_ramp: 200,
            max_time_factor: 80.0,
            miller_fraction: 0.25,
        }
    }

    /// Faster settings for large Monte Carlo sweeps; roughly 3× fewer device evaluations at
    /// a delay error well below 1 %.
    pub fn fast() -> Self {
        Self {
            dv_max_fraction: 1.0 / 150.0,
            min_steps_per_ramp: 80,
            max_time_factor: 80.0,
            miller_fraction: 0.25,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.dv_max_fraction > 0.0 && self.dv_max_fraction < 0.1) {
            return Err("dv_max_fraction must be in (0, 0.1)".to_string());
        }
        if self.min_steps_per_ramp < 10 {
            return Err("min_steps_per_ramp must be at least 10".to_string());
        }
        if self.max_time_factor < 5.0 {
            return Err("max_time_factor must be at least 5".to_string());
        }
        if !(0.0..1.0).contains(&self.miller_fraction) {
            return Err("miller_fraction must be in [0, 1)".to_string());
        }
        Ok(())
    }
}

impl Default for TransientConfig {
    fn default() -> Self {
        Self::accurate()
    }
}

/// Error returned when a switching simulation cannot produce a measurement.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TransientError {
    /// The output never completed its transition within the simulation horizon — typically
    /// a sign that the supply is far below threshold or the load is unrealistically large.
    IncompleteTransition {
        /// The horizon that was simulated, in seconds.
        horizon: f64,
        /// The last output voltage reached, in volts.
        last_output: f64,
    },
    /// The configuration failed validation.
    InvalidConfig(String),
}

impl fmt::Display for TransientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransientError::IncompleteTransition { horizon, last_output } => write!(
                f,
                "output transition incomplete after {horizon:.3e} s (last output {last_output:.3} V)"
            ),
            TransientError::InvalidConfig(msg) => write!(f, "invalid transient config: {msg}"),
        }
    }
}

impl Error for TransientError {}

/// Per-simulation instrumentation: how much work one transient integration performed.
///
/// `device_evals` counts individual transistor-model evaluations (each derivative
/// evaluation of the output node costs two — one PMOS, one NMOS); this is the quantity the
/// `BENCH_transient.json` artifact reports as `device_evals_per_sim`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransientStats {
    /// Accepted integration steps.
    pub steps: u64,
    /// Step attempts rejected by the embedded error estimate (always zero for the RK4
    /// reference kernel, which has no error control).
    pub rejected_steps: u64,
    /// Transistor-model evaluations.
    pub device_evals: u64,
}

impl TransientStats {
    pub(crate) fn add_derivative_evals(&mut self, n: u64) {
        self.device_evals += 2 * n;
    }

    /// Folds another simulation's counters into this aggregate.
    pub fn merge(&mut self, other: &TransientStats) {
        self.steps += other.steps;
        self.rejected_steps += other.rejected_steps;
        self.device_evals += other.device_evals;
    }
}

// Embedded-pair step-control constants.  ALPHA/BETA are the standard PI exponents for a
// third-order method; the LTE budget ties the controller to the same `dv_max_fraction`
// knob that sizes the RK4 reference steps, at a fraction small enough that the pair's
// dense-output measurements stay within 0.5 % of the reference across the parity grid.
const SAFETY: f64 = 0.9;
const PI_ALPHA: f64 = 0.7 / 3.0;
const PI_BETA: f64 = 0.4 / 3.0;
const MIN_SHRINK: f64 = 0.2;
const MAX_GROWTH: f64 = 5.0;
const LTE_BUDGET_FRACTION: f64 = 0.01;
/// The error-controlled integrator may take ramp steps this many times larger than the
/// RK4 stimulus-resolution cap: the embedded estimate senses the stimulus through the
/// derivative, and the ramp-end kink is stepped onto exactly, so the hard cap only guards
/// against skipping the ramp entirely.
const RAMP_CAP_RELAX: f64 = 16.0;
/// Bisection iterations when locating a threshold crossing on the cubic Hermite
/// interpolant of one step (resolves the crossing to `dt · 2⁻³²`).
const HERMITE_BISECTIONS: u32 = 32;

/// Everything about one `(equivalent inverter, arc, input point, config)` simulation that
/// is constant across integration steps, pre-computed once per lane.
#[derive(Debug, Clone)]
pub(crate) struct TransientProblem {
    pub(crate) vdd: f64,
    pub(crate) ramp_time: f64,
    pub(crate) inv_ramp_time: f64,
    /// Signed `dVin/dt` during the ramp.
    pub(crate) ramp_slope: f64,
    pub(crate) input_rising: bool,
    output_rising: bool,
    pub(crate) cm: f64,
    pub(crate) inv_c_total: f64,
    pub(crate) inv: CompiledInverter,
    horizon: f64,
    dv_max: f64,
    dt_min: f64,
    /// RK4 stimulus-resolution cap during the ramp.
    dt_ramp: f64,
    /// Error-controlled-integrator cap during the ramp.
    dt_ramp_relaxed: f64,
    /// Step cap after the ramp (both kernels).
    dt_tail_cap: f64,
    /// Local-truncation-error budget per step, in volts.
    err_tol: f64,
    thresholds: [f64; 3],
    v0: f64,
}

impl TransientProblem {
    pub(crate) fn new(
        eq: &EquivalentInverter,
        arc: &TimingArc,
        point: &InputPoint,
        config: &TransientConfig,
    ) -> Self {
        let vdd = point.vdd.value();
        let ramp_time = point.sin.value();
        let output_rising = arc.output_transition() == Transition::Rise;
        let input_rising = !output_rising;

        // Total capacitance on the output node.
        let cm = config.miller_fraction * eq.input_cap().value();
        let c_total = point.cload.value() + eq.output_parasitic_cap().value() + cm;

        // Time-step bounds: resolve the ramp, then adapt to the output slope.
        let drive = eq.driving_device(arc.output_transition());
        let i_drive = drive.idsat(point.vdd).value().max(1e-12);
        let tau = c_total * vdd / i_drive;
        let horizon = ramp_time + config.max_time_factor * tau;
        let dt_ramp = ramp_time / config.min_steps_per_ramp as f64;
        let dt_min = (tau / 2_000.0).min(dt_ramp);
        let dv_max = config.dv_max_fraction * vdd;

        // Threshold set, expressed as absolute voltages in crossing order.
        let thresholds = if output_rising {
            [
                SLEW_LOW_THRESHOLD * vdd,
                DELAY_THRESHOLD * vdd,
                SLEW_HIGH_THRESHOLD * vdd,
            ]
        } else {
            [
                SLEW_HIGH_THRESHOLD * vdd,
                DELAY_THRESHOLD * vdd,
                SLEW_LOW_THRESHOLD * vdd,
            ]
        };

        Self {
            vdd,
            ramp_time,
            inv_ramp_time: 1.0 / ramp_time,
            ramp_slope: if input_rising {
                vdd / ramp_time
            } else {
                -vdd / ramp_time
            },
            input_rising,
            output_rising,
            cm,
            inv_c_total: 1.0 / c_total,
            inv: CompiledInverter::new(eq.pmos(), eq.nmos()),
            horizon,
            dv_max,
            dt_min,
            dt_ramp,
            dt_ramp_relaxed: dt_ramp * RAMP_CAP_RELAX,
            dt_tail_cap: tau / 20.0,
            err_tol: LTE_BUDGET_FRACTION * dv_max,
            thresholds,
            v0: if output_rising { 0.0 } else { vdd },
        }
    }

    /// The output-voltage derivative `dVout/dt` at `(t, vout)`: two compiled-device
    /// evaluations plus the Miller feed-through of the input ramp.
    #[inline]
    fn f(&self, t: f64, vout: f64) -> f64 {
        let x = (t * self.inv_ramp_time).clamp(0.0, 1.0);
        let vin = if self.input_rising {
            self.vdd * x
        } else {
            self.vdd * (1.0 - x)
        };
        let dvin_dt = if t < 0.0 || t > self.ramp_time {
            0.0
        } else {
            self.ramp_slope
        };
        (self.inv.output_current(self.vdd, vin, vout) + self.cm * dvin_dt) * self.inv_c_total
    }

    /// Whether `threshold` is crossed when the output moves from `v` to `v_next`.
    #[inline]
    fn crossed(&self, threshold: f64, v: f64, v_next: f64) -> bool {
        if self.output_rising {
            v < threshold && v_next >= threshold
        } else {
            v > threshold && v_next <= threshold
        }
    }
}

/// The integration state of one simulation lane.
///
/// The scalar entry points and the batched kernel drive lanes through the *same*
/// [`step`](Self::step) method, which is what guarantees that batch lane `i` is bitwise
/// identical to the scalar simulation of the same problem.
#[derive(Debug, Clone)]
pub(crate) struct LaneState {
    pub(crate) t: f64,
    pub(crate) v: f64,
    /// Proposed size of the next step.
    dt: f64,
    /// FSAL derivative: `f(t, v)`, carried over from the last accepted step.
    pub(crate) k1: f64,
    /// Error norm of the previous accepted step (PI controller memory).
    err_prev: f64,
    crossings: [Option<f64>; 3],
    finished: bool,
    stats: TransientStats,
}

impl LaneState {
    pub(crate) fn new(p: &TransientProblem) -> Self {
        let mut stats = TransientStats::default();
        let k1 = p.f(0.0, p.v0);
        stats.add_derivative_evals(1);
        let slope = k1.abs().max(1e-30);
        let dt = (p.dv_max / slope).clamp(p.dt_min, p.dt_ramp_relaxed.min(p.ramp_time));
        Self {
            t: 0.0,
            v: p.v0,
            dt,
            k1,
            err_prev: 1.0,
            crossings: [None; 3],
            finished: false,
            stats,
        }
    }

    pub(crate) fn finished(&self) -> bool {
        self.finished
    }

    /// Advances the lane by one *accepted* Bogacki–Shampine step (rejected attempts loop
    /// internally), records threshold crossings from the step's Hermite interpolant, and
    /// retires the lane once every crossing is found or the horizon is reached.
    pub(crate) fn step(&mut self, p: &TransientProblem) {
        debug_assert!(!self.finished, "stepping a retired lane");
        loop {
            let dt = self.propose_dt(p);

            // Bogacki–Shampine 3(2) stages; k1 is inherited (FSAL).
            let k1 = self.k1;
            let k2 = p.f(self.t + 0.5 * dt, self.v + 0.5 * dt * k1);
            let k3 = p.f(self.t + 0.75 * dt, self.v + 0.75 * dt * k2);
            let v_next = self.v + dt * ((2.0 / 9.0) * k1 + (1.0 / 3.0) * k2 + (4.0 / 9.0) * k3);
            let t_next = self.t + dt;
            let k4 = p.f(t_next, v_next);

            if self.finish_attempt(p, dt, k2, k3, k4, v_next, t_next) {
                return;
            }
        }
    }

    /// The step size the next attempt will actually take: the stored proposal clamped into
    /// the regime cap, then truncated to land exactly on the ramp-end derivative kink when
    /// the step would straddle it.
    pub(crate) fn propose_dt(&self, p: &TransientProblem) -> f64 {
        let dt_cap = if self.t < p.ramp_time {
            p.dt_ramp_relaxed
        } else {
            p.dt_tail_cap
        };
        let mut dt = self.dt.clamp(p.dt_min, dt_cap);
        if self.t < p.ramp_time && self.t + dt > p.ramp_time {
            dt = p.ramp_time - self.t;
        }
        dt
    }

    /// Completes one step attempt whose stages were already evaluated (by the scalar
    /// derivative or by the SIMD quad kernel): error estimate, accept/reject decision, PI
    /// controller update, crossing recording and retirement.  Returns `true` when the
    /// attempt was accepted.
    ///
    /// The scalar [`step`](Self::step) loop and the SIMD worklist share this method, so
    /// the two modes differ *only* in how the stage derivatives are computed.
    #[allow(clippy::too_many_arguments)] // the flat stage bundle is the point: no per-attempt struct allocation
    pub(crate) fn finish_attempt(
        &mut self,
        p: &TransientProblem,
        dt: f64,
        k2: f64,
        k3: f64,
        k4: f64,
        v_next: f64,
        t_next: f64,
    ) -> bool {
        let k1 = self.k1;
        self.stats.add_derivative_evals(3);

        // Embedded second-order error estimate.
        let err = (dt
            * ((-5.0 / 72.0) * k1 + (1.0 / 12.0) * k2 + (1.0 / 9.0) * k3 - (1.0 / 8.0) * k4))
            .abs();
        let err_norm = err / p.err_tol;

        if err_norm <= 1.0 || dt <= p.dt_min {
            // Accept.  PI controller proposes the next step from this error and the
            // previous accepted one.
            self.stats.steps += 1;
            let growth = if err_norm > 0.0 {
                (SAFETY * err_norm.powf(-PI_ALPHA) * self.err_prev.powf(PI_BETA))
                    .clamp(MIN_SHRINK, MAX_GROWTH)
            } else {
                MAX_GROWTH
            };
            self.dt = dt * growth;
            self.err_prev = err_norm.max(1e-4);

            self.record_crossings(p, dt, v_next, k1, k4);
            self.t = t_next;
            self.v = v_next;
            self.k1 = k4;
            if self.crossings.iter().all(Option::is_some) || self.t >= p.horizon {
                self.finished = true;
            }
            return true;
        }
        // Reject: shrink and retry from the same state (k1 stays valid).
        self.stats.rejected_steps += 1;
        self.dt = dt * (SAFETY * err_norm.powf(-PI_ALPHA)).clamp(MIN_SHRINK, 1.0);
        false
    }

    /// Records any thresholds crossed inside the accepted step `[t, t + dt]` by bisecting
    /// the step's cubic Hermite interpolant.
    fn record_crossings(&mut self, p: &TransientProblem, dt: f64, v_next: f64, k1: f64, k4: f64) {
        for (idx, &threshold) in p.thresholds.iter().enumerate() {
            if self.crossings[idx].is_none() && p.crossed(threshold, self.v, v_next) {
                let s = hermite_crossing(self.v, v_next, dt * k1, dt * k4, threshold);
                self.crossings[idx] = Some(self.t + s * dt);
            }
        }
    }

    /// Consumes the retired lane into a measurement (or an incomplete-transition error).
    pub(crate) fn into_result(
        self,
        p: &TransientProblem,
    ) -> Result<(TimingMeasurement, TransientStats), TransientError> {
        let (first, mid, last) = match self.crossings {
            [Some(a), Some(b), Some(c)] => (a, b, c),
            _ => {
                return Err(TransientError::IncompleteTransition {
                    horizon: p.horizon,
                    last_output: self.v,
                })
            }
        };
        // Delay: 50 % input to 50 % output.  The input crosses 50 % at half the ramp.
        // Extremely fast cells driven by very slow ramps can nominally cross before the
        // input midpoint; clamp to one femtosecond to keep the measurement physical.  The
        // slew window carries the same floor: the Hermite interpolant is not forced
        // monotone, so adjacent crossings could in principle coincide.
        let delay = (mid - 0.5 * p.ramp_time).max(1e-15);
        let slew = ((last - first) * SLEW_SCALE).max(1e-15);
        Ok((
            TimingMeasurement::new(Seconds(delay), Seconds(slew)),
            self.stats,
        ))
    }
}

/// Locates a threshold crossing on the cubic Hermite interpolant of one step.
///
/// `m0`/`m1` are the endpoint derivatives already scaled by the step size (`dt·k`).
/// Returns the crossing position `s ∈ [0, 1]`; the endpoints are known to bracket the
/// threshold, so plain bisection converges unconditionally and deterministically.
fn hermite_crossing(v0: f64, v1: f64, m0: f64, m1: f64, threshold: f64) -> f64 {
    let eval = |s: f64| -> f64 {
        let s2 = s * s;
        let s3 = s2 * s;
        let h00 = 2.0 * s3 - 3.0 * s2 + 1.0;
        let h10 = s3 - 2.0 * s2 + s;
        let h01 = -2.0 * s3 + 3.0 * s2;
        let h11 = s3 - s2;
        h00 * v0 + h10 * m0 + h01 * v1 + h11 * m1 - threshold
    };
    let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
    let sign_lo = eval(lo) <= 0.0;
    for _ in 0..HERMITE_BISECTIONS {
        let mid = 0.5 * (lo + hi);
        if (eval(mid) <= 0.0) == sign_lo {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Integrates one pre-built problem with the embedded-pair kernel.
pub(crate) fn integrate(
    p: &TransientProblem,
) -> Result<(TimingMeasurement, TransientStats), TransientError> {
    let mut lane = LaneState::new(p);
    while !lane.finished() {
        lane.step(p);
    }
    lane.into_result(p)
}

/// Integrates one pre-built problem with the seed's classical RK4 kernel (the golden
/// reference).  The step-size probe of the seed is folded into the first stage: `k1` *is*
/// the slope the step size is derived from, which removes the duplicated derivative
/// evaluation the seed paid without changing the trajectory.
pub(crate) fn integrate_rk4(
    p: &TransientProblem,
) -> Result<(TimingMeasurement, TransientStats), TransientError> {
    let mut stats = TransientStats::default();
    let mut crossings = [None::<f64>; 3];
    let mut t = 0.0_f64;
    let mut v = p.v0;

    while t < p.horizon {
        // Choose the step from the local slope, clamped into [dt_min, dt_ramp] during the
        // ramp and up to tau/20 afterwards.  The probe doubles as the first RK4 stage.
        let k1 = p.f(t, v);
        let slope = k1.abs().max(1e-30);
        let dt_cap = if t < p.ramp_time {
            p.dt_ramp
        } else {
            p.dt_tail_cap
        };
        let dt = (p.dv_max / slope).clamp(p.dt_min, dt_cap);

        let k2 = p.f(t + 0.5 * dt, v + 0.5 * dt * k1);
        let k3 = p.f(t + 0.5 * dt, v + 0.5 * dt * k2);
        let k4 = p.f(t + dt, v + dt * k3);
        stats.add_derivative_evals(4);
        stats.steps += 1;
        let v_next = v + dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
        let t_next = t + dt;

        // Record threshold crossings by linear interpolation inside the step.
        for (idx, &threshold) in p.thresholds.iter().enumerate() {
            if crossings[idx].is_none() && p.crossed(threshold, v, v_next) {
                let frac = (threshold - v) / (v_next - v);
                crossings[idx] = Some(t + frac * dt);
            }
        }

        v = v_next;
        t = t_next;

        if crossings.iter().all(Option::is_some) {
            break;
        }
    }

    let (first, mid, last) = match crossings {
        [Some(a), Some(b), Some(c)] => (a, b, c),
        _ => {
            return Err(TransientError::IncompleteTransition {
                horizon: p.horizon,
                last_output: v,
            })
        }
    };
    let delay = (mid - 0.5 * p.ramp_time).max(1e-15);
    let slew = (last - first) * SLEW_SCALE;
    Ok((TimingMeasurement::new(Seconds(delay), Seconds(slew)), stats))
}

/// Simulates one switching event and measures delay and output slew.
///
/// `arc` selects which output transition is simulated; the input stimulus direction is the
/// complement (the equivalent inverter is inverting by construction).
///
/// This is the one-shot entry point and validates `config` on every call; hot paths that
/// validated their configuration at construction time (the characterization engine, the
/// batched kernel) skip straight to the pre-validated integrator.
///
/// # Errors
///
/// Returns [`TransientError::IncompleteTransition`] if the output does not complete its
/// swing within the configured horizon, or [`TransientError::InvalidConfig`] if `config`
/// fails validation.
pub fn simulate_switching(
    eq: &EquivalentInverter,
    arc: &TimingArc,
    point: &InputPoint,
    config: &TransientConfig,
) -> Result<TimingMeasurement, TransientError> {
    simulate_switching_with_stats(eq, arc, point, config).map(|(m, _)| m)
}

/// [`simulate_switching`] plus the integration-work counters, for benchmarking and
/// regression gating.
///
/// # Errors
///
/// Same conditions as [`simulate_switching`].
pub fn simulate_switching_with_stats(
    eq: &EquivalentInverter,
    arc: &TimingArc,
    point: &InputPoint,
    config: &TransientConfig,
) -> Result<(TimingMeasurement, TransientStats), TransientError> {
    config.validate().map_err(TransientError::InvalidConfig)?;
    integrate(&TransientProblem::new(eq, arc, point, config))
}

/// Simulates one switching event with the seed's classical RK4 kernel.
///
/// Kept as the golden reference: the parity test suite asserts the embedded-pair kernel
/// stays within 0.5 % of this trajectory's measurements, and `BENCH_transient.json`
/// reports speedups against its throughput.
///
/// # Errors
///
/// Same conditions as [`simulate_switching`].
pub fn simulate_switching_rk4(
    eq: &EquivalentInverter,
    arc: &TimingArc,
    point: &InputPoint,
    config: &TransientConfig,
) -> Result<TimingMeasurement, TransientError> {
    simulate_switching_rk4_with_stats(eq, arc, point, config).map(|(m, _)| m)
}

/// [`simulate_switching_rk4`] plus the integration-work counters.
///
/// # Errors
///
/// Same conditions as [`simulate_switching`].
pub fn simulate_switching_rk4_with_stats(
    eq: &EquivalentInverter,
    arc: &TimingArc,
    point: &InputPoint,
    config: &TransientConfig,
) -> Result<(TimingMeasurement, TransientStats), TransientError> {
    config.validate().map_err(TransientError::InvalidConfig)?;
    integrate_rk4(&TransientProblem::new(eq, arc, point, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use slic_cells::{Cell, CellKind, DriveStrength};
    use slic_device::TechnologyNode;
    use slic_units::{Farads, Volts};

    fn setup(kind: CellKind) -> (TechnologyNode, EquivalentInverter, Cell) {
        let tech = TechnologyNode::n14_finfet();
        let cell = Cell::new(kind, DriveStrength::X1);
        let eq = EquivalentInverter::nominal(&tech, cell);
        (tech, eq, cell)
    }

    fn point(sin_ps: f64, cload_ff: f64, vdd: f64) -> InputPoint {
        InputPoint::new(
            Seconds::from_picoseconds(sin_ps),
            Farads::from_femtofarads(cload_ff),
            Volts(vdd),
        )
    }

    #[test]
    fn config_validation() {
        assert!(TransientConfig::accurate().validate().is_ok());
        assert!(TransientConfig::fast().validate().is_ok());
        let bad = TransientConfig {
            dv_max_fraction: 0.5,
            ..TransientConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = TransientConfig {
            min_steps_per_ramp: 2,
            ..TransientConfig::default()
        };
        let err = simulate_switching(
            &setup(CellKind::Inv).1,
            &TimingArc::new(
                Cell::new(CellKind::Inv, DriveStrength::X1),
                0,
                Transition::Fall,
            ),
            &point(5.0, 2.0, 0.8),
            &bad,
        )
        .unwrap_err();
        assert!(matches!(err, TransientError::InvalidConfig(_)));
        assert!(err.to_string().contains("min_steps_per_ramp"));
    }

    #[test]
    fn inverter_delays_are_picosecond_scale() {
        let (_, eq, cell) = setup(CellKind::Inv);
        for transition in Transition::BOTH {
            let arc = TimingArc::new(cell, 0, transition);
            let m = simulate_switching(
                &eq,
                &arc,
                &point(5.0, 2.0, 0.8),
                &TransientConfig::accurate(),
            )
            .unwrap();
            assert!(
                m.delay_ps() > 0.5 && m.delay_ps() < 200.0,
                "{transition}: delay = {} ps",
                m.delay_ps()
            );
            assert!(
                m.output_slew_ps() > 0.5 && m.output_slew_ps() < 400.0,
                "{transition}: slew = {} ps",
                m.output_slew_ps()
            );
        }
    }

    #[test]
    fn delay_increases_with_load() {
        let (_, eq, cell) = setup(CellKind::Nand2);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let cfg = TransientConfig::accurate();
        let light = simulate_switching(&eq, &arc, &point(5.0, 0.5, 0.8), &cfg).unwrap();
        let heavy = simulate_switching(&eq, &arc, &point(5.0, 5.0, 0.8), &cfg).unwrap();
        assert!(heavy.delay > light.delay);
        assert!(heavy.output_slew > light.output_slew);
    }

    #[test]
    fn delay_increases_as_vdd_drops() {
        let (_, eq, cell) = setup(CellKind::Nor2);
        let arc = TimingArc::new(cell, 0, Transition::Rise);
        let cfg = TransientConfig::accurate();
        let nominal = simulate_switching(&eq, &arc, &point(5.0, 2.0, 1.0), &cfg).unwrap();
        let low = simulate_switching(&eq, &arc, &point(5.0, 2.0, 0.65), &cfg).unwrap();
        assert!(low.delay.value() > 1.3 * nominal.delay.value());
    }

    #[test]
    fn delay_increases_with_input_slew() {
        let (_, eq, cell) = setup(CellKind::Inv);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let cfg = TransientConfig::accurate();
        let fast_in = simulate_switching(&eq, &arc, &point(1.0, 2.0, 0.8), &cfg).unwrap();
        let slow_in = simulate_switching(&eq, &arc, &point(15.0, 2.0, 0.8), &cfg).unwrap();
        assert!(slow_in.delay > fast_in.delay);
    }

    #[test]
    fn weaker_pull_up_makes_rise_slower_than_fall_for_nor() {
        // NOR2 stacks its PMOS devices, so its rising output is slower than its falling one.
        let (_, eq, cell) = setup(CellKind::Nor2);
        let cfg = TransientConfig::accurate();
        let rise = simulate_switching(
            &eq,
            &TimingArc::new(cell, 0, Transition::Rise),
            &point(5.0, 2.0, 0.8),
            &cfg,
        )
        .unwrap();
        let fall = simulate_switching(
            &eq,
            &TimingArc::new(cell, 0, Transition::Fall),
            &point(5.0, 2.0, 0.8),
            &cfg,
        )
        .unwrap();
        assert!(rise.delay > fall.delay);
    }

    #[test]
    fn fast_config_tracks_accurate_config() {
        let (_, eq, cell) = setup(CellKind::Inv);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let p = point(5.0, 2.0, 0.8);
        let accurate = simulate_switching(&eq, &arc, &p, &TransientConfig::accurate()).unwrap();
        let fast = simulate_switching(&eq, &arc, &p, &TransientConfig::fast()).unwrap();
        let rel = (accurate.delay.value() - fast.delay.value()).abs() / accurate.delay.value();
        assert!(rel < 0.02, "fast vs accurate delay mismatch: {rel}");
    }

    #[test]
    fn incomplete_transition_is_reported() {
        let (_, eq, cell) = setup(CellKind::Inv);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        // Far sub-threshold supply: the NMOS barely out-drives the PMOS leakage, so the
        // output settles at an intermediate level and never crosses the 20 % threshold.
        let p = InputPoint::new(
            Seconds::from_picoseconds(5.0),
            Farads::from_femtofarads(2.0),
            Volts(0.02),
        );
        let cfg = TransientConfig::fast();
        for result in [
            simulate_switching(&eq, &arc, &p, &cfg),
            simulate_switching_rk4(&eq, &arc, &p, &cfg),
        ] {
            match result {
                Err(TransientError::IncompleteTransition { .. }) => {}
                other => panic!("expected incomplete transition, got {other:?}"),
            }
        }
    }

    #[test]
    fn results_are_deterministic() {
        let (_, eq, cell) = setup(CellKind::Nand2);
        let arc = TimingArc::new(cell, 0, Transition::Rise);
        let p = point(7.0, 3.0, 0.9);
        let cfg = TransientConfig::accurate();
        let a = simulate_switching(&eq, &arc, &p, &cfg).unwrap();
        let b = simulate_switching(&eq, &arc, &p, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn embedded_pair_tracks_rk4_reference() {
        let (_, eq, cell) = setup(CellKind::Inv);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let p = point(5.0, 2.0, 0.8);
        for cfg in [TransientConfig::accurate(), TransientConfig::fast()] {
            let new = simulate_switching(&eq, &arc, &p, &cfg).unwrap();
            let reference = simulate_switching_rk4(&eq, &arc, &p, &cfg).unwrap();
            let delay_err =
                (new.delay.value() - reference.delay.value()).abs() / reference.delay.value();
            let slew_err = (new.output_slew.value() - reference.output_slew.value()).abs()
                / reference.output_slew.value();
            assert!(delay_err < 0.005, "delay parity: {delay_err}");
            assert!(slew_err < 0.005, "slew parity: {slew_err}");
        }
    }

    #[test]
    fn embedded_pair_does_less_work_than_rk4() {
        let (_, eq, cell) = setup(CellKind::Nand2);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let p = point(5.0, 2.0, 0.8);
        let cfg = TransientConfig::accurate();
        let (_, new) = simulate_switching_with_stats(&eq, &arc, &p, &cfg).unwrap();
        let (_, rk4) = simulate_switching_rk4_with_stats(&eq, &arc, &p, &cfg).unwrap();
        assert!(new.steps > 0 && rk4.steps > 0);
        assert!(
            2 * new.device_evals < rk4.device_evals,
            "embedded pair must at least halve device evaluations: {} vs {}",
            new.device_evals,
            rk4.device_evals
        );
    }

    #[test]
    fn stats_count_rk4_work_exactly() {
        let (_, eq, cell) = setup(CellKind::Inv);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let (_, stats) = simulate_switching_rk4_with_stats(
            &eq,
            &arc,
            &point(5.0, 2.0, 0.8),
            &TransientConfig::fast(),
        )
        .unwrap();
        // Four derivative evaluations (eight transistor evaluations) per RK4 step, none
        // rejected.
        assert_eq!(stats.device_evals, 8 * stats.steps);
        assert_eq!(stats.rejected_steps, 0);
    }
}
