//! Property tests of the wire protocol: arbitrary requests and responses must round-trip
//! bit-exactly through the JSON-lines framing, NaN must never travel, and incompatible
//! handshakes must be rejected.

use proptest::prelude::*;
use slic_cells::{Cell, CellKind, DriveStrength, TimingArc, Transition};
use slic_device::{ProcessSample, TechnologyNode};
use slic_farm::wire::{decode_message, encode_message, Message};
use slic_farm::{Hello, WireError, WireRequest, WireResultEntry, PROTOCOL_VERSION};
use slic_spice::{InputPoint, SimRequest, SimResult, TimingMeasurement, TransientConfig};
use slic_units::{Farads, Seconds, Volts};

fn request(
    tech_index: usize,
    sin_ps: f64,
    cload_ff: f64,
    vdd: f64,
    dvth: f64,
    cinv: f64,
    rise: bool,
) -> SimRequest {
    let techs = ["n14_finfet", "n16_finfet", "target_14nm", "n28_bulk"];
    let tech = TechnologyNode::by_name(techs[tech_index % techs.len()]).expect("catalogue name");
    let cell = Cell::new(CellKind::Nand2, DriveStrength::X1);
    let transition = if rise {
        Transition::Rise
    } else {
        Transition::Fall
    };
    SimRequest {
        tech: std::sync::Arc::new(tech),
        cell,
        arc: TimingArc::new(cell, 0, transition),
        point: InputPoint::new(
            Seconds::from_picoseconds(sin_ps),
            Farads::from_femtofarads(cload_ff),
            Volts(vdd),
        ),
        seed: ProcessSample {
            delta_vth_n: dvth,
            delta_vth_p: -dvth / 3.0,
            cinv_scale: cinv,
            ..ProcessSample::nominal()
        },
        config: TransientConfig::fast(),
    }
}

proptest::proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn requests_round_trip_bit_exactly(
        tech_index in 0usize..4,
        sin_ps in 0.1f64..40.0,
        cload_ff in 0.1f64..10.0,
        vdd in 0.5f64..1.2,
        dvth in -0.05f64..0.05,
        cinv in 0.8f64..1.2,
    ) {
        for rise in [false, true] {
            let original = request(tech_index, sin_ps, cload_ff, vdd, dvth, cinv, rise);
            let wire = WireRequest::encode(&original).expect("finite coordinates encode");
            let line = encode_message(&Message::Batch { id: 42, requests: vec![wire] });
            let Message::Batch { id, requests } = decode_message(&line).expect("decodes") else {
                panic!("wrong message type");
            };
            prop_assert_eq!(id, 42);
            let back = requests[0].decode().expect("reconstructs");
            prop_assert_eq!(back, original, "every bit pattern must survive the wire");
        }
    }

    #[test]
    fn results_round_trip_bit_exactly(
        delay_ps in 0.01f64..500.0,
        slew_ps in 0.01f64..500.0,
    ) {
        let ok: SimResult = Ok(TimingMeasurement::new(
            Seconds::from_picoseconds(delay_ps),
            Seconds::from_picoseconds(slew_ps),
        ));
        let entry = WireResultEntry::encode(&ok).expect("encodes");
        let line = encode_message(&Message::Results { id: 9, results: vec![entry] });
        let Message::Results { results, .. } = decode_message(&line).expect("decodes") else {
            panic!("wrong message type");
        };
        prop_assert_eq!(results[0].decode().expect("reconstructs"), ok);
    }

    #[test]
    fn nan_is_rejected_wherever_it_appears(
        sin_ps in 0.1f64..40.0,
        lane in 0usize..3,
    ) {
        let mut bad = request(0, sin_ps, 2.0, 0.8, 0.01, 1.0, false);
        match lane {
            0 => bad.seed.delta_vth_n = f64::NAN,
            1 => bad.seed.dibl_scale_p = f64::NAN,
            _ => bad.config.max_time_factor = f64::NAN,
        }
        let err = WireRequest::encode(&bad).expect_err("NaN must not travel");
        prop_assert!(err.to_string().contains("NaN"));
    }

    #[test]
    fn kernel_version_mismatches_are_rejected(offset in 1u64..9) {
        let stale = Hello {
            kernel: slic_spice::KERNEL_VERSION + offset,
            ..Hello::current("stale")
        };
        prop_assert!(matches!(stale.validate(), Err(WireError::KernelMismatch { .. })));
        // And the mismatch survives a wire round trip: the broker sees exactly what the
        // worker sent, then rejects it.
        let line = encode_message(&Message::Hello(stale.clone()));
        let Message::Hello(received) = decode_message(&line).expect("decodes") else {
            panic!("wrong message type");
        };
        prop_assert_eq!(&received, &stale);
        prop_assert!(received.validate().is_err());

        let foreign = Hello { protocol: PROTOCOL_VERSION + offset, ..Hello::current("alien") };
        prop_assert!(matches!(foreign.validate(), Err(WireError::ProtocolMismatch { .. })));
    }
}
