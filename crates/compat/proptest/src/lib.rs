//! Offline stand-in for the `proptest` crate.
//!
//! Supports the property-test surface this workspace uses: the [`proptest!`] macro with
//! `arg in strategy` bindings and an optional `#![proptest_config(...)]` header,
//! [`prop_assert!`] / [`prop_assert_eq!`], numeric [`Range`](std::ops::Range) strategies
//! and [`collection::vec`] (exact or ranged length).
//!
//! Unlike the real crate there is no shrinking: a failing case panics with its case index
//! and the generator is seeded deterministically, so failures reproduce exactly.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, TestCaseError};
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; the transient-simulation-heavy properties in this
        // workspace make 32 a better runtime/coverage balance, and each property may widen
        // it again via `proptest_config`.
        Self { cases: 32 }
    }
}

/// A rejected or failed test case, produced by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The deterministic generator driving every property.
pub fn test_rng(property_name: &str) -> StdRng {
    // Stable per-property seed so properties are independent of execution order.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in property_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Produces random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f64, u64, usize, u32, i64, i32);

    /// Length specification for [`vec`](super::collection::vec): an exact `usize` or a
    /// `Range<usize>`.
    pub trait IntoLenRange {
        /// The concrete half-open length range.
        fn into_len_range(self) -> Range<usize>;
    }

    impl IntoLenRange for usize {
        fn into_len_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    impl IntoLenRange for Range<usize> {
        fn into_len_range(self) -> Range<usize> {
            self
        }
    }

    /// A strategy generating vectors of another strategy's values.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.len.len() <= 1 {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub(crate) fn vec_strategy<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into_len_range(),
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::{IntoLenRange, Strategy, VecStrategy};

    /// A strategy for vectors of `element` values with the given exact or ranged length.
    pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
        super::strategy::vec_strategy(element, len)
    }
}

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_rng(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, err
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds, mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // Bound to a bool first so negating it never trips clippy's
        // `neg_cmp_op_on_partial_ord` at the macro's call sites.
        let holds: bool = $cond;
        if !holds {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands are equal, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -2.5f64..7.5, n in 1usize..16) {
            prop_assert!((-2.5..7.5).contains(&x), "x = {x}");
            prop_assert!((1..16).contains(&n));
        }

        #[test]
        fn vectors_respect_length_specs(
            exact in crate::collection::vec(0.0f64..1.0, 8),
            ranged in crate::collection::vec(-1.0f64..1.0, 2..6),
        ) {
            prop_assert_eq!(exact.len(), 8);
            prop_assert!((2..6).contains(&ranged.len()));
            prop_assert!(exact.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_header_is_honoured(seed in 0u64..1000) {
            prop_assert!(seed < 1000);
        }
    }

    #[test]
    fn prop_assert_produces_case_errors() {
        let check = |x: f64| -> Result<(), TestCaseError> {
            prop_assert!(x < 0.5, "x = {x}");
            prop_assert_eq!(1 + 1, 2);
            Ok(())
        };
        assert!(check(0.1).is_ok());
        let err = check(0.9).expect_err("assertion must fail");
        assert!(err.to_string().contains("x = 0.9"));
    }
}
