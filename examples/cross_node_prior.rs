//! Belief-propagation study: which historical technologies should the prior trust?
//!
//! Section IV of the paper notes that "the best historical technologies would be those with
//! the same design or process choices as the target technology", and that selecting them is
//! a bias–variance trade-off.  This example quantifies that trade-off for the 14-nm FinFET
//! target:
//!
//! * priors learned from *matched* nodes (the FinFET ones) vs. *mismatched* nodes (the old
//!   planar ones) vs. the full suite;
//! * priors learned from a growing number of historical technologies (`Ntech` sweep);
//! * prior sharpness ablation (covariance scaled down / up).
//!
//! Every variant is scored by the delay prediction error after a two-simulation MAP
//! extraction of the NOR2 fall arc — the regime where the prior matters most.
//!
//! Run with `cargo run --release --example cross_node_prior`.

use slic::historical::{HistoricalLearner, HistoricalLearningConfig};
use slic::prelude::*;
use slic::report::markdown_table;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scores a prior variant: MAP-extract from `k` simulations, return the mean validation
/// error in percent.
fn score(
    engine: &CharacterizationEngine,
    cell: Cell,
    arc: &TimingArc,
    extractor: &MapExtractor,
    k: usize,
    validation: &[(InputPoint, f64, Amperes)],
) -> f64 {
    let mut rng = StdRng::seed_from_u64(99);
    let nominal = ProcessSample::nominal();
    let points = engine.input_space().sample_latin_hypercube(&mut rng, k);
    let samples: Vec<TimingSample> = points
        .iter()
        .map(|p| {
            let m = engine.simulate_nominal(cell, arc, p);
            TimingSample::new(*p, engine.ieff(arc, p, &nominal), m.delay)
        })
        .collect();
    let fit = extractor.extract(&samples);
    let errors: Vec<f64> = validation
        .iter()
        .map(|(p, reference, ieff)| {
            100.0 * (fit.params.evaluate(p, *ieff).value() - reference).abs() / reference
        })
        .collect();
    errors.iter().sum::<f64>() / errors.len() as f64
}

fn main() {
    let library = Library::paper_trio();
    println!("characterizing the full historical suite once...");
    let learning = HistoricalLearner::new(HistoricalLearningConfig::default())
        .learn(&TechnologyNode::historical_suite(), &library);
    let db = &learning.database;

    let target = TechnologyNode::target_14nm();
    let engine = CharacterizationEngine::with_config(target, TransientConfig::fast())
        .expect("valid transient configuration");
    let cell = Cell::new(CellKind::Nor2, DriveStrength::X1);
    let arc = TimingArc::new(cell, 0, Transition::Fall);

    // Shared validation baseline.
    let mut rng = StdRng::seed_from_u64(5);
    let nominal = ProcessSample::nominal();
    let validation: Vec<(InputPoint, f64, Amperes)> = engine
        .input_space()
        .sample_uniform(&mut rng, 250)
        .into_iter()
        .map(|p| {
            let reference = engine.simulate_nominal(cell, &arc, &p).delay.value();
            (p, reference, engine.ieff(&arc, &p, &nominal))
        })
        .collect();

    let space = engine.input_space();
    let build_extractor = |subset: &HistoricalDatabase, inflation: f64| -> MapExtractor {
        let prior = PriorBuilder {
            covariance_inflation: inflation,
            ..PriorBuilder::new()
        }
        .build(subset, TimingMetric::Delay, Some("NOR2"))
        .expect("NOR2 delay records present");
        let precision = PrecisionModel::learn(
            subset,
            TimingMetric::Delay,
            &space,
            PrecisionConfig::default(),
        );
        MapExtractor::new(prior, precision)
    };

    // --- Ablation A2: matched vs mismatched historical nodes -------------------------------
    let matched = db.select_technologies(&["hist-16nm-finfet", "hist-14nm-finfet"]);
    let mismatched = db.select_technologies(&["hist-45nm-bulk", "hist-32nm-soi"]);
    let k = 2;
    let headers: Vec<String> = ["prior source", "records", "error @ k=2 (%)"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for (label, subset) in [
        ("matched FinFET nodes", &matched),
        ("mismatched planar nodes", &mismatched),
        ("all six nodes", db),
    ] {
        let err = score(
            &engine,
            cell,
            &arc,
            &build_extractor(subset, 1.5),
            k,
            &validation,
        );
        rows.push(vec![
            label.to_string(),
            subset.len().to_string(),
            format!("{err:.2}"),
        ]);
    }
    println!("\nAblation A2 — prior source selection (bias–variance trade-off):");
    println!("{}", markdown_table(&headers, &rows));

    // --- Ablation A3: number of historical technologies ------------------------------------
    let order = [
        "hist-14nm-finfet",
        "hist-16nm-finfet",
        "hist-20nm-bulk",
        "hist-28nm-bulk",
        "hist-32nm-soi",
        "hist-45nm-bulk",
    ];
    let headers: Vec<String> = ["Ntech", "technologies", "error @ k=2 (%)"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for n in 1..=order.len() {
        let names: Vec<&str> = order[..n].to_vec();
        let subset = db.select_technologies(&names);
        let err = score(
            &engine,
            cell,
            &arc,
            &build_extractor(&subset, 1.5),
            k,
            &validation,
        );
        rows.push(vec![n.to_string(), names.join(", "), format!("{err:.2}")]);
    }
    println!("Ablation A3 — growing the historical suite (Ntech sweep):");
    println!("{}", markdown_table(&headers, &rows));

    // --- Prior sharpness ------------------------------------------------------------------
    let headers: Vec<String> = ["covariance scale", "error @ k=2 (%)"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for inflation in [0.25, 1.0, 1.5, 4.0, 16.0] {
        let err = score(
            &engine,
            cell,
            &arc,
            &build_extractor(db, inflation),
            k,
            &validation,
        );
        rows.push(vec![format!("{inflation:.2}x"), format!("{err:.2}")]);
    }
    println!("Prior-strength ablation (covariance inflation):");
    println!("{}", markdown_table(&headers, &rows));
    println!(
        "total target-technology simulations spent in this study: {}",
        engine.simulation_count()
    );
}
