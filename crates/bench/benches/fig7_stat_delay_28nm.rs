//! Fig. 7: average testing error of the mean and standard deviation of delay `Td` for a
//! 28-nm library under process variation, vs the number of training samples (the paper
//! reports 17×/20× fewer simulations than the statistical LUT at matched accuracy).

use criterion::{criterion_group, criterion_main, Criterion};
use slic::nominal::MethodKind;
use slic::prelude::*;
use slic::statistical::{StatMetric, StatisticalStudy, StatisticalStudyConfig};
use slic_bench::{banner, bench_historical_db, planar_history};

fn study_config() -> StatisticalStudyConfig {
    StatisticalStudyConfig {
        validation_points: 40,
        process_seeds: 80,
        training_counts: vec![1, 2, 3, 5, 10, 20],
        ..StatisticalStudyConfig::default()
    }
}

fn regenerate(db: &'static HistoricalDatabase) -> StatisticalStudyResultHolder {
    banner(
        "Fig. 7",
        "Statistical 28-nm delay characterization: E(mu_Td) and E(sigma_Td) vs training samples",
    );
    let study = StatisticalStudy::new(TechnologyNode::target_28nm(), db, study_config());
    let cell = Cell::new(CellKind::Nand2, DriveStrength::X1);
    let arc = TimingArc::new(cell, 0, Transition::Fall);
    let result = study.run(cell, &arc);
    for (metric, title) in [
        (StatMetric::MeanDelay, "E(mu_Td)"),
        (StatMetric::StdDelay, "E(sigma_Td)"),
    ] {
        println!("\n{title} for {}:", arc.id());
        println!("{}", result.to_markdown(metric));
        let bayes = result
            .curves_for(MethodKind::ProposedBayesian)
            .as_method_curve(metric);
        let lut = result.curves_for(MethodKind::Lut).as_method_curve(metric);
        let target = bayes.final_error().max(lut.final_error());
        if let Some(speedup) = result.speedup_at(
            metric,
            target,
            MethodKind::ProposedBayesian,
            MethodKind::Lut,
        ) {
            println!("simulation speedup vs statistical LUT at {target:.2}%: {speedup:.1}x");
        }
    }
    println!(
        "\nbaseline: {} simulations over {} seeds  (paper reports 17x / 20x reductions)",
        result.baseline_simulations, result.process_seeds
    );
    StatisticalStudyResultHolder { study, cell, arc }
}

/// Keeps the study alive for the Criterion kernel.
struct StatisticalStudyResultHolder {
    study: StatisticalStudy<'static>,
    cell: Cell,
    arc: TimingArc,
}

fn bench(c: &mut Criterion) {
    // Leak the database so the study can borrow it with a 'static lifetime inside the
    // holder; the process exits right after the bench, so this is deliberate and bounded.
    let db: &'static HistoricalDatabase =
        Box::leak(Box::new(bench_historical_db(&planar_history())));
    let holder = regenerate(db);

    // Kernel: one Monte Carlo ensemble at a single validation condition (the unit of the
    // statistical baseline's cost).
    let engine = holder.study.engine();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    let seeds = engine.tech().variation().sample_n(&mut rng, 40);
    let point = engine.input_space().center();
    c.bench_function("fig7_monte_carlo_40_seeds_one_condition", |b| {
        b.iter(|| engine.monte_carlo(holder.cell, &holder.arc, &point, &seeds))
    });
}

criterion_group! {
    name = benches;
    config = slic_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
