//! Cell types, drive strengths and transistor-level topology descriptions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The combinational cell types supported by the library.
///
/// Each kind is a static CMOS gate; its pull-up and pull-down networks are described by
/// [`CellKind::pull_up_topology`] / [`CellKind::pull_down_topology`], which is all the
/// equivalent-inverter reduction needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Single-input inverter.
    Inv,
    /// Two-stage buffer (modelled by its output stage, sized up internally).
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 2-1 AND-OR-invert (`Y = !(A·B + C)`).
    Aoi21,
    /// 2-1 OR-AND-invert (`Y = !((A + B)·C)`).
    Oai21,
}

impl CellKind {
    /// Every supported cell kind, in catalogue order.
    pub const ALL: [CellKind; 8] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nand3,
        CellKind::Nor2,
        CellKind::Nor3,
        CellKind::Aoi21,
        CellKind::Oai21,
    ];

    /// The three cell kinds used for Table I and most of the paper's plots.
    pub const PAPER_TRIO: [CellKind; 3] = [CellKind::Inv, CellKind::Nand2, CellKind::Nor2];

    /// Parses a kind from its canonical name (case-insensitive), e.g. `"nand2"`.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL
            .iter()
            .copied()
            .find(|k| k.name().eq_ignore_ascii_case(name))
    }

    /// Canonical name of the kind (upper-case, as it would appear in a `.lib`).
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Inv => "INV",
            CellKind::Buf => "BUF",
            CellKind::Nand2 => "NAND2",
            CellKind::Nand3 => "NAND3",
            CellKind::Nor2 => "NOR2",
            CellKind::Nor3 => "NOR3",
            CellKind::Aoi21 => "AOI21",
            CellKind::Oai21 => "OAI21",
        }
    }

    /// Number of input pins.
    pub fn input_count(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf => 1,
            CellKind::Nand2 | CellKind::Nor2 => 2,
            CellKind::Nand3 | CellKind::Nor3 | CellKind::Aoi21 | CellKind::Oai21 => 3,
        }
    }

    /// Whether the cell is logically inverting from the switching input to the output.
    ///
    /// All supported static CMOS gates are inverting except the buffer, whose first stage
    /// absorbs the inversion.
    pub fn is_inverting(self) -> bool {
        !matches!(self, CellKind::Buf)
    }

    /// Topology of the pull-up (PMOS) network as seen from the switching input:
    /// `(series_depth, parallel_legs)`.
    ///
    /// `series_depth` is the number of PMOS devices in series along the conducting path of
    /// the worst-case arc and `parallel_legs` is the number of parallel branches hanging on
    /// the output node (used only for parasitic accounting).
    pub fn pull_up_topology(self) -> (usize, usize) {
        match self {
            CellKind::Inv | CellKind::Buf => (1, 1),
            CellKind::Nand2 => (1, 2),
            CellKind::Nand3 => (1, 3),
            CellKind::Nor2 => (2, 1),
            CellKind::Nor3 => (3, 1),
            // AOI21 pull-up: series (A·B branch) in series with C device -> depth 2,
            // one extra parallel leg on the internal node collapsed into parasitics.
            CellKind::Aoi21 => (2, 2),
            // OAI21 pull-up: (A + B) parallel pair in series nothing -> the conducting path
            // through a single device of the pair plus the C device in parallel topologies.
            CellKind::Oai21 => (2, 2),
        }
    }

    /// Topology of the pull-down (NMOS) network: `(series_depth, parallel_legs)`.
    pub fn pull_down_topology(self) -> (usize, usize) {
        match self {
            CellKind::Inv | CellKind::Buf => (1, 1),
            CellKind::Nand2 => (2, 1),
            CellKind::Nand3 => (3, 1),
            CellKind::Nor2 => (1, 2),
            CellKind::Nor3 => (1, 3),
            CellKind::Aoi21 => (2, 2),
            CellKind::Oai21 => (2, 2),
        }
    }

    /// Relative PMOS up-sizing applied at design time to roughly balance rise and fall
    /// delays (a beta ratio on top of the technology's unit PMOS).
    pub fn pmos_sizing(self) -> f64 {
        let (series, _) = self.pull_up_topology();
        1.0 + 0.35 * (series as f64 - 1.0)
    }

    /// Relative NMOS up-sizing applied at design time to compensate series stacks.
    pub fn nmos_sizing(self) -> f64 {
        let (series, _) = self.pull_down_topology();
        1.0 + 0.35 * (series as f64 - 1.0)
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Drive strength multiplier of a cell instance.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum DriveStrength {
    /// Unit drive.
    #[default]
    X1,
    /// Double drive.
    X2,
    /// Quadruple drive.
    X4,
}

impl DriveStrength {
    /// All supported drive strengths.
    pub const ALL: [DriveStrength; 3] = [DriveStrength::X1, DriveStrength::X2, DriveStrength::X4];

    /// Width multiplier relative to the unit cell.
    pub fn multiplier(self) -> f64 {
        match self {
            DriveStrength::X1 => 1.0,
            DriveStrength::X2 => 2.0,
            DriveStrength::X4 => 4.0,
        }
    }

    /// Suffix used in the cell name, e.g. `"_X2"`.
    pub fn suffix(self) -> &'static str {
        match self {
            DriveStrength::X1 => "_X1",
            DriveStrength::X2 => "_X2",
            DriveStrength::X4 => "_X4",
        }
    }

    /// Parses a drive strength from its short name (case-insensitive), e.g. `"X2"`.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|d| {
            d.suffix()
                .trim_start_matches('_')
                .eq_ignore_ascii_case(name)
        })
    }
}

impl fmt::Display for DriveStrength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix().trim_start_matches('_'))
    }
}

/// A concrete cell: a kind at a drive strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Cell {
    kind: CellKind,
    drive: DriveStrength,
}

impl Cell {
    /// Creates a cell instance.
    pub fn new(kind: CellKind, drive: DriveStrength) -> Self {
        Self { kind, drive }
    }

    /// The cell kind.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// The drive strength.
    pub fn drive(&self) -> DriveStrength {
        self.drive
    }

    /// Full cell name, e.g. `"NAND2_X2"`.
    pub fn name(&self) -> String {
        format!("{}{}", self.kind.name(), self.drive.suffix())
    }

    /// Number of input pins.
    pub fn input_count(&self) -> usize {
        self.kind.input_count()
    }

    /// Effective PMOS width multiplier of the conducting pull-up path (drive × design
    /// sizing).
    pub fn pmos_width_factor(&self) -> f64 {
        self.drive.multiplier() * self.kind.pmos_sizing()
    }

    /// Effective NMOS width multiplier of the conducting pull-down path.
    pub fn nmos_width_factor(&self) -> f64 {
        self.drive.multiplier() * self.kind.nmos_sizing()
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_input_counts() {
        assert_eq!(CellKind::Inv.name(), "INV");
        assert_eq!(CellKind::Nand2.input_count(), 2);
        assert_eq!(CellKind::Nor3.input_count(), 3);
        assert_eq!(CellKind::Aoi21.input_count(), 3);
        assert_eq!(CellKind::Buf.input_count(), 1);
        assert_eq!(format!("{}", CellKind::Oai21), "OAI21");
    }

    #[test]
    fn all_kinds_listed_once() {
        let mut names: Vec<&str> = CellKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CellKind::ALL.len());
    }

    #[test]
    fn paper_trio_is_inv_nand_nor() {
        assert_eq!(
            CellKind::PAPER_TRIO,
            [CellKind::Inv, CellKind::Nand2, CellKind::Nor2]
        );
    }

    #[test]
    fn nand_stacks_nmos_and_parallels_pmos() {
        assert_eq!(CellKind::Nand2.pull_down_topology(), (2, 1));
        assert_eq!(CellKind::Nand2.pull_up_topology(), (1, 2));
        assert_eq!(CellKind::Nand3.pull_down_topology(), (3, 1));
    }

    #[test]
    fn nor_stacks_pmos_and_parallels_nmos() {
        assert_eq!(CellKind::Nor2.pull_up_topology(), (2, 1));
        assert_eq!(CellKind::Nor2.pull_down_topology(), (1, 2));
        assert_eq!(CellKind::Nor3.pull_up_topology(), (3, 1));
    }

    #[test]
    fn stacked_networks_get_upsized() {
        assert!(CellKind::Nand2.nmos_sizing() > CellKind::Inv.nmos_sizing());
        assert!(CellKind::Nor2.pmos_sizing() > CellKind::Inv.pmos_sizing());
        assert_eq!(CellKind::Inv.nmos_sizing(), 1.0);
    }

    #[test]
    fn inverting_property() {
        assert!(CellKind::Inv.is_inverting());
        assert!(CellKind::Nand2.is_inverting());
        assert!(!CellKind::Buf.is_inverting());
    }

    #[test]
    fn drive_strength_multipliers() {
        assert_eq!(DriveStrength::X1.multiplier(), 1.0);
        assert_eq!(DriveStrength::X2.multiplier(), 2.0);
        assert_eq!(DriveStrength::X4.multiplier(), 4.0);
        assert_eq!(DriveStrength::default(), DriveStrength::X1);
        assert_eq!(format!("{}", DriveStrength::X2), "X2");
    }

    #[test]
    fn cell_names_and_factors() {
        let c = Cell::new(CellKind::Nand2, DriveStrength::X2);
        assert_eq!(c.name(), "NAND2_X2");
        assert_eq!(format!("{c}"), "NAND2_X2");
        assert_eq!(c.input_count(), 2);
        assert!(c.nmos_width_factor() > 2.0, "stack compensation plus drive");
        let x1 = Cell::new(CellKind::Nand2, DriveStrength::X1);
        assert!((c.nmos_width_factor() / x1.nmos_width_factor() - 2.0).abs() < 1e-12);
        assert_eq!(c.kind(), CellKind::Nand2);
        assert_eq!(c.drive(), DriveStrength::X2);
    }
}
