//! Pre-compiled device models for the transient hot path.
//!
//! [`Mosfet::drain_current`](crate::mosfet::Mosfet::drain_current) is evaluated millions of
//! times per characterization campaign, and most of what it computes per call is constant
//! for the lifetime of one simulation: `n·φt` and its reciprocal, `1/Vdsat`, `β` and `1/β`,
//! and the current prefactor `W·Cinv·v_x0`.  A [`CompiledDevice`] hoists those constants out
//! of the inner loop once, evaluates on raw `f64` (no unit-wrapper round-trips), and
//! replaces the two `powf` calls of the saturation function with a single `ln`/`exp` pair:
//!
//! ```text
//! Fsat = r · (1 + r^β)^(−1/β)  with  r = Vds/Vdsat
//!      = r · exp(−ln(1 + exp(β·ln r)) / β)
//! ```
//!
//! computed stably for both `r → 0` (the inner `exp` underflows to 0 and `Fsat → r`) and
//! large `r` (for `β·ln r > 30` the log-sum collapses to `β·ln r` and `Fsat → 1`).  The
//! compiled form is the *definition* of the model: [`Mosfet::drain_current`] delegates here,
//! so DC evaluations and the transient solver agree bit for bit.
//!
//! [`CompiledInverter`] pairs the pull-up and pull-down compiled devices of an equivalent
//! inverter so the transient solver's derivative callback is a single call.

use crate::mosfet::{DeviceParams, Mosfet, THERMAL_VOLTAGE};
use crate::vmath;
use crate::vmath::{exp4, ln4, softplus4, F64x4};

/// A device model with all per-simulation constants hoisted, evaluated on raw `f64` volts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompiledDevice {
    /// Current prefactor `W·Cinv·v_x0` (A/V, multiplies the overdrive charge in volts).
    gain: f64,
    /// Threshold voltage at `Vds = 0` (V).
    vth0: f64,
    /// DIBL coefficient (V/V).
    dibl: f64,
    /// Subthreshold swing voltage `n·φt` (V).
    n_phit: f64,
    /// Reciprocal of `n·φt` (1/V).
    inv_n_phit: f64,
    /// Reciprocal of the saturation voltage (1/V).
    inv_vdsat: f64,
    /// Saturation sharpness exponent `β`.
    beta_sat: f64,
    /// Reciprocal of `β`.
    inv_beta_sat: f64,
}

impl CompiledDevice {
    /// Compiles raw device parameters.
    ///
    /// The parameters are assumed valid (see [`DeviceParams::validate`]); [`Mosfet`]
    /// guarantees this for any device it hands out.
    pub fn from_params(p: &DeviceParams) -> Self {
        let n_phit = p.ss_factor * THERMAL_VOLTAGE;
        Self {
            gain: p.width * p.cinv * p.vx0,
            vth0: p.vth0,
            dibl: p.dibl,
            n_phit,
            inv_n_phit: 1.0 / n_phit,
            inv_vdsat: 1.0 / p.vdsat,
            beta_sat: p.beta_sat,
            inv_beta_sat: 1.0 / p.beta_sat,
        }
    }

    /// Compiles a device (polarity is irrelevant: both polarities evaluate on terminal
    /// magnitudes).
    pub fn new(device: &Mosfet) -> Self {
        Self::from_params(device.params())
    }

    /// Drain current magnitude in amperes for terminal-magnitude voltages in volts.
    ///
    /// Semantics match [`Mosfet::drain_current`]: negative inputs clamp to zero (device in
    /// cut-off), `vds == 0` returns exactly zero.
    #[inline]
    pub fn drain_current(&self, vgs: f64, vds: f64) -> f64 {
        let vgs = vgs.max(0.0);
        let vds = vds.max(0.0);
        if vds == 0.0 {
            return 0.0;
        }
        // Smooth overdrive with DIBL: ln(1 + e^x) computed stably for large x.
        let vth_eff = self.vth0 - self.dibl * vds;
        let x = (vgs - vth_eff) * self.inv_n_phit;
        let q_ov = self.n_phit * if x > 30.0 { x } else { x.exp().ln_1p() };
        // Saturation function via one ln/exp pair; see the module docs for the stability
        // argument at both ends of the r range.
        let r = vds * self.inv_vdsat;
        let t = self.beta_sat * r.ln();
        let log_denom = if t > 30.0 { t } else { t.exp().ln_1p() };
        let fsat = r * (-log_denom * self.inv_beta_sat).exp();
        self.gain * q_ov * fsat
    }
}

/// Four [`CompiledDevice`]s packed structure-of-arrays, evaluated one lane per vector
/// element.
///
/// `drain_current4` performs exactly the arithmetic of the scalar
/// [`CompiledDevice::drain_current`] but routes every transcendental through the
/// fixed-polynomial kernels of [`crate::vmath`], so the four lanes vectorize.  The results
/// are *numerically equivalent* to the scalar path (relative error below `5e-8`), not
/// bitwise identical — which is why the SIMD kernel is opt-in and carries an accuracy gate
/// instead of the scalar path's bitwise guarantee.  Each output lane depends only on its
/// own input lane, so values are independent of quad composition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompiledDeviceX4 {
    gain: F64x4,
    vth0: F64x4,
    dibl: F64x4,
    n_phit: F64x4,
    inv_n_phit: F64x4,
    inv_vdsat: F64x4,
    beta_sat: F64x4,
    inv_beta_sat: F64x4,
}

impl CompiledDeviceX4 {
    /// Packs four compiled devices, lane `i` evaluating `devices[i]`.
    pub fn pack(devices: [&CompiledDevice; 4]) -> Self {
        Self {
            gain: devices.map(|d| d.gain),
            vth0: devices.map(|d| d.vth0),
            dibl: devices.map(|d| d.dibl),
            n_phit: devices.map(|d| d.n_phit),
            inv_n_phit: devices.map(|d| d.inv_n_phit),
            inv_vdsat: devices.map(|d| d.inv_vdsat),
            beta_sat: devices.map(|d| d.beta_sat),
            inv_beta_sat: devices.map(|d| d.inv_beta_sat),
        }
    }

    /// Four lanes of drain-current magnitude; lane `i` follows the semantics of
    /// [`CompiledDevice::drain_current`] for `(vgs[i], vds[i])`.
    ///
    /// The scalar path's `vds == 0` early return is subsumed by the arithmetic: the
    /// saturation function carries a factor `r = vds/Vdsat`, which is exactly zero there
    /// (the guarded `ln` of zero is clamped, stays finite, and is then multiplied away).
    #[inline(always)]
    pub fn drain_current4(&self, vgs: F64x4, vds: F64x4) -> F64x4 {
        let mut x = [0.0_f64; 4];
        let mut r = [0.0_f64; 4];
        for i in 0..4 {
            let vgs_i = vgs[i].max(0.0);
            let vds_i = vds[i].max(0.0);
            // Smooth overdrive argument with DIBL: (vgs − vth_eff) / nφt.
            x[i] = (vgs_i - self.vth0[i] + self.dibl[i] * vds_i) * self.inv_n_phit[i];
            r[i] = vds_i * self.inv_vdsat[i];
        }
        let q_ov = softplus4(x);
        let ln_r = ln4(r);
        let mut t = [0.0_f64; 4];
        for i in 0..4 {
            t[i] = self.beta_sat[i] * ln_r[i];
        }
        let log_denom = softplus4(t);
        let mut arg = [0.0_f64; 4];
        for i in 0..4 {
            arg[i] = -log_denom[i] * self.inv_beta_sat[i];
        }
        let fsat_over_r = exp4(arg);
        let mut out = [0.0_f64; 4];
        for i in 0..4 {
            out[i] = self.gain[i] * (self.n_phit[i] * q_ov[i]) * (r[i] * fsat_over_r[i]);
        }
        out
    }
}

/// The compiled pull-up/pull-down pair of an equivalent inverter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompiledInverter {
    pmos: CompiledDevice,
    nmos: CompiledDevice,
}

impl CompiledInverter {
    /// Compiles the two devices of an equivalent inverter.
    pub fn new(pmos: &Mosfet, nmos: &Mosfet) -> Self {
        Self {
            pmos: CompiledDevice::new(pmos),
            nmos: CompiledDevice::new(nmos),
        }
    }

    /// The compiled pull-up device.
    pub fn pmos(&self) -> &CompiledDevice {
        &self.pmos
    }

    /// The compiled pull-down device.
    pub fn nmos(&self) -> &CompiledDevice {
        &self.nmos
    }

    /// Net current charging the output node: `I_pmos − I_nmos` in amperes, for supply
    /// `vdd`, input voltage `vin` and output voltage `vout` (all in volts).
    #[inline]
    pub fn output_current(&self, vdd: f64, vin: f64, vout: f64) -> f64 {
        self.pmos.drain_current(vdd - vin, vdd - vout) - self.nmos.drain_current(vin, vout)
    }
}

/// Four [`CompiledInverter`]s packed structure-of-arrays — the SIMD quad's device model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompiledInverterX4 {
    pmos: CompiledDeviceX4,
    nmos: CompiledDeviceX4,
}

impl CompiledInverterX4 {
    /// Packs four compiled inverters, lane `i` evaluating `inverters[i]`.
    pub fn pack(inverters: [&CompiledInverter; 4]) -> Self {
        Self {
            pmos: CompiledDeviceX4::pack(inverters.map(|inv| &inv.pmos)),
            nmos: CompiledDeviceX4::pack(inverters.map(|inv| &inv.nmos)),
        }
    }

    /// The packed pull-up quad.
    pub fn pmos4(&self) -> &CompiledDeviceX4 {
        &self.pmos
    }

    /// The packed pull-down quad.
    pub fn nmos4(&self) -> &CompiledDeviceX4 {
        &self.nmos
    }

    /// Four lanes of net output-node current; lane `i` follows
    /// [`CompiledInverter::output_current`] for `(vdd[i], vin[i], vout[i])`.
    #[inline]
    pub fn output_current4(&self, vdd: F64x4, vin: F64x4, vout: F64x4) -> F64x4 {
        let mut vgs_p = [0.0_f64; 4];
        let mut vds_p = [0.0_f64; 4];
        for i in 0..4 {
            vgs_p[i] = vdd[i] - vin[i];
            vds_p[i] = vdd[i] - vout[i];
        }
        let up = self.pmos.drain_current4(vgs_p, vds_p);
        let down = self.nmos.drain_current4(vin, vout);
        let mut out = [0.0_f64; 4];
        for i in 0..4 {
            out[i] = up[i] - down[i];
        }
        out
    }
}

/// Reusable intermediate buffers for [`drain_current4_batch`].
///
/// The sweep streams the whole worklist through each stage of the device model in turn
/// (see [`drain_current4_batch`]), so it needs per-item staging arrays between passes.
/// Callers keep one `SweepScratch` alive across sweeps; the buffers are resized (never
/// shrunk below capacity) so steady-state sweeps allocate nothing.
#[derive(Debug, Default)]
pub struct SweepScratch {
    x: Vec<F64x4>,
    r: Vec<F64x4>,
    e: Vec<F64x4>,
    u: Vec<F64x4>,
    l: Vec<F64x4>,
    t: Vec<F64x4>,
}

/// Evaluates a gather of packed device quads at per-item operating points in one call:
/// `out[k] = devices[idx[k]].drain_current4(vgs[k], vds[k])`, bit for bit.
///
/// This is the SIMD worklist's hot primitive.  Instead of evaluating the model
/// item-by-item, it streams the *whole worklist* through the model one stage at a time —
/// operating-point glue, then [`vmath::exp4_batch`]/[`vmath::ln4_batch`] passes for each
/// transcendental, then the combine — with intermediates staged in `scratch`.  Each pass
/// is a tiny loop over contiguous `[f64; 4]` items, which is the shape the vectorizer
/// compiles fully packed; fusing the model into one loop body (the obvious structure)
/// exceeds the vectorizer's budget and silently degrades half the arithmetic to scalar
/// code.  Per lane the arithmetic is exactly [`CompiledDeviceX4::drain_current4`]'s ops
/// in dataflow order, so the results are bitwise identical to the per-item form.
///
/// # Panics
///
/// Panics if the slice lengths differ or an index is out of bounds.
pub fn drain_current4_batch(
    devices: &[CompiledDeviceX4],
    idx: &[u32],
    vgs: &[F64x4],
    vds: &[F64x4],
    scratch: &mut SweepScratch,
    out: &mut [F64x4],
) {
    let n = idx.len();
    assert_eq!(n, vgs.len());
    assert_eq!(n, vds.len());
    assert_eq!(n, out.len());
    let SweepScratch { x, r, e, u, l, t } = scratch;
    let zero = [0.0_f64; 4];
    x.resize(n, zero);
    r.resize(n, zero);
    e.resize(n, zero);
    u.resize(n, zero);
    l.resize(n, zero);
    t.resize(n, zero);
    let (x, r, e, u, l, t) = (
        &mut x[..n],
        &mut r[..n],
        &mut e[..n],
        &mut u[..n],
        &mut l[..n],
        &mut t[..n],
    );
    // Operating point: clamp terminals, overdrive argument x, saturation ratio r.
    for k in 0..n {
        let d = &devices[idx[k] as usize];
        for i in 0..4 {
            let vgs_i = vgs[k][i].max(0.0);
            let vds_i = vds[k][i].max(0.0);
            x[k][i] = (vgs_i - d.vth0[i] + d.dibl[i] * vds_i) * d.inv_n_phit[i];
            r[k][i] = vds_i * d.inv_vdsat[i];
        }
    }
    // q_ov/nφt = softplus(x), decomposed into vmath's exact ops: e = eˣ, u = 1 + e,
    // l = ln u, then the tiny-argument correction and the large-x cutoff.  x is
    // overwritten with the result once the cutoff no longer needs it.
    vmath::exp4_batch(x, e);
    for k in 0..n {
        for i in 0..4 {
            u[k][i] = 1.0 + e[k][i];
        }
    }
    vmath::ln4_batch(u, l);
    for k in 0..n {
        for i in 0..4 {
            let d = u[k][i] - 1.0;
            let corrected = l[k][i] * (e[k][i] / d);
            let sp = if d == 0.0 { e[k][i] } else { corrected };
            x[k][i] = if x[k][i] > 30.0 { x[k][i] } else { sp };
        }
    }
    // log_denom = softplus(β·ln r), same decomposition; t carries β·ln r for the cutoff
    // and is then overwritten with the exponential's argument −log_denom/β.
    vmath::ln4_batch(r, l);
    for k in 0..n {
        let d = &devices[idx[k] as usize];
        for i in 0..4 {
            t[k][i] = d.beta_sat[i] * l[k][i];
        }
    }
    vmath::exp4_batch(t, e);
    for k in 0..n {
        for i in 0..4 {
            u[k][i] = 1.0 + e[k][i];
        }
    }
    vmath::ln4_batch(u, l);
    for k in 0..n {
        let dv = &devices[idx[k] as usize];
        for i in 0..4 {
            let d = u[k][i] - 1.0;
            let corrected = l[k][i] * (e[k][i] / d);
            let sp = if d == 0.0 { e[k][i] } else { corrected };
            let log_denom = if t[k][i] > 30.0 { t[k][i] } else { sp };
            t[k][i] = -log_denom * dv.inv_beta_sat[i];
        }
    }
    vmath::exp4_batch(t, e);
    // Combine: I = gain · (nφt · q_ov) · (r · Fsat/r).
    for k in 0..n {
        let d = &devices[idx[k] as usize];
        for i in 0..4 {
            out[k][i] = d.gain[i] * (d.n_phit[i] * x[k][i]) * (r[k][i] * e[k][i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::Mosfet;
    use proptest::prelude::*;
    use slic_units::Volts;

    fn reference_params() -> DeviceParams {
        DeviceParams {
            vth0: 0.32,
            dibl: 0.08,
            ss_factor: 1.25,
            vx0: 8.5e4,
            cinv: 1.6e-2,
            width: 2.0e-7,
            vdsat: 0.22,
            beta_sat: 1.8,
            gate_cap: 0.35e-15,
            drain_cap: 0.22e-15,
        }
    }

    /// The original (pre-compilation) drain-current expression, kept verbatim as the
    /// numerical reference for the hoisted form.
    fn drain_current_reference(p: &DeviceParams, vgs: f64, vds: f64) -> f64 {
        let vgs = vgs.max(0.0);
        let vds = vds.max(0.0);
        if vds == 0.0 {
            return 0.0;
        }
        let n_phit = p.ss_factor * THERMAL_VOLTAGE;
        let vth_eff = p.vth0 - p.dibl * vds;
        let x = (vgs - vth_eff) / n_phit;
        let q_ov = n_phit * if x > 30.0 { x } else { x.exp().ln_1p() };
        let ratio = vds / p.vdsat;
        let fsat = ratio / (1.0 + ratio.powf(p.beta_sat)).powf(1.0 / p.beta_sat);
        p.width * p.cinv * q_ov * p.vx0 * fsat
    }

    #[test]
    fn compiled_matches_reference_expression_to_rounding() {
        let p = reference_params();
        let c = CompiledDevice::from_params(&p);
        for vgs in [0.0, 0.05, 0.2, 0.32, 0.5, 0.8, 1.2] {
            for vds in [1e-6, 1e-3, 0.05, 0.22, 0.5, 0.8, 1.2] {
                let reference = drain_current_reference(&p, vgs, vds);
                let compiled = c.drain_current(vgs, vds);
                let scale = reference.abs().max(1e-30);
                assert!(
                    (compiled - reference).abs() / scale < 1e-12,
                    "vgs={vgs} vds={vds}: compiled={compiled:e} reference={reference:e}"
                );
            }
        }
    }

    #[test]
    fn mosfet_api_delegates_to_compiled_form() {
        let m = Mosfet::nmos(reference_params());
        let c = CompiledDevice::new(&m);
        for (vgs, vds) in [(0.8, 0.8), (0.4, 0.1), (0.1, 0.9), (-0.2, 0.5)] {
            assert_eq!(
                m.drain_current(Volts(vgs), Volts(vds)).value(),
                c.drain_current(vgs, vds),
                "API and compiled paths must agree bit for bit at ({vgs}, {vds})"
            );
        }
    }

    #[test]
    fn cutoff_and_zero_vds_edges() {
        let c = CompiledDevice::from_params(&reference_params());
        assert_eq!(c.drain_current(0.8, 0.0), 0.0);
        assert_eq!(c.drain_current(-1.0, 0.0), 0.0);
        assert!(c.drain_current(-1.0, 0.8) < 1e-7);
        // Deep-linear region stays finite and ~proportional to vds.
        let tiny = c.drain_current(0.8, 1e-9);
        assert!(tiny.is_finite() && tiny > 0.0);
    }

    #[test]
    fn inverter_pair_is_pmos_minus_nmos() {
        let pm = Mosfet::pmos(reference_params());
        let nm = Mosfet::nmos(reference_params());
        let inv = CompiledInverter::new(&pm, &nm);
        let (vdd, vin, vout) = (0.8, 0.3, 0.5);
        let expected =
            inv.pmos().drain_current(vdd - vin, vdd - vout) - inv.nmos().drain_current(vin, vout);
        assert_eq!(inv.output_current(vdd, vin, vout), expected);
        // Input low: pull-up wins; input high: pull-down wins.
        assert!(inv.output_current(0.8, 0.0, 0.4) > 0.0);
        assert!(inv.output_current(0.8, 0.8, 0.4) < 0.0);
    }

    /// Tolerance of the SIMD lanes against the scalar compiled model: the polynomial
    /// kernels are sized to ~1e-9 relative (see `vmath`), and composition through the
    /// model stays within ~5e-8 — five orders below the SIMD mode's 0.5 % gate.
    const X4_TOLERANCE: f64 = 5e-8;

    fn x4_matches_scalar(c: &CompiledDevice, vgs: f64, vds: f64) {
        let packed = CompiledDeviceX4::pack([c; 4]);
        let got = packed.drain_current4([vgs; 4], [vds; 4]);
        let scalar = c.drain_current(vgs, vds);
        for (lane, value) in got.iter().enumerate() {
            let scale = scalar.abs().max(1e-30);
            assert!(
                (value - scalar).abs() / scale < X4_TOLERANCE,
                "lane {lane} at vgs={vgs} vds={vds}: simd={value:e} scalar={scalar:e}"
            );
        }
    }

    #[test]
    fn simd_device_tracks_scalar_across_the_operating_range() {
        let c = CompiledDevice::from_params(&reference_params());
        for vgs in [-0.2, 0.0, 0.05, 0.2, 0.32, 0.5, 0.8, 1.2] {
            for vds in [0.0, 1e-9, 1e-3, 0.05, 0.22, 0.5, 0.8, 1.2] {
                x4_matches_scalar(&c, vgs, vds);
            }
        }
    }

    #[test]
    fn simd_device_is_exactly_zero_at_zero_vds() {
        let c = CompiledDevice::from_params(&reference_params());
        let packed = CompiledDeviceX4::pack([&c; 4]);
        let out = packed.drain_current4([0.8; 4], [0.0, -0.3, 0.0, 0.0]);
        assert_eq!(out, [0.0; 4], "vds ≤ 0 lanes must be exactly zero");
    }

    #[test]
    fn simd_lanes_evaluate_distinct_devices_independently() {
        // Four different devices in one quad: each lane must match its own scalar model,
        // regardless of what shares the quad.
        let mut params = [
            reference_params(),
            reference_params(),
            reference_params(),
            reference_params(),
        ];
        params[1].vth0 = 0.25;
        params[2].width = 3.3e-7;
        params[3].beta_sat = 2.4;
        let devices = params.map(|p| CompiledDevice::from_params(&p));
        let packed = CompiledDeviceX4::pack([&devices[0], &devices[1], &devices[2], &devices[3]]);
        let vgs = [0.7, 0.4, 0.9, 0.55];
        let vds = [0.3, 0.8, 0.05, 0.6];
        let got = packed.drain_current4(vgs, vds);
        for i in 0..4 {
            let scalar = devices[i].drain_current(vgs[i], vds[i]);
            let scale = scalar.abs().max(1e-30);
            assert!(
                (got[i] - scalar).abs() / scale < X4_TOLERANCE,
                "lane {i}: simd={:e} scalar={scalar:e}",
                got[i]
            );
        }
    }

    #[test]
    fn simd_inverter_tracks_scalar_pair() {
        let pm = Mosfet::pmos(reference_params());
        let nm = Mosfet::nmos(reference_params());
        let inv = CompiledInverter::new(&pm, &nm);
        let packed = CompiledInverterX4::pack([&inv; 4]);
        for (vdd, vin, vout) in [(0.8, 0.3, 0.5), (1.0, 0.0, 0.9), (0.65, 0.65, 0.1)] {
            let got = packed.output_current4([vdd; 4], [vin; 4], [vout; 4]);
            let scalar = inv.output_current(vdd, vin, vout);
            let scale = scalar.abs().max(1e-30);
            for value in got {
                assert!(
                    (value - scalar).abs() / scale < X4_TOLERANCE,
                    "({vdd}, {vin}, {vout}): simd={value:e} scalar={scalar:e}"
                );
            }
        }
    }

    #[test]
    fn batch_sweep_is_bitwise_identical_to_per_item_evaluation() {
        let mut params = [reference_params(), reference_params(), reference_params()];
        params[1].vth0 = 0.26;
        params[2].beta_sat = 2.2;
        let compiled = params.map(|p| CompiledDevice::from_params(&p));
        let devices: Vec<CompiledDeviceX4> = compiled
            .iter()
            .map(|c| CompiledDeviceX4::pack([c; 4]))
            .collect();
        // Varied operating points including the edge lanes (vds = 0, cut-off, deep linear).
        let idx: Vec<u32> = vec![0, 2, 1, 0, 2, 1, 0];
        let vgs: Vec<F64x4> = vec![
            [0.8, 0.4, -0.2, 1.2],
            [0.0, 0.7, 0.32, 0.9],
            [0.55, 0.05, 0.8, 0.65],
            [1.0, 0.2, 0.45, 0.3],
            [0.8, 0.8, 0.8, 0.8],
            [0.15, 0.95, 0.6, 0.75],
            [0.5, 0.5, 0.0, 1.1],
        ];
        let vds: Vec<F64x4> = vec![
            [0.3, 0.0, 0.5, 1.2],
            [0.8, 1e-9, 0.22, 0.4],
            [0.05, 0.6, 0.9, 0.1],
            [1e-3, 0.7, 0.0, 0.25],
            [0.2, 0.4, 0.6, 0.8],
            [0.45, 0.33, 1.0, 0.08],
            [0.6, 0.12, 0.7, 0.9],
        ];
        let mut scratch = SweepScratch::default();
        let mut out = vec![[0.0_f64; 4]; idx.len()];
        drain_current4_batch(&devices, &idx, &vgs, &vds, &mut scratch, &mut out);
        for k in 0..idx.len() {
            let direct = devices[idx[k] as usize].drain_current4(vgs[k], vds[k]);
            for i in 0..4 {
                assert_eq!(
                    out[k][i].to_bits(),
                    direct[i].to_bits(),
                    "item {k} lane {i}: sweep {:e} vs per-item {:e}",
                    out[k][i],
                    direct[i]
                );
            }
        }
        // A second sweep through the same scratch (now warm) must agree too.
        let mut out2 = vec![[0.0_f64; 4]; idx.len()];
        drain_current4_batch(&devices, &idx, &vgs, &vds, &mut scratch, &mut out2);
        assert_eq!(out, out2);
    }

    proptest! {
        #[test]
        fn prop_simd_device_tracks_scalar(vgs in -0.5f64..1.5, vds in 0.0f64..1.5) {
            let c = CompiledDevice::from_params(&reference_params());
            x4_matches_scalar(&c, vgs, vds);
        }

        #[test]
        fn prop_compiled_tracks_reference(vgs in -0.5f64..1.5, vds in 0.0f64..1.5) {
            let p = reference_params();
            let c = CompiledDevice::from_params(&p);
            let reference = drain_current_reference(&p, vgs, vds);
            let compiled = c.drain_current(vgs, vds);
            let scale = reference.abs().max(1e-30);
            prop_assert!((compiled - reference).abs() / scale < 1e-11);
        }

        #[test]
        fn prop_compiled_current_finite_and_nonnegative(vgs in -1.0f64..2.0, vds in -1.0f64..2.0) {
            let c = CompiledDevice::from_params(&reference_params());
            let id = c.drain_current(vgs, vds);
            prop_assert!(id.is_finite() && id >= 0.0);
        }
    }
}
