//! The cross-run regression gate: threshold-driven comparison of two runs.
//!
//! Two surfaces share this machinery.  `slic profile --diff old.jsonl new.jsonl`
//! compares two *trace profiles* (total wall, per-phase wall, cache behaviour);
//! `slic history --diff` compares the last two *ledger records* with the same config
//! fingerprint (wall, sims paid, cache hit rate, counter drift, artifact identity).
//! Both produce a [`DiffReport`] whose regressions drive a nonzero exit — the bench
//! gate (`slic bench diff`) generalized into a surface any CI job can point at any
//! two runs.
//!
//! Thresholds are deliberately asymmetric: wall time is noisy (CI machines, thermal
//! state), so its default gate is loose; deterministic counters of a fixed seed are
//! exactly reproducible, so their gate is tight.  Rows below the noise floors are
//! reported but never gated — a 2 ms span doubling or a 3-miss cache drifting by one
//! is timer/jitter noise, not a regression.

use crate::ledger::RunRecord;
use crate::profile::ProfileReport;
use std::fmt::Write as _;

/// Regression thresholds, configurable via `observability.diff.*` config keys or the
/// `--wall-pct` / `--counter-pct` / `--hit-rate-drop` CLI flags.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffThresholds {
    /// Maximum tolerated wall-time increase, percent (applies to total wall and
    /// per-phase wall rows).
    pub wall_pct: f64,
    /// Maximum tolerated increase for gated counters, percent.
    pub counter_pct: f64,
    /// Maximum tolerated cache-hit-rate drop, percentage points.
    pub hit_rate_drop_pct: f64,
}

impl Default for DiffThresholds {
    fn default() -> Self {
        Self {
            wall_pct: 50.0,
            counter_pct: 10.0,
            hit_rate_drop_pct: 5.0,
        }
    }
}

/// Wall rows whose baseline is below this are never gated: sub-10 ms spans swing by
/// integer factors on timer noise alone.
const MIN_GATED_WALL_NS: u64 = 10_000_000;
/// Counter rows whose baseline is below this are never gated.
const MIN_GATED_COUNT: u64 = 16;
/// Hit-rate rows are gated only when the baseline saw at least this many lookups.
const MIN_GATED_LOOKUPS: u64 = 16;

/// Counters where an *increase* signals a regression (more cache misses, more
/// deferred lanes, more farm failovers, more kernel work for the same seed).  All
/// other counters diff informationally.
const GATED_COUNTERS: &[&str] = &[
    "cache.misses",
    "dispatch.lanes.deferred",
    "farm.degraded_jobs",
    "farm.failovers",
    "farm.heartbeats_missed",
    "farm.reconnects",
    "kernel.device_evals",
    "kernel.rejected_steps",
    "kernel.steps",
];

/// One compared quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRow {
    /// What was compared (`wall`, `phase:unit`, `cache.misses`, ...).
    pub name: String,
    /// Baseline value.
    pub old: u64,
    /// Candidate value.
    pub new: u64,
    /// Relative change, percent; positive means the candidate is larger.
    pub delta_pct: f64,
    /// Whether this row participates in the regression verdict.
    pub gated: bool,
    /// Whether this row tripped its threshold.
    pub regressed: bool,
}

/// The comparison result: every row plus the human-readable regression list.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// All compared rows, in presentation order.
    pub rows: Vec<DeltaRow>,
    /// One sentence per tripped gate; empty means the candidate passes.
    pub regressions: Vec<String>,
}

fn delta_pct(old: u64, new: u64) -> f64 {
    if old == 0 {
        if new == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (new as f64 - old as f64) / old as f64 * 100.0
    }
}

impl DiffReport {
    /// Whether no gated row tripped its threshold.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Adds an ungated, informational row.
    pub fn push_info(&mut self, name: &str, old: u64, new: u64) {
        self.rows.push(DeltaRow {
            name: name.to_string(),
            old,
            new,
            delta_pct: delta_pct(old, new),
            gated: false,
            regressed: false,
        });
    }

    /// Adds a row where an *increase* beyond `max_rise_pct` percent is a regression
    /// (wall time, cache misses, farm failovers).  Baselines below `floor` report
    /// but never gate.
    pub fn push_rise_gated(
        &mut self,
        name: &str,
        old: u64,
        new: u64,
        max_rise_pct: f64,
        floor: u64,
    ) {
        let pct = delta_pct(old, new);
        let gated = old >= floor;
        let regressed = gated && pct > max_rise_pct;
        if regressed {
            self.regressions.push(format!(
                "{name} rose {pct:.1}% ({old} -> {new}), over the {max_rise_pct:.1}% gate"
            ));
        }
        self.rows.push(DeltaRow {
            name: name.to_string(),
            old,
            new,
            delta_pct: pct,
            gated,
            regressed,
        });
    }

    /// Adds a row where a *drop* beyond `max_drop_pct` percent is a regression
    /// (throughput, hit counts).  Baselines below `floor` report but never gate.
    pub fn push_drop_gated(
        &mut self,
        name: &str,
        old: u64,
        new: u64,
        max_drop_pct: f64,
        floor: u64,
    ) {
        let pct = delta_pct(old, new);
        let gated = old >= floor;
        let regressed = gated && pct < -max_drop_pct;
        if regressed {
            self.regressions.push(format!(
                "{name} fell {:.1}% ({old} -> {new}), over the {max_drop_pct:.1}% gate",
                -pct
            ));
        }
        self.rows.push(DeltaRow {
            name: name.to_string(),
            old,
            new,
            delta_pct: pct,
            gated,
            regressed,
        });
    }

    /// Adds an always-gated identity row: any difference is a regression (used for
    /// artifact hashes, where drift under one fingerprint means lost determinism).
    pub fn push_identity(&mut self, name: &str, old: &str, new: &str) {
        let same = old == new;
        if !same {
            self.regressions.push(format!(
                "{name} changed ({old} -> {new}) for the same config fingerprint — determinism break"
            ));
        }
        // Identity rows carry a 0/1 "matches" indicator rather than magnitudes.
        self.rows.push(DeltaRow {
            name: format!("{name}.matches"),
            old: 1,
            new: u64::from(same),
            delta_pct: if same { 0.0 } else { -100.0 },
            gated: true,
            regressed: !same,
        });
    }

    /// Renders the report as a markdown table plus verdict, deterministic.
    pub fn render_md(&self, title: &str) -> String {
        let mut out = format!("# {title}\n\n");
        out.push_str("| quantity | old | new | delta | gate |\n");
        out.push_str("|---|---:|---:|---:|---|\n");
        for row in &self.rows {
            let delta = if row.delta_pct.is_infinite() {
                "+inf".to_string()
            } else {
                format!("{:+.1}%", row.delta_pct)
            };
            let gate = match (row.gated, row.regressed) {
                (_, true) => "REGRESSED",
                (true, false) => "ok",
                (false, false) => "info",
            };
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} |",
                row.name, row.old, row.new, delta, gate
            );
        }
        out.push('\n');
        if self.regressions.is_empty() {
            out.push_str("verdict: clean — no gated quantity crossed its threshold\n");
        } else {
            let _ = writeln!(out, "verdict: {} regression(s)", self.regressions.len());
            for regression in &self.regressions {
                let _ = writeln!(out, "  - {regression}");
            }
        }
        out
    }
}

/// Compares two trace profiles: total wall, per-phase wall (aligned by phase name),
/// cache hits/misses and hit rate.
pub fn diff_profiles(
    old: &ProfileReport,
    new: &ProfileReport,
    thresholds: &DiffThresholds,
) -> DiffReport {
    let mut report = DiffReport::default();
    report.push_rise_gated(
        "wall",
        old.total_ns,
        new.total_ns,
        thresholds.wall_pct,
        MIN_GATED_WALL_NS,
    );
    for old_phase in &old.phases {
        let Some(new_phase) = new.phases.iter().find(|p| p.name == old_phase.name) else {
            report.push_info(
                &format!("phase:{} (gone)", old_phase.name),
                old_phase.total_ns,
                0,
            );
            continue;
        };
        report.push_rise_gated(
            &format!("phase:{}", old_phase.name),
            old_phase.total_ns,
            new_phase.total_ns,
            thresholds.wall_pct,
            MIN_GATED_WALL_NS,
        );
    }
    for new_phase in &new.phases {
        if !old.phases.iter().any(|p| p.name == new_phase.name) {
            report.push_info(
                &format!("phase:{} (new)", new_phase.name),
                0,
                new_phase.total_ns,
            );
        }
    }
    report.push_info("cache.hits", old.cache.hits, new.cache.hits);
    report.push_rise_gated(
        "cache.misses",
        old.cache.misses,
        new.cache.misses,
        thresholds.counter_pct,
        MIN_GATED_COUNT,
    );
    diff_hit_rate(
        &mut report,
        old.cache.hits,
        old.cache.misses,
        new.cache.hits,
        new.cache.misses,
        thresholds,
    );
    report
}

/// Compares two ledger records of the same fingerprint: wall, sims paid vs cached,
/// hit rate, artifact identity, and drift over every shared counter.
pub fn diff_runs(old: &RunRecord, new: &RunRecord, thresholds: &DiffThresholds) -> DiffReport {
    let mut report = DiffReport::default();
    report.push_rise_gated(
        "wall_ns",
        old.wall_ns,
        new.wall_ns,
        thresholds.wall_pct,
        MIN_GATED_WALL_NS,
    );
    report.push_rise_gated(
        "sims_paid",
        old.sims_paid,
        new.sims_paid,
        thresholds.counter_pct,
        MIN_GATED_COUNT,
    );
    report.push_info("sims_cached", old.sims_cached, new.sims_cached);
    diff_hit_rate(
        &mut report,
        old.sims_cached,
        old.sims_paid,
        new.sims_cached,
        new.sims_paid,
        thresholds,
    );
    report.push_identity("artifact_hash", &old.artifact_hash, &new.artifact_hash);
    // Counter drift: gated counters always diff; others only show when they moved,
    // so a zero-drift report stays short enough to read.
    for (name, old_value) in &old.snapshot.counters {
        let Some(new_value) = new.counter(name) else {
            continue;
        };
        if GATED_COUNTERS.contains(&name.as_str()) {
            report.push_rise_gated(
                name,
                *old_value,
                new_value,
                thresholds.counter_pct,
                MIN_GATED_COUNT,
            );
        } else if new_value != *old_value {
            report.push_info(name, *old_value, new_value);
        }
    }
    report
}

/// Shared hit-rate gate: rate in percent, regression when it drops by more than
/// `hit_rate_drop_pct` percentage points on a baseline of enough lookups.
fn diff_hit_rate(
    report: &mut DiffReport,
    old_hits: u64,
    old_misses: u64,
    new_hits: u64,
    new_misses: u64,
    thresholds: &DiffThresholds,
) {
    let rate = |hits: u64, misses: u64| -> f64 {
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64 * 100.0
        }
    };
    let old_rate = rate(old_hits, old_misses);
    let new_rate = rate(new_hits, new_misses);
    let drop = old_rate - new_rate;
    let gated = old_hits + old_misses >= MIN_GATED_LOOKUPS;
    let regressed = gated && drop > thresholds.hit_rate_drop_pct;
    if regressed {
        report.regressions.push(format!(
            "cache hit rate fell {drop:.1} points ({old_rate:.1}% -> {new_rate:.1}%), over the {:.1}-point gate",
            thresholds.hit_rate_drop_pct
        ));
    }
    report.rows.push(DeltaRow {
        name: "cache.hit_rate_pct".to_string(),
        old: old_rate.round() as u64,
        new: new_rate.round() as u64,
        delta_pct: new_rate - old_rate,
        gated,
        regressed,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn record(wall_ns: u64, paid: u64, cached: u64, misses: u64, hash: &str) -> RunRecord {
        let metrics = MetricsRegistry::new();
        metrics.counter_set("cache.misses", misses);
        metrics.counter_set("engine.batches", 100);
        RunRecord {
            kind: "characterize".to_string(),
            fingerprint: "f".repeat(16),
            seed: 1,
            profile: "quick".to_string(),
            backend: "local".to_string(),
            wall_ns,
            sims_paid: paid,
            sims_cached: cached,
            artifact_hash: hash.to_string(),
            snapshot: metrics.snapshot(),
        }
    }

    #[test]
    fn identical_runs_diff_clean() {
        let a = record(1_000_000_000, 100, 400, 100, "abc");
        let report = diff_runs(&a, &a.clone(), &DiffThresholds::default());
        assert!(report.is_clean(), "{:?}", report.regressions);
        assert_eq!(report.rows.iter().filter(|r| r.regressed).count(), 0);
    }

    #[test]
    fn wall_slowdown_past_threshold_regresses() {
        let old = record(1_000_000_000, 100, 400, 100, "abc");
        let new = record(2_000_000_000, 100, 400, 100, "abc");
        let report = diff_runs(&old, &new, &DiffThresholds::default());
        assert!(!report.is_clean());
        assert!(
            report.regressions[0].contains("wall_ns"),
            "{:?}",
            report.regressions
        );
        // A looser gate lets the same slowdown through.
        let loose = DiffThresholds {
            wall_pct: 150.0,
            ..DiffThresholds::default()
        };
        assert!(diff_runs(&old, &new, &loose).is_clean());
    }

    #[test]
    fn tiny_baselines_report_but_never_gate() {
        // 2 ms wall doubling and a 3-miss counter doubling: both under their floors.
        let old = record(2_000_000, 100, 400, 3, "abc");
        let new = record(4_000_000, 100, 400, 6, "abc");
        let report = diff_runs(&old, &new, &DiffThresholds::default());
        assert!(report.is_clean(), "{:?}", report.regressions);
        let wall = report.rows.iter().find(|r| r.name == "wall_ns").unwrap();
        assert!(!wall.gated);
        assert_eq!(wall.new, 4_000_000);
    }

    #[test]
    fn hit_rate_drop_past_threshold_regresses() {
        let old = record(1_000_000_000, 100, 400, 100, "abc"); // 80% hit rate
        let new = record(1_000_000_000, 200, 300, 100, "abc"); // 60% hit rate
        let report = diff_runs(&old, &new, &DiffThresholds::default());
        assert!(
            report.regressions.iter().any(|r| r.contains("hit rate")),
            "{:?}",
            report.regressions
        );
    }

    #[test]
    fn artifact_hash_drift_is_always_a_regression() {
        let old = record(1_000_000_000, 100, 400, 100, "abc");
        let new = record(1_000_000_000, 100, 400, 100, "xyz");
        let report = diff_runs(&old, &new, &DiffThresholds::default());
        assert!(
            report.regressions.iter().any(|r| r.contains("determinism")),
            "{:?}",
            report.regressions
        );
    }

    #[test]
    fn ungated_counters_only_surface_when_they_move() {
        let old = record(1_000_000_000, 100, 400, 100, "abc");
        let mut new = record(1_000_000_000, 100, 400, 100, "abc");
        let report = diff_runs(&old, &new, &DiffThresholds::default());
        assert!(!report.rows.iter().any(|r| r.name == "engine.batches"));
        new.snapshot.counters = vec![
            ("cache.misses".to_string(), 100),
            ("engine.batches".to_string(), 120),
        ];
        let report = diff_runs(&old, &new, &DiffThresholds::default());
        let row = report
            .rows
            .iter()
            .find(|r| r.name == "engine.batches")
            .expect("moved counter surfaces");
        assert!(!row.gated);
        assert!(report.is_clean());
    }

    #[test]
    fn render_lists_regressions_and_is_deterministic() {
        let old = record(1_000_000_000, 100, 400, 100, "abc");
        let new = record(3_000_000_000, 100, 400, 100, "abc");
        let report = diff_runs(&old, &new, &DiffThresholds::default());
        let rendered = report.render_md("slic history diff");
        assert_eq!(rendered, report.render_md("slic history diff"));
        assert!(rendered.contains("REGRESSED"), "{rendered}");
        assert!(rendered.contains("verdict: 1 regression(s)"), "{rendered}");
    }
}
