//! `slic-obs`: structured run tracing and a unified metrics registry.
//!
//! The suite's artifacts are bit-identical across backends, shard counts and farm
//! failure patterns — which means *performance* evidence cannot live in artifacts at
//! all.  This crate is the display-only telemetry layer the rest of the workspace
//! threads through its hot paths:
//!
//! * [`trace::TraceRecorder`] — an opt-in JSON-lines span/event recorder (monotonic
//!   timestamps, thread ids, parent correlation) behind `observability.trace` /
//!   `--trace out.jsonl`.  Disabled recorders are free: every call no-ops on a `None`.
//! * [`metrics::MetricsRegistry`] — counters and fixed-bucket histograms with a
//!   sorted, deterministic snapshot, unifying the per-subsystem counter structs
//!   (`DispatchSnapshot`, `FarmStats`, `KernelStatsSnapshot`, cache hit/miss) behind
//!   one post-run summary surface.
//! * [`profile`] — the analysis side: a dependency-free parser for the trace schema
//!   and the report builder behind `slic profile <trace.jsonl>`.
//!
//! Tracing is display-only **by construction**: nothing here feeds a result path, and
//! the only wall-clock read in the workspace lives in [`clock::MonotonicClock`] behind
//! the [`clock::Clock`] trait (the scoped `slic-lint` D1 exemption covers exactly this
//! crate).  `RunArtifact` bytes are identical with tracing on or off — CI `cmp`-gates
//! that invariant.

pub mod clock;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use trace::{SpanGuard, TraceRecorder};

/// The bundle the pipeline threads through engine, backends and runner: one trace
/// recorder plus one metrics registry, both cheap to clone and free when disabled.
#[derive(Debug, Clone, Default)]
pub struct Observability {
    /// The span/event recorder; [`TraceRecorder::disabled`] (the default) is a no-op.
    pub trace: TraceRecorder,
    /// The shared counter/histogram registry, always live (counters are cheap).
    pub metrics: MetricsRegistry,
}

impl Observability {
    /// A fully disabled bundle: no trace sink, empty registry.
    pub fn disabled() -> Self {
        Self::default()
    }
}
