//! Historical learning: characterize old technologies once, archive the compact-model fits.
//!
//! This is the left-hand loop of Fig. 4 in the paper: for every historical technology,
//! every cell and every primary timing arc, a reference grid of input conditions is
//! simulated, the compact model is extracted by least squares, and the extracted parameters
//! plus the per-condition relative residuals are archived in a [`HistoricalDatabase`].
//! The database is all the Bayesian flow ever needs from the old nodes — the expensive
//! simulations are never repeated.

use serde::{Deserialize, Serialize};
use slic_bayes::{ConditionResidual, HistoricalDatabase, HistoricalRecord, TimingMetric};
use slic_cells::{Cell, Library, TimingArc};
use slic_device::{ProcessSample, TechnologyNode};
use slic_spice::{
    CharacterizationEngine, MixedLane, SimulationCache, SimulationCounter, TransientConfig,
};
use slic_timing_model::{LeastSquaresFitter, TimingSample};
use std::sync::Arc;

/// Configuration of the historical learning pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistoricalLearningConfig {
    /// Reference grid shape `(Sin levels, Cload levels, Vdd levels)` simulated per arc.
    pub grid_levels: (usize, usize, usize),
    /// Transient solver settings used for the historical simulations.
    pub transient: TransientConfig,
}

impl Default for HistoricalLearningConfig {
    fn default() -> Self {
        Self {
            grid_levels: (4, 4, 3),
            transient: TransientConfig::fast(),
        }
    }
}

/// The outcome of a historical learning pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoricalLearningResult {
    /// The archived fits, ready to feed prior and precision learning.
    pub database: HistoricalDatabase,
    /// Total number of transient simulations spent across all historical technologies
    /// (the `NTech · NLUT` term of the paper's cost model).
    pub simulation_cost: u64,
}

/// Runs the historical learning pass.
#[derive(Debug, Clone, Default)]
pub struct HistoricalLearner {
    config: HistoricalLearningConfig,
}

impl HistoricalLearner {
    /// Creates a learner with the given configuration.
    pub fn new(config: HistoricalLearningConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HistoricalLearningConfig {
        &self.config
    }

    /// Characterizes every (technology, cell, primary arc, metric) combination and archives
    /// the fits.
    ///
    /// # Panics
    ///
    /// Panics if the library is empty or the configured transient settings are invalid.
    pub fn learn(
        &self,
        technologies: &[TechnologyNode],
        library: &Library,
    ) -> HistoricalLearningResult {
        self.learn_shared(technologies, library, &SimulationCounter::new(), None)
    }

    /// As [`learn`](Self::learn), but every per-technology engine shares `counter` (and the
    /// optional simulation `cache`), so a library-scale pipeline aggregates the cost of its
    /// learning stage into the same total as its characterization stage.
    ///
    /// # Panics
    ///
    /// Panics if the library is empty or the configured transient settings are invalid.
    pub fn learn_shared(
        &self,
        technologies: &[TechnologyNode],
        library: &Library,
        counter: &SimulationCounter,
        cache: Option<Arc<dyn SimulationCache>>,
    ) -> HistoricalLearningResult {
        self.learn_shared_with_backend(technologies, library, counter, cache, None)
    }

    /// As [`learn_shared`](Self::learn_shared), with the per-technology engines also
    /// routing their solves through `backend` (e.g. a `slic-farm` fleet) — so a farmed
    /// pipeline distributes its learning stage exactly like its characterization stage.
    ///
    /// # Panics
    ///
    /// Panics if the library is empty or the configured transient settings are invalid.
    pub fn learn_shared_with_backend(
        &self,
        technologies: &[TechnologyNode],
        library: &Library,
        counter: &SimulationCounter,
        cache: Option<Arc<dyn SimulationCache>>,
        backend: Option<Arc<dyn slic_spice::SimulationBackend>>,
    ) -> HistoricalLearningResult {
        assert!(!library.is_empty(), "cannot learn from an empty library");
        let mut database = HistoricalDatabase::new();
        let mut simulation_cost = 0u64;
        for tech in technologies {
            let mut engine =
                CharacterizationEngine::with_config(tech.clone(), self.config.transient)
                    .expect("historical learning transient configuration must be valid")
                    .with_shared_counter(counter.clone());
            if let Some(cache) = &cache {
                engine = engine.with_cache(cache.clone());
            }
            if let Some(backend) = &backend {
                engine = engine.with_backend(backend.clone());
            }
            let cost_before = counter.count();
            let grid = engine.input_space().lut_grid(
                self.config.grid_levels.0,
                self.config.grid_levels.1,
                self.config.grid_levels.2,
            );
            // One mega-batch of every (cell, arc, grid point) lane at the nominal
            // corner: training a whole node costs one mixed worklist instead of one
            // sweep per arc, so the batched kernel stays saturated across arcs.
            let nominal = ProcessSample::nominal();
            let arcs: Vec<(Cell, TimingArc)> = library
                .cells()
                .iter()
                .flat_map(|&cell| {
                    TimingArc::primary_arcs(cell)
                        .into_iter()
                        .map(move |arc| (cell, arc))
                })
                .collect();
            let lanes: Vec<MixedLane> = arcs
                .iter()
                .flat_map(|&(cell, arc)| grid.iter().map(move |p| (cell, arc, *p, nominal)))
                .collect();
            // One transient run per grid point yields both delay and slew.
            let flat = engine.simulate_mixed(&lanes);
            let mut per_arc = flat.chunks(grid.len().max(1));
            for &(cell, arc) in &arcs {
                let measurements = per_arc.next().expect("one measurement row per arc");
                let ieffs: Vec<_> = grid
                    .iter()
                    .map(|p| engine.ieff(&arc, p, &nominal))
                    .collect();
                for metric in TimingMetric::BOTH {
                    let samples: Vec<TimingSample> = grid
                        .iter()
                        .zip(measurements)
                        .zip(&ieffs)
                        .map(|((point, m), ieff)| {
                            let observed = match metric {
                                TimingMetric::Delay => m.delay,
                                TimingMetric::OutputSlew => m.output_slew,
                            };
                            TimingSample::new(*point, *ieff, observed)
                        })
                        .collect();
                    let fit = LeastSquaresFitter::new().fit(&samples);
                    let residuals: Vec<ConditionResidual> = samples
                        .iter()
                        .map(|s| ConditionResidual {
                            point: s.point,
                            relative_residual: fit.params.relative_error(s),
                        })
                        .collect();
                    database.push(HistoricalRecord::new(
                        tech.name(),
                        tech.node_nm(),
                        cell.name(),
                        arc.id(),
                        metric,
                        fit.params,
                        fit.params.mean_relative_error_percent(&samples),
                        residuals,
                    ));
                }
            }
            simulation_cost += counter.count() - cost_before;
        }
        HistoricalLearningResult {
            database,
            simulation_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slic_bayes::PriorBuilder;
    use slic_cells::{Cell, CellKind, DriveStrength};

    fn tiny_config() -> HistoricalLearningConfig {
        HistoricalLearningConfig {
            grid_levels: (3, 3, 2),
            transient: TransientConfig::fast(),
        }
    }

    fn two_node_suite() -> Vec<TechnologyNode> {
        vec![TechnologyNode::n28_bulk(), TechnologyNode::n14_finfet()]
    }

    #[test]
    fn learning_produces_records_for_every_combination() {
        let library = Library::new(
            "mini",
            [
                Cell::new(CellKind::Inv, DriveStrength::X1),
                Cell::new(CellKind::Nand2, DriveStrength::X1),
            ],
        );
        let result = HistoricalLearner::new(tiny_config()).learn(&two_node_suite(), &library);
        // 2 techs x 2 cells x 2 arcs x 2 metrics = 16 records.
        assert_eq!(result.database.len(), 16);
        // 2 techs x 2 cells x 2 arcs x 18 grid points = 144 simulations.
        assert_eq!(result.simulation_cost, 144);
        assert_eq!(result.database.technology_names().len(), 2);
    }

    #[test]
    fn historical_fits_are_accurate_and_physical() {
        let library = Library::new("inv-only", [Cell::new(CellKind::Inv, DriveStrength::X1)]);
        let result = HistoricalLearner::new(tiny_config()).learn(&two_node_suite(), &library);
        for record in result.database.records() {
            assert!(
                record.fit_error_percent < 6.0,
                "{} {} {}: {}%",
                record.tech_name,
                record.arc_id,
                record.metric,
                record.fit_error_percent
            );
            assert!(record.params.kd > 0.0);
            assert!(record.params.cpar > -1.0);
            assert!(record.residuals.len() == 18);
        }
    }

    #[test]
    fn learned_database_supports_prior_building() {
        let library = Library::paper_trio();
        let result = HistoricalLearner::new(tiny_config()).learn(&two_node_suite(), &library);
        let prior = PriorBuilder::new()
            .build(&result.database, TimingMetric::Delay, Some("NOR2"))
            .unwrap();
        let mean = prior.mean_params();
        // Delay parameters land in the physically expected region (Table I ballpark).
        assert!(mean.kd > 0.05 && mean.kd < 2.0, "kd = {}", mean.kd);
        assert!(
            mean.v_prime > -0.6 && mean.v_prime < 0.3,
            "v' = {}",
            mean.v_prime
        );
    }

    #[test]
    #[should_panic(expected = "empty library")]
    fn empty_library_rejected() {
        let _ = HistoricalLearner::new(tiny_config())
            .learn(&two_node_suite(), &Library::new("empty", []));
    }
}
