//! The analysis side of the trace schema: a dependency-free JSON-lines parser and the
//! report builder behind `slic profile <trace.jsonl>`.
//!
//! The parser accepts the constrained grammar [`crate::trace`] emits (objects, string
//! and number values, string-valued attr maps) plus enough general JSON to be honest
//! about malformed input.  A trace cut short — worker killed mid-write, disk filled —
//! parses to its longest well-formed prefix: every unparseable line is *counted and
//! dropped*, never silently absorbed, and the CLI exits nonzero when any line was
//! dropped so CI cannot mistake a truncated trace for a complete one.

use crate::metrics::Histogram;
use std::collections::BTreeMap;

/// A parsed JSON value (the subset the trace schema needs, plus arrays for honesty).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object-field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// Numeric-field read as `u64`; `None` on negatives and non-numbers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(value) if *value >= 0.0 => Some(*value as u64),
            _ => None,
        }
    }

    /// String-field read; `None` on non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(text) => Some(text),
            _ => None,
        }
    }
}

/// Parses one JSON document from `text` (surrounding whitespace allowed).
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let value = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing content at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while chars
        .get(*pos)
        .is_some_and(|c| matches!(c, ' ' | '\t' | '\n' | '\r'))
    {
        *pos += 1;
    }
}

fn expect(chars: &[char], pos: &mut usize, want: char) -> Result<(), String> {
    if chars.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{want}` at offset {pos}"))
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some('{') => parse_object(chars, pos),
        Some('[') => parse_array(chars, pos),
        Some('"') => parse_string(chars, pos).map(Json::Str),
        Some('t') => parse_literal(chars, pos, "true", Json::Bool(true)),
        Some('f') => parse_literal(chars, pos, "false", Json::Bool(false)),
        Some('n') => parse_literal(chars, pos, "null", Json::Null),
        Some(c) if *c == '-' || c.is_ascii_digit() => parse_number(chars, pos),
        Some(c) => Err(format!("unexpected `{c}` at offset {pos}")),
    }
}

fn parse_literal(chars: &[char], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    for want in word.chars() {
        if chars.get(*pos) != Some(&want) {
            return Err(format!("malformed literal at offset {pos}"));
        }
        *pos += 1;
    }
    Ok(value)
}

fn parse_number(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if chars.get(*pos) == Some(&'-') {
        *pos += 1;
    }
    while chars
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
    {
        *pos += 1;
    }
    let text: String = chars[start..*pos].iter().collect();
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("malformed number `{text}` at offset {start}"))
}

fn parse_string(chars: &[char], pos: &mut usize) -> Result<String, String> {
    expect(chars, pos, '"')?;
    let mut out = String::new();
    loop {
        match chars.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some('"') => {
                *pos += 1;
                return Ok(out);
            }
            Some('\\') => {
                *pos += 1;
                match chars.get(*pos) {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let first = parse_hex4(chars, pos)?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // A high surrogate must pair with `\uDC00..` next.
                            if chars.get(*pos + 1) == Some(&'\\')
                                && chars.get(*pos + 2) == Some(&'u')
                            {
                                *pos += 2;
                                let second = parse_hex4(chars, pos)?;
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                return Err("unpaired surrogate escape".to_string());
                            }
                        } else {
                            first
                        };
                        match char::from_u32(code) {
                            Some(ch) => out.push(ch),
                            None => return Err(format!("invalid scalar \\u{code:x}")),
                        }
                    }
                    _ => return Err(format!("invalid escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(c) => {
                out.push(*c);
                *pos += 1;
            }
        }
    }
}

/// Reads the four hex digits after `\u`, leaving `pos` on the final digit.
fn parse_hex4(chars: &[char], pos: &mut usize) -> Result<u32, String> {
    let mut code = 0u32;
    for _ in 0..4 {
        *pos += 1;
        let digit = chars
            .get(*pos)
            .and_then(|c| c.to_digit(16))
            .ok_or_else(|| format!("malformed \\u escape at offset {pos}"))?;
        code = (code << 4) | digit;
    }
    Ok(code)
}

fn parse_array(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    expect(chars, pos, '[')?;
    let mut items = Vec::new();
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(chars, pos)?);
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some(',') => *pos += 1,
            Some(']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at offset {pos}")),
        }
    }
}

fn parse_object(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    expect(chars, pos, '{')?;
    let mut fields = Vec::new();
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(chars, pos);
        let key = parse_string(chars, pos)?;
        skip_ws(chars, pos);
        expect(chars, pos, ':')?;
        let value = parse_value(chars, pos)?;
        fields.push((key, value));
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some(',') => *pos += 1,
            Some('}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
        }
    }
}

/// Span vs instantaneous event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    Span,
    Event,
}

/// One decoded trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    pub kind: RecordKind,
    pub id: u64,
    pub parent: Option<u64>,
    pub thread: u64,
    pub name: String,
    /// Span start / event timestamp, nanoseconds since recorder origin.
    pub start_ns: u64,
    /// Span duration; zero for events.
    pub dur_ns: u64,
    pub attrs: Vec<(String, String)>,
}

/// A parsed trace file: the salvaged record prefix plus the damage report.
#[derive(Debug, Default)]
pub struct ParsedTrace {
    pub records: Vec<TraceRecord>,
    /// Non-empty lines that failed to parse — a truncated tail, injected garbage, or
    /// interleaved corruption.  Any nonzero count makes `slic profile` exit nonzero.
    pub dropped: usize,
}

/// Parses a whole trace file, salvaging every well-formed line.
pub fn parse_trace(text: &str) -> ParsedTrace {
    let mut parsed = ParsedTrace::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_json(line).ok().and_then(|json| decode_record(&json)) {
            Some(record) => parsed.records.push(record),
            None => parsed.dropped += 1,
        }
    }
    parsed
}

fn decode_record(json: &Json) -> Option<TraceRecord> {
    let kind = match json.get("type")?.as_str()? {
        "span" => RecordKind::Span,
        "event" => RecordKind::Event,
        _ => return None,
    };
    let attrs = match json.get("attrs") {
        Some(Json::Obj(fields)) => fields
            .iter()
            .map(|(key, value)| Some((key.clone(), value.as_str()?.to_string())))
            .collect::<Option<Vec<_>>>()?,
        _ => Vec::new(),
    };
    Some(TraceRecord {
        kind,
        id: json.get("id")?.as_u64()?,
        parent: json.get("parent").and_then(Json::as_u64),
        thread: json.get("thread")?.as_u64()?,
        name: json.get("name")?.as_str()?.to_string(),
        start_ns: match kind {
            RecordKind::Span => json.get("start_ns")?.as_u64()?,
            RecordKind::Event => json.get("at_ns")?.as_u64()?,
        },
        dur_ns: match kind {
            RecordKind::Span => json.get("dur_ns")?.as_u64()?,
            RecordKind::Event => 0,
        },
        attrs: attrs.clone(),
    })
}

fn attr<'a>(record: &'a TraceRecord, key: &str) -> Option<&'a str> {
    record
        .attrs
        .iter()
        .find(|(name, _)| name == key)
        .map(|(_, value)| value.as_str())
}

/// One row of the phase breakdown: every span name, with counts and total time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    pub name: String,
    pub count: u64,
    pub total_ns: u64,
}

/// One row of the hottest-units table, keyed by the unit span's `(cell, arc)` attrs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitRow {
    pub cell: String,
    pub arc: String,
    pub count: u64,
    pub total_ns: u64,
}

/// One row of the worker timeline, keyed by the `worker` attr of farm spans.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerRow {
    pub worker: String,
    /// Completed `farm.roundtrip` spans.
    pub jobs: u64,
    /// Lanes carried by those round trips.
    pub lanes: u64,
    /// Time inside round trips — the busy side of the utilization split.
    pub busy_ns: u64,
    /// Heartbeat probes recorded against this worker.
    pub heartbeats: u64,
    /// Redial campaigns recorded against this worker.
    pub redials: u64,
    /// `busy_ns` over the whole trace wall span, percent.
    pub utilization_pct: f64,
}

/// Cache effectiveness, read from the end-of-run `metrics` event (with the raw
/// solve-batch span attrs as a fallback for partial traces).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheReport {
    pub hits: u64,
    pub misses: u64,
    pub warm_hits: u64,
    pub hit_ratio_pct: f64,
    /// The `cache.lookup.hit_lanes` histogram, when the metrics event carried one.
    pub lookup_histogram: Option<Histogram>,
}

/// The reconstructed profile of one trace.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Wall span of the trace: latest end minus earliest start.
    pub total_ns: u64,
    pub spans: u64,
    pub events: u64,
    pub dropped: u64,
    pub threads: u64,
    pub phases: Vec<PhaseRow>,
    pub units: Vec<UnitRow>,
    pub workers: Vec<WorkerRow>,
    pub cache: CacheReport,
    /// The raw end-of-run metrics snapshot attrs, verbatim and sorted.
    pub metrics: Vec<(String, String)>,
}

/// Builds the report: phase breakdown, top-`top_n` hottest units, per-worker
/// utilization, cache effectiveness.
pub fn build_report(parsed: &ParsedTrace, top_n: usize) -> ProfileReport {
    let records = &parsed.records;
    let mut report = ProfileReport {
        dropped: parsed.dropped as u64,
        ..ProfileReport::default()
    };
    let mut earliest = u64::MAX;
    let mut latest = 0u64;
    let mut threads: BTreeMap<u64, ()> = BTreeMap::new();
    for record in records {
        earliest = earliest.min(record.start_ns);
        latest = latest.max(record.start_ns + record.dur_ns);
        threads.insert(record.thread, ());
        match record.kind {
            RecordKind::Span => report.spans += 1,
            RecordKind::Event => report.events += 1,
        }
    }
    report.threads = threads.len() as u64;
    report.total_ns = latest.saturating_sub(if earliest == u64::MAX { 0 } else { earliest });

    // Phase breakdown: aggregate every span by name.
    let mut phases: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for record in records.iter().filter(|r| r.kind == RecordKind::Span) {
        let entry = phases.entry(&record.name).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += record.dur_ns;
    }
    report.phases = phases
        .into_iter()
        .map(|(name, (count, total_ns))| PhaseRow {
            name: name.to_string(),
            count,
            total_ns,
        })
        .collect();
    report
        .phases
        .sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));

    // Hottest (cell, arc) units.
    let mut units: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
    for record in records
        .iter()
        .filter(|r| r.kind == RecordKind::Span && r.name == "unit")
    {
        let cell = attr(record, "cell").unwrap_or("?").to_string();
        let arc = attr(record, "arc").unwrap_or("?").to_string();
        let entry = units.entry((cell, arc)).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += record.dur_ns;
    }
    report.units = units
        .into_iter()
        .map(|((cell, arc), (count, total_ns))| UnitRow {
            cell,
            arc,
            count,
            total_ns,
        })
        .collect();
    report
        .units
        .sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.cell.cmp(&b.cell)));
    report.units.truncate(top_n);

    // Worker utilization/idle timeline from farm spans.
    let mut workers: BTreeMap<String, WorkerRow> = BTreeMap::new();
    for record in records.iter().filter(|r| r.kind == RecordKind::Span) {
        let Some(worker) = attr(record, "worker") else {
            continue;
        };
        let row = workers
            .entry(worker.to_string())
            .or_insert_with(|| WorkerRow {
                worker: worker.to_string(),
                jobs: 0,
                lanes: 0,
                busy_ns: 0,
                heartbeats: 0,
                redials: 0,
                utilization_pct: 0.0,
            });
        match record.name.as_str() {
            "farm.roundtrip" => {
                row.jobs += 1;
                row.busy_ns += record.dur_ns;
                row.lanes += attr(record, "lanes")
                    .and_then(|lanes| lanes.parse::<u64>().ok())
                    .unwrap_or(0);
            }
            "farm.heartbeat" => row.heartbeats += 1,
            "farm.redial" => row.redials += 1,
            _ => {}
        }
    }
    report.workers = workers.into_values().collect();
    for row in &mut report.workers {
        row.utilization_pct = if report.total_ns == 0 {
            0.0
        } else {
            100.0 * row.busy_ns as f64 / report.total_ns as f64
        };
    }
    report
        .workers
        .sort_by(|a, b| b.busy_ns.cmp(&a.busy_ns).then(a.worker.cmp(&b.worker)));

    // Cache effectiveness: prefer the terminal metrics event; fall back to summing
    // the solve-batch span attrs when the run died before writing it.
    if let Some(metrics) = records
        .iter()
        .rev()
        .find(|r| r.kind == RecordKind::Event && r.name == "metrics")
    {
        report.metrics = metrics.attrs.clone();
        report.metrics.sort();
        let counter = |name: &str| {
            attr(metrics, name)
                .and_then(|value| value.parse::<u64>().ok())
                .unwrap_or(0)
        };
        report.cache.hits = counter("cache.hits");
        report.cache.misses = counter("cache.misses");
        report.cache.warm_hits = counter("cache.hits.warm");
        report.cache.lookup_histogram =
            attr(metrics, "cache.lookup.hit_lanes").and_then(Histogram::decode);
    } else {
        for record in records
            .iter()
            .filter(|r| r.kind == RecordKind::Span && r.name == "solve_batch")
        {
            let lanes = |key: &str| {
                attr(record, key)
                    .and_then(|value| value.parse::<u64>().ok())
                    .unwrap_or(0)
            };
            report.cache.hits += lanes("cached");
            report.cache.misses += lanes("lanes").saturating_sub(lanes("cached"));
        }
    }
    let looked_up = report.cache.hits + report.cache.misses;
    report.cache.hit_ratio_pct = if looked_up == 0 {
        0.0
    } else {
        100.0 * report.cache.hits as f64 / looked_up as f64
    };
    report
}

fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1_000_000.0)
}

/// Renders the report as Markdown (`--format md`, the default).
pub fn render_md(report: &ProfileReport) -> String {
    let mut out = String::from("# slic profile\n\n");
    out.push_str(&format!(
        "- wall span: {} ms across {} thread(s)\n- records: {} span(s), {} event(s), {} dropped line(s)\n\n",
        ms(report.total_ns),
        report.threads,
        report.spans,
        report.events,
        report.dropped,
    ));
    out.push_str("## Phase breakdown\n\n| span | count | total (ms) |\n|---|---:|---:|\n");
    for row in &report.phases {
        out.push_str(&format!(
            "| {} | {} | {} |\n",
            row.name,
            row.count,
            ms(row.total_ns)
        ));
    }
    if !report.units.is_empty() {
        out.push_str(
            "\n## Hottest units\n\n| cell | arc | units | total (ms) |\n|---|---|---:|---:|\n",
        );
        for row in &report.units {
            out.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                row.cell,
                row.arc,
                row.count,
                ms(row.total_ns)
            ));
        }
    }
    if !report.workers.is_empty() {
        out.push_str(
            "\n## Worker timeline\n\n| worker | jobs | lanes | busy (ms) | util % | heartbeats | redials |\n|---|---:|---:|---:|---:|---:|---:|\n",
        );
        for row in &report.workers {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {:.1} | {} | {} |\n",
                row.worker,
                row.jobs,
                row.lanes,
                ms(row.busy_ns),
                row.utilization_pct,
                row.heartbeats,
                row.redials,
            ));
        }
    }
    out.push_str(&format!(
        "\n## Cache effectiveness\n\n- hits: {} ({} warm), misses: {}, hit ratio: {:.1} %\n",
        report.cache.hits, report.cache.warm_hits, report.cache.misses, report.cache.hit_ratio_pct,
    ));
    if let Some(histogram) = &report.cache.lookup_histogram {
        out.push_str(&format!(
            "- lookup hit-lanes histogram: {} lookup(s), {} hit lane(s), p50={} p95={} max={}\n",
            histogram.total,
            histogram.sum,
            histogram.quantile(0.50),
            histogram.quantile(0.95),
            histogram.max,
        ));
    }
    if !report.metrics.is_empty() {
        out.push_str("\n## Metrics snapshot\n\n| metric | value |\n|---|---|\n");
        for (name, value) in &report.metrics {
            // Histogram attrs render as a readable percentile summary; the raw
            // encoding stays available via `--format json`.
            match Histogram::decode(value) {
                Some(histogram) => out.push_str(&format!(
                    "| {name} | total={} sum={} p50={} p95={} max={} |\n",
                    histogram.total,
                    histogram.sum,
                    histogram.quantile(0.50),
                    histogram.quantile(0.95),
                    histogram.max,
                )),
                None => out.push_str(&format!("| {name} | {value} |\n")),
            }
        }
    }
    out
}

/// Renders the report as JSON (`--format json`) — hand-rolled, stable field order.
pub fn render_json(report: &ProfileReport) -> String {
    use crate::trace::escape_json as esc;
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"total_ns\":{},\"threads\":{},\"spans\":{},\"events\":{},\"dropped\":{}",
        report.total_ns, report.threads, report.spans, report.events, report.dropped
    ));
    out.push_str(",\"phases\":[");
    for (i, row) in report.phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{}}}",
            esc(&row.name),
            row.count,
            row.total_ns
        ));
    }
    out.push_str("],\"units\":[");
    for (i, row) in report.units.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"cell\":\"{}\",\"arc\":\"{}\",\"count\":{},\"total_ns\":{}}}",
            esc(&row.cell),
            esc(&row.arc),
            row.count,
            row.total_ns
        ));
    }
    out.push_str("],\"workers\":[");
    for (i, row) in report.workers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"worker\":\"{}\",\"jobs\":{},\"lanes\":{},\"busy_ns\":{},\"utilization_pct\":{:.3},\"heartbeats\":{},\"redials\":{}}}",
            esc(&row.worker),
            row.jobs,
            row.lanes,
            row.busy_ns,
            row.utilization_pct,
            row.heartbeats,
            row.redials
        ));
    }
    out.push_str(&format!(
        "],\"cache\":{{\"hits\":{},\"misses\":{},\"warm_hits\":{},\"hit_ratio_pct\":{:.3},\"lookup_histogram_total\":{},\"lookup_histogram_sum\":{}}}",
        report.cache.hits,
        report.cache.misses,
        report.cache.warm_hits,
        report.cache.hit_ratio_pct,
        report
            .cache
            .lookup_histogram
            .as_ref()
            .map_or(0, |histogram| histogram.total),
        report
            .cache
            .lookup_histogram
            .as_ref()
            .map_or(0, |histogram| histogram.sum),
    ));
    out.push_str(",\"metrics\":{");
    for (i, (name, value)) in report.metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":\"{}\"", esc(name), esc(value)));
    }
    out.push_str("}}");
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_line(
        id: u64,
        parent: Option<u64>,
        name: &str,
        start: u64,
        dur: u64,
        attrs: &str,
    ) -> String {
        let parent = parent.map_or(String::new(), |p| format!("\"parent\":{p},"));
        format!(
            "{{\"type\":\"span\",\"id\":{id},{parent}\"thread\":1,\"name\":\"{name}\",\"start_ns\":{start},\"dur_ns\":{dur},\"attrs\":{{{attrs}}}}}"
        )
    }

    #[test]
    fn parser_accepts_the_trace_grammar() {
        let json = parse_json(
            "{\"type\":\"span\",\"id\":3,\"thread\":2,\"name\":\"a \\\"b\\\"\\n\",\"start_ns\":1,\"dur_ns\":2,\"attrs\":{\"k\":\"v\"}}",
        )
        .expect("parses");
        assert_eq!(json.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(json.get("name").and_then(Json::as_str), Some("a \"b\"\n"));
    }

    #[test]
    fn parser_rejects_truncated_lines() {
        assert!(parse_json("{\"type\":\"span\",\"id\":3,\"na").is_err());
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        let json = parse_json("{\"k\":\"\\ud83d\\ude00\"}").expect("parses");
        assert_eq!(json.get("k").and_then(Json::as_str), Some("😀"));
        assert!(
            parse_json("{\"k\":\"\\ud83d\"}").is_err(),
            "unpaired high surrogate"
        );
    }

    #[test]
    fn truncated_tail_is_salvaged_and_counted() {
        let text = format!(
            "{}\n{}\n{{\"type\":\"span\",\"id\":9,\"thr",
            span_line(1, None, "characterize", 0, 100, ""),
            span_line(
                2,
                Some(1),
                "unit",
                10,
                30,
                "\"cell\":\"INV_X1\",\"arc\":\"fall@0\""
            ),
        );
        let parsed = parse_trace(&text);
        assert_eq!(parsed.records.len(), 2);
        assert_eq!(parsed.dropped, 1);
    }

    #[test]
    fn report_reconstructs_phases_units_workers_and_cache() {
        let lines = [
            span_line(1, None, "characterize", 0, 1000, ""),
            span_line(2, Some(1), "unit", 10, 300, "\"cell\":\"INV_X1\",\"arc\":\"fall@0\""),
            span_line(3, Some(1), "unit", 20, 500, "\"cell\":\"NAND2_X1\",\"arc\":\"rise@1\""),
            span_line(4, Some(2), "solve_batch", 30, 100, "\"lanes\":\"8\",\"cached\":\"3\""),
            span_line(5, Some(4), "farm.roundtrip", 40, 80, "\"worker\":\"spawned-0\",\"lanes\":\"5\""),
            span_line(6, Some(4), "farm.heartbeat", 35, 2, "\"worker\":\"spawned-0\",\"ok\":\"true\""),
            "{\"type\":\"event\",\"id\":7,\"thread\":1,\"name\":\"metrics\",\"at_ns\":990,\"attrs\":{\"cache.hits\":\"3\",\"cache.misses\":\"5\",\"cache.hits.warm\":\"1\",\"cache.lookup.hit_lanes\":\"total=1;sum=3;bounds=2,8;counts=0,1;overflow=0\"}}".to_string(),
        ];
        let parsed = parse_trace(&lines.join("\n"));
        assert_eq!(parsed.dropped, 0);
        let report = build_report(&parsed, 10);
        assert_eq!(report.spans, 6);
        assert_eq!(report.events, 1);
        assert_eq!(report.total_ns, 1000);
        assert_eq!(report.phases[0].name, "characterize");
        assert_eq!(report.units.len(), 2);
        assert_eq!(report.units[0].cell, "NAND2_X1", "hottest unit first");
        assert_eq!(report.workers.len(), 1);
        assert_eq!(report.workers[0].jobs, 1);
        assert_eq!(report.workers[0].lanes, 5);
        assert_eq!(report.workers[0].heartbeats, 1);
        assert!((report.workers[0].utilization_pct - 8.0).abs() < 1e-9);
        assert_eq!(report.cache.hits, 3);
        assert_eq!(report.cache.warm_hits, 1);
        assert!((report.cache.hit_ratio_pct - 37.5).abs() < 1e-9);
        assert_eq!(
            report.cache.lookup_histogram.as_ref().map(|h| h.sum),
            Some(3)
        );
    }

    #[test]
    fn top_n_truncates_the_unit_table() {
        let lines = [
            span_line(1, None, "unit", 0, 10, "\"cell\":\"A\",\"arc\":\"x\""),
            span_line(2, None, "unit", 0, 30, "\"cell\":\"B\",\"arc\":\"y\""),
            span_line(3, None, "unit", 0, 20, "\"cell\":\"C\",\"arc\":\"z\""),
        ];
        let report = build_report(&parse_trace(&lines.join("\n")), 2);
        assert_eq!(report.units.len(), 2);
        assert_eq!(report.units[0].cell, "B");
        assert_eq!(report.units[1].cell, "C");
    }

    #[test]
    fn cache_falls_back_to_span_attrs_without_a_metrics_event() {
        let line = span_line(
            1,
            None,
            "solve_batch",
            0,
            10,
            "\"lanes\":\"8\",\"cached\":\"2\"",
        );
        let report = build_report(&parse_trace(&line), 5);
        assert_eq!(report.cache.hits, 2);
        assert_eq!(report.cache.misses, 6);
    }

    #[test]
    fn renderers_emit_their_headline_fields() {
        let lines = [
            span_line(1, None, "characterize", 0, 100, ""),
            span_line(
                2,
                Some(1),
                "farm.roundtrip",
                5,
                50,
                "\"worker\":\"w0\",\"lanes\":\"4\"",
            ),
        ];
        let report = build_report(&parse_trace(&lines.join("\n")), 5);
        let md = render_md(&report);
        assert!(md.contains("## Phase breakdown"));
        assert!(md.contains("| w0 |"));
        let json_text = render_json(&report);
        let parsed = parse_json(json_text.trim()).expect("self-parseable JSON");
        assert_eq!(parsed.get("spans").and_then(Json::as_u64), Some(2));
        let Some(Json::Arr(workers)) = parsed.get("workers") else {
            panic!("workers array");
        };
        assert_eq!(workers.len(), 1);
    }
}
