//! `slic-variation` — Monte Carlo process-variation characterization.
//!
//! The statistical study in `slic::statistical` answers a research question (how accurate
//! is moment reconstruction per method?); this crate provides the *production* workload:
//! given a timing arc and an index grid, simulate every grid point under every process
//! seed and reduce the per-seed measurements into a [`VariationTable`] of per-point
//! **mean / sigma / skewness** — the moment views a Liberty-Variation-Format consumer
//! expects next to the nominal `cell_rise`/`cell_fall` tables.
//!
//! Everything routes through an existing
//! [`CharacterizationEngine`](slic_spice::CharacterizationEngine), so the engine's
//! simulation counter, cache, single-flight deduplication and pluggable
//! [`SimulationBackend`](slic_spice::SimulationBackend) (local batched kernel or a
//! `slic-farm` fleet) all apply per `(seed, point)` coordinate: a delay table and a slew
//! table of one arc share their transients, shard workers against one disk cache pay each
//! coordinate once, and a farm run produces bit-identical tables to a local run.
//!
//! The seed set is a pure function of [`VariationConfig::seed`] and
//! [`VariationConfig::process_seeds`]: every extractor built from an equal configuration —
//! in any process, on any shard — simulates the *same* process samples, which is what
//! makes sharded variation runs mergeable and cache-coherent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use slic_bayes::TimingMetric;
use slic_cells::{Cell, TimingArc};
use slic_device::ProcessSample;
use slic_spice::{CharacterizationEngine, InputPoint, TimingMeasurement};
use slic_stats::moments;
use slic_units::{Farads, Seconds};
use std::fmt;

/// An invalid [`VariationConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariationError {
    message: String,
}

impl VariationError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for VariationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid variation configuration: {}", self.message)
    }
}

impl std::error::Error for VariationError {}

/// Configuration of a Monte Carlo variation workload.
///
/// Two configurations compare equal exactly when they produce the same seed set and the
/// same reporting corners — the criterion under which shard artifacts of one variation
/// run may merge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationConfig {
    /// Number of Monte Carlo process seeds simulated per grid point.
    pub process_seeds: usize,
    /// Sigma multipliers for corner reporting (e.g. `[1.0, 3.0]` reports the ±1σ and ±3σ
    /// views); purely a reporting knob, the tables always carry the full moments.
    pub sigma_corners: Vec<f64>,
    /// RNG seed of the process-sample draw.
    pub seed: u64,
}

impl VariationConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`VariationError`] when fewer than three seeds are requested (skewness
    /// needs three samples), or when the sigma-corner list is empty or contains a
    /// non-finite or non-positive multiplier.
    pub fn validate(&self) -> Result<(), VariationError> {
        if self.process_seeds < 3 {
            return Err(VariationError::new(format!(
                "process_seeds must be at least 3 (skewness needs three samples), got {}",
                self.process_seeds
            )));
        }
        if self.sigma_corners.is_empty() {
            return Err(VariationError::new("sigma_corners must not be empty"));
        }
        for &corner in &self.sigma_corners {
            if !corner.is_finite() || corner <= 0.0 {
                return Err(VariationError::new(format!(
                    "sigma corner {corner} must be a finite positive multiplier"
                )));
            }
        }
        Ok(())
    }

    /// Draws the deterministic process-sample set of this configuration for `engine`'s
    /// technology.  Equal configurations always draw identical samples.
    pub fn sample_seeds(&self, engine: &CharacterizationEngine) -> Vec<ProcessSample> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        engine
            .tech()
            .variation()
            .sample_n(&mut rng, self.process_seeds)
    }
}

/// Per-arc, per-metric moment tables over a slew × load index grid — the variation
/// analogue of a nominal Liberty lookup table.
///
/// All rows are indexed `[slew][load]`; `mean` and `sigma` are in seconds, `skew` is the
/// dimensionless Fisher skewness (use [`skewness_time_rows`](Self::skewness_time_rows)
/// for the time-valued LVF rendering).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationTable {
    /// Arc identifier, e.g. `"NAND2_X1/A0/FALL"`.
    pub arc_id: String,
    /// The timing arc.
    pub arc: TimingArc,
    /// The reduced metric.
    pub metric: TimingMetric,
    /// Supply voltage the grid was simulated at (volts; the technology's nominal).
    pub vdd: f64,
    /// Input-slew axis (seconds) — identical to the nominal export table's `index_1`.
    pub slew_axis: Vec<f64>,
    /// Load-capacitance axis (farads) — identical to the nominal table's `index_2`.
    pub load_axis: Vec<f64>,
    /// Number of process seeds the moments were estimated from.
    pub process_seeds: usize,
    /// Per-point sample mean (seconds).
    pub mean: Vec<Vec<f64>>,
    /// Per-point unbiased sample standard deviation (seconds).
    pub sigma: Vec<Vec<f64>>,
    /// Per-point Fisher skewness (dimensionless).
    pub skew: Vec<Vec<f64>>,
}

impl VariationTable {
    /// Stable identity of the table — the merge/sort key of variation sections.
    pub fn table_id(&self) -> String {
        format!("{}#{}#mc", self.arc_id, self.metric)
    }

    /// `(slew levels, load levels)` of the grid.
    pub fn shape(&self) -> (usize, usize) {
        (self.slew_axis.len(), self.load_axis.len())
    }

    /// The `mean + k·sigma` corner view of the table (seconds), e.g. the +3σ late table.
    pub fn corner_rows(&self, k: f64) -> Vec<Vec<f64>> {
        self.mean
            .iter()
            .zip(&self.sigma)
            .map(|(m_row, s_row)| m_row.iter().zip(s_row).map(|(m, s)| m + k * s).collect())
            .collect()
    }

    /// Worst (largest) `mean + k·sigma` value over the grid, in seconds.
    pub fn worst_corner(&self, k: f64) -> f64 {
        self.corner_rows(k)
            .iter()
            .flatten()
            .fold(f64::NEG_INFINITY, |acc, v| acc.max(*v))
    }

    /// The time-valued skewness rows (seconds): the signed cube root of the third central
    /// moment `m₃ = γ·σ³`, which is how LVF `ocv_skewness_*` groups express asymmetry in
    /// the library's time unit.
    pub fn skewness_time_rows(&self) -> Vec<Vec<f64>> {
        self.skew
            .iter()
            .zip(&self.sigma)
            .map(|(g_row, s_row)| {
                g_row
                    .iter()
                    .zip(s_row)
                    .map(|(g, s)| (g * s.powi(3)).cbrt())
                    .collect()
            })
            .collect()
    }

    /// Mean coefficient of variation `σ/µ` over the grid, in percent — the one-number
    /// spread summary reported per Monte Carlo work unit.
    pub fn mean_cv_percent(&self) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for (m_row, s_row) in self.mean.iter().zip(&self.sigma) {
            for (m, s) in m_row.iter().zip(s_row) {
                // slic-lint: allow(F1) -- exact-zero test guarding the division below; any nonzero mean, however small, has a well-defined CV.
                if *m != 0.0 {
                    total += (s / m).abs() * 100.0;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

/// Runs Monte Carlo grid sweeps through an engine and reduces them to moment tables.
pub struct VariationExtractor<'a> {
    engine: &'a CharacterizationEngine,
    config: VariationConfig,
    seeds: Vec<ProcessSample>,
}

impl<'a> VariationExtractor<'a> {
    /// Creates an extractor, validating the configuration and drawing the deterministic
    /// seed set.
    ///
    /// # Errors
    ///
    /// Returns a [`VariationError`] when the configuration fails
    /// [`VariationConfig::validate`].
    pub fn new(
        engine: &'a CharacterizationEngine,
        config: VariationConfig,
    ) -> Result<Self, VariationError> {
        config.validate()?;
        let seeds = config.sample_seeds(engine);
        Ok(Self {
            engine,
            config,
            seeds,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &VariationConfig {
        &self.config
    }

    /// The deterministic process-sample set.
    pub fn seeds(&self) -> &[ProcessSample] {
        &self.seeds
    }

    /// Transient simulations one table *requests* (the cache may answer most of them).
    pub fn requested_simulations(&self, slew_levels: usize, load_levels: usize) -> u64 {
        (slew_levels * load_levels * self.seeds.len()) as u64
    }

    /// Characterizes `metric` of `arc` over `slew_axis × load_axis` at the technology's
    /// nominal supply: every grid point is simulated under every process seed (through the
    /// engine's backend, counter and cache) and reduced to per-point mean/sigma/skew.
    ///
    /// # Panics
    ///
    /// Panics when either axis is empty — callers derive the axes from a validated export
    /// grid.
    pub fn extract(
        &self,
        cell: Cell,
        arc: &TimingArc,
        metric: TimingMetric,
        slew_axis: &[f64],
        load_axis: &[f64],
    ) -> VariationTable {
        assert!(
            !slew_axis.is_empty() && !load_axis.is_empty(),
            "variation grid axes must not be empty"
        );
        let vdd = self.engine.tech().vdd_nominal();
        let points: Vec<InputPoint> = slew_axis
            .iter()
            .flat_map(|&sin| {
                load_axis
                    .iter()
                    .map(move |&cload| InputPoint::new(Seconds(sin), Farads(cload), vdd))
            })
            .collect();
        let grid = self
            .engine
            .monte_carlo_sweep(cell, arc, &points, &self.seeds);

        let pick = |m: &TimingMeasurement| -> f64 {
            match metric {
                TimingMetric::Delay => m.delay.value(),
                TimingMetric::OutputSlew => m.output_slew.value(),
            }
        };
        let mut mean = Vec::with_capacity(slew_axis.len());
        let mut sigma = Vec::with_capacity(slew_axis.len());
        let mut skew = Vec::with_capacity(slew_axis.len());
        for point_rows in grid.chunks(load_axis.len()) {
            let mut mean_row = Vec::with_capacity(load_axis.len());
            let mut sigma_row = Vec::with_capacity(load_axis.len());
            let mut skew_row = Vec::with_capacity(load_axis.len());
            for seed_samples in point_rows {
                let values: Vec<f64> = seed_samples.iter().map(&pick).collect();
                mean_row.push(moments::mean(&values));
                sigma_row.push(moments::std_dev(&values));
                skew_row.push(moments::skewness(&values));
            }
            mean.push(mean_row);
            sigma.push(sigma_row);
            skew.push(skew_row);
        }

        VariationTable {
            arc_id: arc.id(),
            arc: *arc,
            metric,
            vdd: vdd.value(),
            slew_axis: slew_axis.to_vec(),
            load_axis: load_axis.to_vec(),
            process_seeds: self.seeds.len(),
            mean,
            sigma,
            skew,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slic_cells::{CellKind, DriveStrength, Transition};
    use slic_device::TechnologyNode;
    use slic_spice::{InMemorySimCache, SimulationCache, TransientConfig};
    use std::sync::Arc;

    fn engine() -> CharacterizationEngine {
        CharacterizationEngine::with_config(TechnologyNode::n14_finfet(), TransientConfig::fast())
            .expect("fast preset validates")
    }

    fn config(seeds: usize) -> VariationConfig {
        VariationConfig {
            process_seeds: seeds,
            sigma_corners: vec![1.0, 3.0],
            seed: 42,
        }
    }

    fn axes(engine: &CharacterizationEngine) -> (Vec<f64>, Vec<f64>) {
        let space = engine.input_space();
        let (sin_lo, sin_hi) = space.sin_range();
        let (cl_lo, cl_hi) = space.cload_range();
        (
            slic_units::range::linspace(sin_lo.value(), sin_hi.value(), 2),
            slic_units::range::linspace(cl_lo.value(), cl_hi.value(), 3),
        )
    }

    #[test]
    fn validation_rejects_degenerate_configurations() {
        assert!(config(8).validate().is_ok());
        assert!(config(2)
            .validate()
            .unwrap_err()
            .to_string()
            .contains("at least 3"));
        let mut empty = config(8);
        empty.sigma_corners.clear();
        assert!(empty
            .validate()
            .unwrap_err()
            .to_string()
            .contains("must not be empty"));
        let mut negative = config(8);
        negative.sigma_corners = vec![-1.0];
        assert!(negative
            .validate()
            .unwrap_err()
            .to_string()
            .contains("finite positive"));
    }

    #[test]
    fn equal_configs_draw_identical_seed_sets() {
        let eng = engine();
        let a = config(12).sample_seeds(&eng);
        let b = config(12).sample_seeds(&eng);
        assert_eq!(a, b, "the seed set is a pure function of the configuration");
        let other = VariationConfig {
            seed: 43,
            ..config(12)
        }
        .sample_seeds(&eng);
        assert_ne!(a, other);
    }

    #[test]
    fn extraction_produces_physical_moments_on_the_grid_shape() {
        let eng = engine();
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Fall);
        let (slew_axis, load_axis) = axes(&eng);
        let extractor = VariationExtractor::new(&eng, config(10)).expect("valid config");
        let table = extractor.extract(cell, &arc, TimingMetric::Delay, &slew_axis, &load_axis);
        assert_eq!(table.shape(), (2, 3));
        assert_eq!(table.process_seeds, 10);
        assert_eq!(table.table_id(), format!("{}#delay#mc", arc.id()));
        for row in &table.mean {
            assert!(row.iter().all(|m| *m > 0.0), "delays are positive");
        }
        for row in &table.sigma {
            assert!(
                row.iter().all(|s| *s > 0.0),
                "process variation must spread every grid point"
            );
        }
        assert!(table.mean_cv_percent() > 0.0 && table.mean_cv_percent() < 50.0);
        // The +3σ corner sits above the mean everywhere; −1σ below.
        let late = table.corner_rows(3.0);
        let early = table.corner_rows(-1.0);
        for ((m_row, l_row), e_row) in table.mean.iter().zip(&late).zip(&early) {
            for ((m, l), e) in m_row.iter().zip(l_row).zip(e_row) {
                assert!(l > m && e < m);
            }
        }
        assert!(table.worst_corner(3.0) >= table.worst_corner(1.0));
        // Time-valued skewness has the same sign as the Fisher skewness.
        for (g_row, t_row) in table.skew.iter().zip(table.skewness_time_rows()) {
            for (g, t) in g_row.iter().zip(t_row) {
                assert_eq!(g.signum(), t.signum());
            }
        }
        // Cost accounting: points × seeds transients were paid.
        assert_eq!(eng.simulation_count(), 2 * 3 * 10);
    }

    #[test]
    fn delay_and_slew_tables_share_their_transients_through_the_cache() {
        let cache = Arc::new(InMemorySimCache::new());
        let eng = engine().with_cache(cache.clone());
        let cell = Cell::new(CellKind::Nand2, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Rise);
        let (slew_axis, load_axis) = axes(&eng);
        let extractor = VariationExtractor::new(&eng, config(6)).expect("valid config");
        let _delay = extractor.extract(cell, &arc, TimingMetric::Delay, &slew_axis, &load_axis);
        let paid = eng.simulation_count();
        assert_eq!(paid, 2 * 3 * 6);
        let _slew = extractor.extract(cell, &arc, TimingMetric::OutputSlew, &slew_axis, &load_axis);
        assert_eq!(
            eng.simulation_count(),
            paid,
            "the slew table must be answered entirely from the delay table's transients"
        );
        assert_eq!(cache.hits(), paid);
    }

    #[test]
    fn tables_round_trip_through_json() {
        let eng = engine();
        let cell = Cell::new(CellKind::Inv, DriveStrength::X1);
        let arc = TimingArc::new(cell, 0, Transition::Rise);
        let (slew_axis, load_axis) = axes(&eng);
        let extractor = VariationExtractor::new(&eng, config(5)).expect("valid config");
        let table = extractor.extract(cell, &arc, TimingMetric::OutputSlew, &slew_axis, &load_axis);
        let text = serde_json::to_string(&table).expect("table serializes");
        let back: VariationTable = serde_json::from_str(&text).expect("table parses");
        assert_eq!(back, table);
    }
}
