//! Fig. 2: `Td·Ieff/(Vdd+V')` and `Sout·Ieff/(Vdd+V')` are approximately constant across
//! supply voltages for a NOR2 cell in the 14-nm technology.
//!
//! The regenerated series (one per `(Cload, Sin)` group, for both delay and slew and both
//! transitions) are printed together with their coefficients of variation; Criterion times
//! the collapse computation itself.

use criterion::{criterion_group, criterion_main, Criterion};
use slic::prelude::*;
use slic_bench::banner;
use slic_timing_model::vdd_collapse;

fn collect_samples(
    engine: &CharacterizationEngine,
    cell: Cell,
    transition: Transition,
) -> (Vec<TimingSample>, Vec<TimingSample>) {
    let arc = TimingArc::new(cell, 0, transition);
    let nominal = ProcessSample::nominal();
    let mut delay = Vec::new();
    let mut slew = Vec::new();
    for &vdd in &[0.65, 0.72, 0.79, 0.86, 0.93, 1.0] {
        for &(cload, sin) in &[(1.0, 2.0), (2.5, 5.0), (4.5, 10.0)] {
            let point = InputPoint::new(
                Seconds::from_picoseconds(sin),
                Farads::from_femtofarads(cload),
                Volts(vdd),
            );
            let m = engine.simulate_nominal(cell, &arc, &point);
            let ieff = engine.ieff(&arc, &point, &nominal);
            delay.push(TimingSample::new(point, ieff, m.delay));
            slew.push(TimingSample::new(point, ieff, m.output_slew));
        }
    }
    (delay, slew)
}

fn regenerate() -> Vec<TimingSample> {
    banner(
        "Fig. 2",
        "Td*Ieff/(Vdd+V') and Sout*Ieff/(Vdd+V') vs Vdd for a 14-nm NOR2 (constant per group)",
    );
    let engine =
        CharacterizationEngine::with_config(TechnologyNode::n14_finfet(), TransientConfig::fast())
            .expect("valid transient configuration");
    let cell = Cell::new(CellKind::Nor2, DriveStrength::X1);
    let fitter = LeastSquaresFitter::new();
    let mut kept = Vec::new();
    for transition in Transition::BOTH {
        let (delay, slew) = collect_samples(&engine, cell, transition);
        for (samples, quantity) in [(&delay, "Td"), (&slew, "Sout")] {
            let v_prime = fitter.fit(samples).params.v_prime;
            let series = vdd_collapse(samples, v_prime);
            println!("\n{quantity}, output {transition} (V' = {v_prime:.3} V):");
            for s in &series {
                let values: Vec<String> =
                    s.x.iter()
                        .zip(&s.y)
                        .map(|(vdd, y)| format!("{vdd:.2}V -> {y:.3e}"))
                        .collect();
                println!(
                    "  {:<24} cv = {:>6.2}%   [{}]",
                    s.label,
                    100.0 * s.coefficient_of_variation,
                    values.join(", ")
                );
            }
        }
        kept = delay;
    }
    println!("\n(paper: the collapsed quantity is flat across Vdd for every group)");
    kept
}

fn bench(c: &mut Criterion) {
    let samples = regenerate();
    let v_prime = LeastSquaresFitter::new().fit(&samples).params.v_prime;
    c.bench_function("fig2_vdd_collapse", |b| {
        b.iter(|| vdd_collapse(&samples, v_prime))
    });
}

criterion_group! {
    name = benches;
    config = slic_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
