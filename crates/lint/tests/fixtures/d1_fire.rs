//! D1 must-fire: every construct this rule exists to keep out of artifact code.

use std::collections::HashMap;
use std::collections::HashSet;
use std::time::{Instant, SystemTime};

fn order_dependent() -> Vec<String> {
    let table: HashMap<String, f64> = HashMap::new();
    let seen: HashSet<u32> = HashSet::new();
    let started = Instant::now();
    let stamp = SystemTime::now();
    let who = std::thread::current();
    let _ = (seen, started, stamp, who);
    table.keys().cloned().collect()
}
