//! `slic` — Statistical LIbrary Characterization using belief propagation across technology
//! nodes.
//!
//! This crate is the public facade of the workspace: it wires the substrate crates
//! (device model, transient simulator, LUT baseline, compact timing model, Bayesian engine)
//! into the end-to-end flows evaluated in the DATE 2015 paper
//! *"Statistical Library Characterization Using Belief Propagation across Multiple
//! Technology Nodes"* (Yu, Saxena, Hess, Elfadel, Antoniadis, Boning):
//!
//! * [`historical`] — characterize old technologies once and archive the compact-model fits
//!   ("historical learning" in Fig. 4 of the paper);
//! * [`nominal`] — the nominal characterization study of Fig. 6: proposed model + Bayesian
//!   inference vs. proposed model + least squares vs. the LUT baseline, as a function of the
//!   number of training simulations;
//! * [`statistical`] — the statistical characterization study of Figs. 7–9: mean / σ of
//!   delay and slew across process variation, and the delay PDF at a low-supply corner;
//! * [`cost`] — the simulation-count cost model and speedup accounting (`O(k·Nsample)` vs
//!   `O(NLUT·Nsample)`);
//! * [`liberty`] — a Liberty-flavoured text export of a characterized library;
//! * [`report`] — small Markdown/CSV table formatters shared by the examples and benches.
//!
//! The substrate crates are re-exported under [`prelude`] so downstream users can depend on
//! `slic` alone.
//!
//! # Quick start
//!
//! ```no_run
//! use slic::prelude::*;
//! use slic::historical::{HistoricalLearner, HistoricalLearningConfig};
//! use slic::nominal::{NominalStudy, NominalStudyConfig};
//!
//! // 1. Learn priors from the six historical technology nodes.
//! let library = Library::paper_trio();
//! let learner = HistoricalLearner::new(HistoricalLearningConfig::default());
//! let learning = learner.learn(&TechnologyNode::historical_suite(), &library);
//!
//! // 2. Characterize a new 14-nm technology with a handful of simulations.
//! let study = NominalStudy::new(
//!     TechnologyNode::target_14nm(),
//!     &learning.database,
//!     NominalStudyConfig::default(),
//! );
//! let cell = Cell::new(CellKind::Nor2, DriveStrength::X1);
//! let arc = TimingArc::new(cell, 0, Transition::Fall);
//! let result = study.run(cell, &arc, TimingMetric::Delay);
//! println!("{}", result.to_markdown());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod historical;
pub mod liberty;
pub mod nominal;
pub mod report;
pub mod statistical;

/// One-stop re-exports of the workspace API.
pub mod prelude {
    pub use slic_bayes::{
        HistoricalDatabase, HistoricalRecord, MapExtractor, ParameterPrior, PrecisionConfig,
        PrecisionModel, PriorBuilder, TimingMetric,
    };
    pub use slic_cells::{
        Cell, CellKind, DriveStrength, EquivalentInverter, Library, TimingArc, Transition,
    };
    pub use slic_device::{
        DeviceParams, Mosfet, Polarity, ProcessSample, ProcessVariation, TechnologyNode,
    };
    pub use slic_lut::{grid_levels_for_budget, Lut3d, LutBuilder, NominalLut, StatisticalLut};
    pub use slic_spice::{
        CharacterizationEngine, InputPoint, InputSpace, TimingMeasurement, TransientConfig,
    };
    pub use slic_stats::{Gaussian, Histogram, KernelDensity, MultivariateGaussian, Summary};
    pub use slic_timing_model::{
        ExtendedTimingParams, FitConfig, FitResult, GaussianPenalty, LeastSquaresFitter,
        TimingParams, TimingSample,
    };
    pub use slic_units::{Amperes, Celsius, Coulombs, Farads, Seconds, Volts};
}

pub use cost::CostModel;
pub use historical::{HistoricalLearner, HistoricalLearningConfig, HistoricalLearningResult};
pub use nominal::{MethodKind, NominalStudy, NominalStudyConfig, NominalStudyResult};
pub use statistical::{
    DelayPdfComparison, StatisticalStudy, StatisticalStudyConfig, StatisticalStudyResult,
};
