//! D1 must-not-fire: the ordered replacements and test-scoped uses are all fine.

use std::collections::{BTreeMap, BTreeSet};

fn order_independent() -> Vec<String> {
    let table: BTreeMap<String, f64> = BTreeMap::new();
    let seen: BTreeSet<u32> = BTreeSet::new();
    let _ = seen;
    table.keys().cloned().collect()
}

#[cfg(test)]
mod tests {
    // Inside test code, wall-clock timing and hash containers are allowed.
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn timing_in_tests_is_fine() {
        let started = Instant::now();
        let mut m: HashMap<u32, u32> = HashMap::new();
        m.insert(1, 2);
        assert!(started.elapsed().as_secs() < 60);
    }
}
