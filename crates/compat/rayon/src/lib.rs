//! Offline stand-in for the `rayon` crate.
//!
//! Provides the data-parallel surface this workspace uses — `par_iter()` on slices and
//! vectors followed by `map(...).collect()` or `for_each(...)` — executed on
//! `std::thread::scope` worker threads, one contiguous chunk per available core, with the
//! output order matching the input order exactly (the engine's tests require sweeps to be
//! deterministic and ordered).
//!
//! Unlike real rayon there is no global work-stealing pool: each `collect` spawns its own
//! scoped threads.  Nested parallelism therefore oversubscribes rather than deadlocks,
//! which is acceptable for the workloads here (outer loops dominate).

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// Re-exports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

fn worker_count(items: usize) -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(items)
        .max(1)
}

/// Runs `f` over `items` in parallel, preserving order.
fn parallel_map<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync>(items: &'a [T], f: &F) -> Vec<U> {
    let workers = worker_count(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    let mut results: Vec<Vec<U>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<U>>()))
            .collect();
        results = handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect();
    });
    results.into_iter().flatten().collect()
}

/// A parallel iterator over borrowed slice elements.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// A mapped parallel iterator.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Applies `f` to every element in parallel.
    pub fn map<U, F: Fn(&'a T) -> U>(self, f: F) -> ParMap<'a, T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        let _ = parallel_map(self.items, &|t| f(t));
    }
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParMap<'a, T, F> {
    /// Executes the map in parallel and collects the results in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        parallel_map(self.items, &self.f).into_iter().collect()
    }
}

/// `par_iter()` for by-reference collections, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: 'a;

    /// A parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Owned parallel iteration, mirroring `rayon::iter::IntoParallelIterator`.
///
/// Implemented by collecting into a vector first; the workspace only uses it for small
/// work-unit lists where the extra allocation is irrelevant.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;

    /// Consumes `self` into an owned parallel iterator.
    fn into_par_iter(self) -> OwnedParIter<Self::Item>;
}

/// An owning parallel iterator.
pub struct OwnedParIter<T> {
    items: Vec<T>,
}

impl<T: Send + Sync> OwnedParIter<T> {
    /// Applies `f` to every element in parallel, preserving order.
    pub fn map<U, F: Fn(T) -> U>(self, f: F) -> OwnedParMap<T, F> {
        OwnedParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped owning parallel iterator.
pub struct OwnedParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send + Sync, U: Send, F: Fn(T) -> U + Sync> OwnedParMap<T, F> {
    /// Executes the map in parallel and collects the results in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let f = &self.f;
        let mut slots: Vec<Option<T>> = self.items.into_iter().map(Some).collect();
        let owned: Vec<U> = {
            let refs: Vec<&mut Option<T>> = slots.iter_mut().collect();
            let workers = worker_count(refs.len());
            if workers <= 1 {
                refs.into_iter()
                    .map(|slot| f(slot.take().expect("slot filled")))
                    .collect()
            } else {
                let chunk_len = refs.len().div_ceil(workers);
                let mut results: Vec<Vec<U>> = Vec::new();
                let mut chunks: Vec<Vec<&mut Option<T>>> = Vec::new();
                let mut it = refs.into_iter();
                loop {
                    let chunk: Vec<&mut Option<T>> = it.by_ref().take(chunk_len).collect();
                    if chunk.is_empty() {
                        break;
                    }
                    chunks.push(chunk);
                }
                std::thread::scope(|scope| {
                    let handles: Vec<_> = chunks
                        .into_iter()
                        .map(|chunk| {
                            scope.spawn(move || {
                                chunk
                                    .into_iter()
                                    .map(|slot| f(slot.take().expect("slot filled")))
                                    .collect::<Vec<U>>()
                            })
                        })
                        .collect();
                    results = handles
                        .into_iter()
                        .map(|h| h.join().expect("parallel worker panicked"))
                        .collect();
                });
                results.into_iter().flatten().collect()
            }
        };
        owned.into_iter().collect()
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> OwnedParIter<T> {
        OwnedParIter { items: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let squares: Vec<u64> = xs.par_iter().map(|x| x * x).collect();
        assert_eq!(squares, xs.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn runs_closures_with_captured_state() {
        let offset = 7u64;
        let xs = [1u64, 2, 3, 4, 5];
        let ys: Vec<u64> = xs.par_iter().map(|x| x + offset).collect();
        assert_eq!(ys, vec![8, 9, 10, 11, 12]);
    }

    #[test]
    fn owned_into_par_iter() {
        let xs: Vec<String> = (0..100).map(|i| format!("item-{i}")).collect();
        let lens: Vec<usize> = xs.clone().into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, xs.iter().map(String::len).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        let xs: Vec<u64> = (1..=100).collect();
        xs.par_iter().for_each(|x| {
            sum.fetch_add(*x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn empty_input() {
        let xs: Vec<u64> = Vec::new();
        let ys: Vec<u64> = xs.par_iter().map(|x| x + 1).collect();
        assert!(ys.is_empty());
    }
}
