//! Cholesky decomposition of symmetric positive-definite matrices.
//!
//! The Bayesian engine relies on Cholesky factors for everything covariance-shaped:
//! Mahalanobis distances in the MAP objective (Eq. 15 of the paper), sampling from the
//! learned multivariate-normal priors, and log-determinants for model-evidence style
//! diagnostics.

use crate::{LinalgError, Matrix, Vector};
use serde::{Deserialize, Serialize};

/// Lower-triangular Cholesky factor `L` of a symmetric positive-definite matrix `A = L·Lᵀ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cholesky {
    lower: Matrix,
}

impl Cholesky {
    /// Factorizes `a` into `L·Lᵀ`.
    ///
    /// The input is symmetrized (`(A + Aᵀ)/2`) first so that covariance matrices assembled
    /// from sample moments, which can carry tiny asymmetries, do not spuriously fail.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is not strictly positive.
    pub fn decompose(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                context: format!("cholesky of {}x{}", a.rows(), a.cols()),
            });
        }
        let a = a.symmetrized();
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Self { lower: l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lower.rows()
    }

    /// Returns the lower-triangular factor `L`.
    pub fn lower(&self) -> &Matrix {
        &self.lower
    }

    /// Solves `A x = b` using forward and backward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve(&self, b: &Vector) -> Vector {
        let y = self.forward_substitute(b);
        self.backward_substitute(&y)
    }

    /// Solves `L y = b` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn forward_substitute(&self, b: &Vector) -> Vector {
        let n = self.dim();
        assert_eq!(b.len(), n, "forward_substitute dimension mismatch");
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.lower[(i, k)] * y[k];
            }
            y[i] = sum / self.lower[(i, i)];
        }
        y
    }

    /// Solves `Lᵀ x = y` (backward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != dim()`.
    pub fn backward_substitute(&self, y: &Vector) -> Vector {
        let n = self.dim();
        assert_eq!(y.len(), n, "backward_substitute dimension mismatch");
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.lower[(k, i)] * x[k];
            }
            x[i] = sum / self.lower[(i, i)];
        }
        x
    }

    /// Computes the inverse of the factored matrix.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = Vector::zeros(n);
            e[j] = 1.0;
            let col = self.solve(&e);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        inv
    }

    /// Log-determinant of the factored matrix: `2 · Σ ln L_ii`.
    pub fn log_determinant(&self) -> f64 {
        (0..self.dim())
            .map(|i| self.lower[(i, i)].ln())
            .sum::<f64>()
            * 2.0
    }

    /// Squared Mahalanobis distance `(x − µ)ᵀ A⁻¹ (x − µ)` where `A` is the factored matrix.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths do not match `dim()`.
    pub fn mahalanobis_squared(&self, x: &Vector, mean: &Vector) -> f64 {
        let d = x - mean;
        let z = self.forward_substitute(&d);
        z.dot(&z)
    }

    /// Applies the factor to a vector: returns `L · z`.
    ///
    /// With `z` standard normal this produces a sample with covariance `A`, which is how the
    /// multivariate-normal sampler in `slic-stats` draws correlated parameter sets.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != dim()`.
    pub fn apply_factor(&self, z: &Vector) -> Vector {
        self.lower.mat_vec(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spd3() -> Matrix {
        // A = B^T B + I for a fixed B, guaranteed SPD.
        let b = Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[0.0, 1.0, -1.0], &[0.3, 0.0, 2.0]]);
        b.gram().add_diagonal(1.0)
    }

    #[test]
    fn factor_round_trips() {
        let a = spd3();
        let chol = Cholesky::decompose(&a).unwrap();
        let l = chol.lower();
        let reconstructed = l.mat_mul(&l.transpose());
        assert!((&reconstructed - &a).norm_frobenius() < 1e-10);
    }

    #[test]
    fn solve_matches_direct_residual() {
        let a = spd3();
        let chol = a.cholesky().unwrap();
        let b = Vector::from_slice(&[1.0, -2.0, 3.0]);
        let x = chol.solve(&b);
        assert!((&a.mat_vec(&x) - &b).norm() < 1e-10);
    }

    #[test]
    fn inverse_matches_lu_inverse() {
        let a = spd3();
        let inv_chol = a.cholesky().unwrap().inverse();
        let inv_lu = a.inverse().unwrap();
        assert!((&inv_chol - &inv_lu).norm_frobenius() < 1e-8);
    }

    #[test]
    fn log_determinant_of_diagonal() {
        let a = Matrix::from_diagonal(&[2.0, 3.0, 4.0]);
        let chol = a.cholesky().unwrap();
        assert!((chol.log_determinant() - (24.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn mahalanobis_identity_covariance_is_euclidean() {
        let chol = Matrix::identity(2).cholesky().unwrap();
        let x = Vector::from_slice(&[3.0, 4.0]);
        let mu = Vector::zeros(2);
        assert!((chol.mahalanobis_squared(&x, &mu) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_spd() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // indefinite
        let err = Cholesky::decompose(&a).unwrap_err();
        assert!(matches!(err, LinalgError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        let err = Cholesky::decompose(&a).unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
    }

    #[test]
    fn tolerates_tiny_asymmetry() {
        let mut a = spd3();
        a[(0, 1)] += 1e-12;
        assert!(Cholesky::decompose(&a).is_ok());
    }

    #[test]
    fn apply_factor_reproduces_covariance_shape() {
        let a = spd3();
        let chol = a.cholesky().unwrap();
        let z = Vector::from_slice(&[1.0, 0.0, 0.0]);
        let lz = chol.apply_factor(&z);
        assert_eq!(lz.len(), 3);
        // First column of L.
        assert!((lz[0] - chol.lower()[(0, 0)]).abs() < 1e-14);
    }

    proptest! {
        #[test]
        fn prop_random_spd_round_trip(values in proptest::collection::vec(-2f64..2.0, 16),
                                      jitter in 0.1f64..5.0) {
            let b = Matrix::from_fn(4, 4, |i, j| values[i * 4 + j]);
            let a = b.gram().add_diagonal(jitter);
            let chol = Cholesky::decompose(&a).unwrap();
            let l = chol.lower();
            let back = l.mat_mul(&l.transpose());
            prop_assert!((&back - &a).norm_frobenius() < 1e-8 * (1.0 + a.norm_frobenius()));
        }

        #[test]
        fn prop_solve_residual_small(values in proptest::collection::vec(-2f64..2.0, 9),
                                     rhs in proptest::collection::vec(-10f64..10.0, 3),
                                     jitter in 0.5f64..5.0) {
            let b = Matrix::from_fn(3, 3, |i, j| values[i * 3 + j]);
            let a = b.gram().add_diagonal(jitter);
            let chol = Cholesky::decompose(&a).unwrap();
            let rhs = Vector::from_slice(&rhs);
            let x = chol.solve(&rhs);
            prop_assert!((&a.mat_vec(&x) - &rhs).norm() < 1e-7 * (1.0 + rhs.norm()));
        }

        #[test]
        fn prop_mahalanobis_nonnegative(values in proptest::collection::vec(-2f64..2.0, 9),
                                        x in proptest::collection::vec(-5f64..5.0, 3),
                                        mu in proptest::collection::vec(-5f64..5.0, 3),
                                        jitter in 0.5f64..5.0) {
            let b = Matrix::from_fn(3, 3, |i, j| values[i * 3 + j]);
            let a = b.gram().add_diagonal(jitter);
            let chol = Cholesky::decompose(&a).unwrap();
            let d2 = chol.mahalanobis_squared(&Vector::from_slice(&x), &Vector::from_slice(&mu));
            prop_assert!(d2 >= 0.0);
        }
    }
}
