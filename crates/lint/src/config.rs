//! The lint policy file (`configs/lint.toml`): which paths each rule covers.
//!
//! The format is the TOML subset the workspace already uses elsewhere — `[section]`
//! headers, `key = "string"`, `key = ["a", "b"]`, `#` comments — parsed by hand because
//! the build environment vendors no TOML crate.  Unknown sections and keys are rejected:
//! a typo'd policy key silently linting nothing would defeat the whole tool.

use std::fmt;

/// A malformed or unreadable policy file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid lint configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// The whole lint policy.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Directories (relative to the workspace root) scanned for `.rs` files.
    pub roots: Vec<String>,
    /// Path substrings that exclude a file from scanning entirely (compat shims,
    /// fixtures, generated code).
    pub skip: Vec<String>,
    /// D1 determinism scope: artifact-producing paths where `HashMap`/`HashSet` and
    /// wall-clock/thread-identity reads are denied.
    pub d1_paths: Vec<String>,
    /// D1 wall-clock carve-out: paths (inside the D1 scope) where `Instant`/`SystemTime`
    /// are permitted because the crate *is* the clock abstraction (`slic-obs`).  Hash
    /// containers and thread identity stay denied there.
    pub d1_wallclock_exempt_paths: Vec<String>,
    /// F1 float-equality scope.
    pub f1_eq_paths: Vec<String>,
    /// F1 derive-hygiene scope (derive(Hash)/derive(Eq) over float fields).
    pub f1_derive_paths: Vec<String>,
    /// Wire/cache modules where floats must cross boundaries as hex bit patterns.
    pub f1_wire_paths: Vec<String>,
    /// Named wrapper types known to hold floats (`Seconds(f64)`, ...), treated as float
    /// fields by the derive rule.
    pub f1_float_wrappers: Vec<String>,
    /// P1 panic-policy scope (library crates).
    pub p1_paths: Vec<String>,
    /// L1 lock-discipline scope.
    pub l1_paths: Vec<String>,
    /// Calls considered blocking for L1 (solver entry points and wire I/O).
    pub l1_blocking_calls: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        Self {
            roots: vec!["crates".to_string(), "src".to_string()],
            skip: vec!["crates/compat".to_string()],
            d1_paths: Vec::new(),
            d1_wallclock_exempt_paths: Vec::new(),
            f1_eq_paths: Vec::new(),
            f1_derive_paths: Vec::new(),
            f1_wire_paths: Vec::new(),
            f1_float_wrappers: Vec::new(),
            p1_paths: Vec::new(),
            l1_paths: Vec::new(),
            l1_blocking_calls: Vec::new(),
        }
    }
}

impl LintConfig {
    /// Parses the policy text.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first malformed line, unknown section or
    /// unknown key.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut config = Self::default();
        let mut section = String::new();
        // Logical lines: a `key = [` array may span physical lines until its `]`.
        let mut lines = text.lines().enumerate();
        while let Some((index, raw)) = lines.next() {
            let mut line = strip_comment(raw).trim().to_string();
            let lineno = index + 1;
            while line.contains('[') && !line.starts_with('[') && !line.contains(']') {
                let Some((_, continuation)) = lines.next() else {
                    return Err(ConfigError::new(format!("line {lineno}: unclosed array")));
                };
                line.push(' ');
                line.push_str(strip_comment(continuation).trim());
            }
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let header = header
                    .strip_suffix(']')
                    .ok_or_else(|| ConfigError::new(format!("line {lineno}: unclosed section")))?;
                section = header.trim().to_string();
                const SECTIONS: &[&str] = &["scan", "rules.D1", "rules.F1", "rules.P1", "rules.L1"];
                if !SECTIONS.contains(&section.as_str()) {
                    return Err(ConfigError::new(format!(
                        "line {lineno}: unknown section `[{section}]` (expected one of {})",
                        SECTIONS.join(", ")
                    )));
                }
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                ConfigError::new(format!("line {lineno}: expected `key = value`"))
            })?;
            let key = key.trim();
            let value = value.trim();
            let slot = match (section.as_str(), key) {
                ("scan", "roots") => &mut config.roots,
                ("scan", "skip") => &mut config.skip,
                ("rules.D1", "paths") => &mut config.d1_paths,
                ("rules.D1", "wallclock_exempt_paths") => &mut config.d1_wallclock_exempt_paths,
                ("rules.F1", "eq_paths") => &mut config.f1_eq_paths,
                ("rules.F1", "derive_paths") => &mut config.f1_derive_paths,
                ("rules.F1", "wire_paths") => &mut config.f1_wire_paths,
                ("rules.F1", "float_wrappers") => &mut config.f1_float_wrappers,
                ("rules.P1", "paths") => &mut config.p1_paths,
                ("rules.L1", "paths") => &mut config.l1_paths,
                ("rules.L1", "blocking_calls") => &mut config.l1_blocking_calls,
                _ => {
                    return Err(ConfigError::new(format!(
                        "line {lineno}: unknown key `{key}` in section `[{section}]`"
                    )))
                }
            };
            *slot = parse_string_array(value).ok_or_else(|| {
                ConfigError::new(format!(
                    "line {lineno}: `{key}` expects a `[\"...\"]` string array"
                ))
            })?;
        }
        Ok(config)
    }

    /// Loads and parses the policy file at `path`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the file cannot be read or parsed.
    pub fn load(path: &std::path::Path) -> Result<Self, ConfigError> {
        let text = std::fs::read_to_string(path)
            .map_err(|err| ConfigError::new(format!("cannot read `{}`: {err}", path.display())))?;
        Self::parse(&text)
    }
}

/// Drops a trailing `#` comment, honouring `"` quoting.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut previous_backslash = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' if !previous_backslash => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        previous_backslash = ch == '\\' && !previous_backslash;
    }
    line
}

/// Parses `["a", "b"]` into its elements; `None` when the value is not a string array.
fn parse_string_array(value: &str) -> Option<Vec<String>> {
    let inner = value.strip_prefix('[')?.strip_suffix(']')?;
    let mut items = Vec::new();
    for part in split_top_level(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let unquoted = part.strip_prefix('"')?.strip_suffix('"')?;
        items.push(unquoted.to_string());
    }
    Some(items)
}

/// Splits on commas outside quotes.
fn split_top_level(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    let mut previous_backslash = false;
    for (i, ch) in text.char_indices() {
        match ch {
            '"' if !previous_backslash => in_string = !in_string,
            ',' if !in_string => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        previous_backslash = ch == '\\' && !previous_backslash;
    }
    parts.push(&text[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_comments() {
        let config = LintConfig::parse(
            r#"
            # policy
            [scan]
            roots = ["crates", "src"]   # scanned
            skip = ["crates/compat"]

            [rules.D1]
            paths = ["crates/pipeline", "crates/farm"]

            [rules.L1]
            blocking_calls = ["solve_batch"]
            "#,
        )
        .expect("parses");
        assert_eq!(config.roots, vec!["crates", "src"]);
        assert_eq!(config.d1_paths, vec!["crates/pipeline", "crates/farm"]);
        assert_eq!(config.l1_blocking_calls, vec!["solve_batch"]);
    }

    #[test]
    fn unknown_sections_and_keys_are_rejected() {
        let err = LintConfig::parse("[rules.Z9]\npaths = []").expect_err("unknown section");
        assert!(err.to_string().contains("unknown section"), "{err}");
        let err = LintConfig::parse("[scan]\nrooots = []").expect_err("unknown key");
        assert!(err.to_string().contains("unknown key"), "{err}");
        let err = LintConfig::parse("[scan]\nroots = \"crates\"").expect_err("not an array");
        assert!(err.to_string().contains("string array"), "{err}");
    }
}
