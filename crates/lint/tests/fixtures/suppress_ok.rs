//! Suppression must-not-fire: well-formed allow comments silence their line and the next.

fn epsilon_free(mean: f64) -> f64 {
    // slic-lint: allow(F1) -- exact-zero sentinel guarding the division below.
    if mean == 0.0 {
        return 0.0;
    }
    1.0 / mean
}

fn trailing(values: &[f64]) -> f64 {
    *values.first().unwrap() // slic-lint: allow(P1) -- caller guarantees non-empty.
}
