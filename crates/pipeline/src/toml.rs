//! A minimal flat-TOML reader for run configurations.
//!
//! The full TOML data model is far more than a run config needs, and no TOML crate is
//! available offline, so this module accepts the practical subset: `key = value` lines with
//! string, integer, float, boolean and homogeneous-array values, plus `#` comments and
//! blank lines.  Tables/section headers are rejected with a pointed error so nobody
//! discovers a silently ignored `[section]` the hard way.

use crate::error::PipelineError;
use serde::Value;

/// Parses flat-TOML text into the same [`Value::Object`] shape `serde_json` produces, so
/// config deserialization is format-independent.
///
/// # Errors
///
/// Returns a [`PipelineError::Config`] naming the offending line on any syntax error.
pub fn parse(text: &str) -> Result<Value, PipelineError> {
    let mut entries: Vec<(String, Value)> = Vec::new();
    for (index, raw_line) in text.lines().enumerate() {
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        let lineno = index + 1;
        if line.starts_with('[') {
            return Err(PipelineError::config(format!(
                "line {lineno}: table headers are not supported by the flat-TOML run-config reader; use top-level keys"
            )));
        }
        let (key, value_text) = line.split_once('=').ok_or_else(|| {
            PipelineError::config(format!("line {lineno}: expected `key = value`"))
        })?;
        let key = key.trim().trim_matches('"');
        if key.is_empty() {
            return Err(PipelineError::config(format!("line {lineno}: empty key")));
        }
        if entries.iter().any(|(k, _)| k == key) {
            return Err(PipelineError::config(format!(
                "line {lineno}: duplicate key `{key}`"
            )));
        }
        let value = parse_value(value_text.trim(), lineno)?;
        entries.push((key.to_string(), value));
    }
    Ok(Value::Object(entries))
}

/// Strips a `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, PipelineError> {
    if text.is_empty() {
        return Err(PipelineError::config(format!(
            "line {lineno}: missing value"
        )));
    }
    if let Some(stripped) = text.strip_prefix('[') {
        let inner = stripped
            .strip_suffix(']')
            .ok_or_else(|| PipelineError::config(format!("line {lineno}: unterminated array")))?;
        let mut items = Vec::new();
        for part in split_array_items(inner) {
            let part = part.trim();
            if !part.is_empty() {
                items.push(parse_value(part, lineno)?);
            }
        }
        return Ok(Value::Array(items));
    }
    if let Some(stripped) = text.strip_prefix('"') {
        let inner = stripped
            .strip_suffix('"')
            .ok_or_else(|| PipelineError::config(format!("line {lineno}: unterminated string")))?;
        return Ok(Value::String(inner.to_string()));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    text.parse::<f64>().map(Value::Number).map_err(|_| {
        PipelineError::config(format!(
            "line {lineno}: `{text}` is not a string (quote it), number, boolean or array"
        ))
    })
}

/// Splits array contents on commas outside quoted strings (arrays do not nest in the
/// supported subset).
fn split_array_items(inner: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    for (i, c) in inner.char_indices() {
        match c {
            '"' => in_string = !in_string,
            ',' if !in_string => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    items.push(&inner[start..]);
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_supported_subset() {
        let value = parse(
            r#"
            # characterization run
            library = "paper-trio"
            profile = "quick"   # fast settings
            seed = 42
            scale = 1.5
            resume = true
            metrics = ["delay", "slew"]
            counts = [1, 2, 3]
            empty = []
            "#,
        )
        .unwrap();
        assert_eq!(value.get("library").unwrap().as_str(), Some("paper-trio"));
        assert_eq!(value.get("seed").unwrap().as_f64(), Some(42.0));
        assert_eq!(value.get("scale").unwrap().as_f64(), Some(1.5));
        assert_eq!(value.get("resume").unwrap().as_bool(), Some(true));
        assert_eq!(value.get("metrics").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(value.get("counts").unwrap().as_array().unwrap().len(), 3);
        assert!(value.get("empty").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn rejects_sections_duplicates_and_syntax_errors() {
        assert!(parse("[run]\nkey = 1")
            .unwrap_err()
            .to_string()
            .contains("table headers"));
        assert!(parse("a = 1\na = 2")
            .unwrap_err()
            .to_string()
            .contains("duplicate"));
        assert!(parse("just a line")
            .unwrap_err()
            .to_string()
            .contains("key = value"));
        assert!(parse("a = ")
            .unwrap_err()
            .to_string()
            .contains("missing value"));
        assert!(parse("a = \"unterminated")
            .unwrap_err()
            .to_string()
            .contains("unterminated"));
        assert!(parse("a = [1, 2")
            .unwrap_err()
            .to_string()
            .contains("unterminated array"));
        assert!(parse("a = nope")
            .unwrap_err()
            .to_string()
            .contains("not a string"));
    }

    #[test]
    fn comments_inside_strings_survive() {
        let value = parse("note = \"keep # this\"").unwrap();
        assert_eq!(value.get("note").unwrap().as_str(), Some("keep # this"));
    }
}
