//! Property tests: the run ledger survives crashes and concurrent writers.
//!
//! The ledger promises the `DiskSimCache` file discipline — whole lines under an
//! exclusive flock, torn tails truncated before appending, readers salvaging every
//! complete line.  Two properties pin that down:
//!
//! * *Torn-tail salvage*: truncate a healthy ledger at any byte and every record
//!   whose line survived intact is still loaded; at most the one cut line is lost,
//!   and a subsequent append heals the file.
//! * *Concurrent appends*: N threads racing `ledger::append` on one path produce a
//!   file holding every record exactly once, with zero dropped lines.

use proptest::prelude::*;
use slic_obs::ledger::{self, RunRecord};
use slic_obs::metrics::MetricsRegistry;
use std::path::PathBuf;

fn record(seed: u64, label: &str) -> RunRecord {
    let metrics = MetricsRegistry::new();
    metrics.counter_set("cache.hits", seed % 97);
    metrics.counter_set("cache.misses", seed % 13);
    metrics.observe("engine.batch_lanes", (seed % 8) + 1, &[1, 2, 4, 8]);
    RunRecord {
        kind: "characterize".to_string(),
        fingerprint: format!("{:016x}", seed ^ 0xabcd_ef01_2345_6789),
        seed,
        profile: label.to_string(),
        backend: "local".to_string(),
        wall_ns: seed.wrapping_mul(31) % 1_000_000_000,
        sims_paid: seed % 500,
        sims_cached: seed % 123,
        artifact_hash: ledger::content_hash(&seed.to_le_bytes()),
        snapshot: metrics.snapshot(),
    }
}

fn scratch_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slic-ledger-props-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(format!("{tag}.jsonl"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cutting the file at any byte loses at most the one line the cut landed in;
    /// every earlier record still loads, and the next append heals the tail.
    #[test]
    fn torn_tail_loses_at_most_the_cut_line(
        seeds in proptest::collection::vec(0u64..1_000_000u64, 1..8usize),
        cut_back in 0usize..256usize,
    ) {
        let path = scratch_path("torn");
        let _ = std::fs::remove_file(&path);
        for (index, seed) in seeds.iter().enumerate() {
            ledger::append(&path, &record(*seed, &format!("run{index}"))).expect("append");
        }
        let bytes = std::fs::read(&path).expect("read back");
        // Cut somewhere in the last `cut_back` bytes (clamped to the file).
        let cut = bytes.len().saturating_sub(cut_back % bytes.len().max(1));
        std::fs::write(&path, &bytes[..cut]).expect("truncate");

        let salvaged = ledger::load(&path).expect("load survives the cut");
        // Complete lines survive: the cut can only destroy the line it landed in.
        let whole_lines = bytes[..cut].iter().filter(|&&b| b == b'\n').count();
        prop_assert!(salvaged.records.len() >= whole_lines);
        prop_assert!(salvaged.dropped <= 1, "at most the cut line drops");
        for (survivor, seed) in salvaged.records.iter().zip(&seeds) {
            prop_assert_eq!(survivor.seed, *seed, "surviving prefix is in order");
        }

        // Appending after the cut heals the file: the torn tail is truncated away.
        ledger::append(&path, &record(999_999_999, "heal")).expect("append heals");
        let healed = ledger::load(&path).expect("load healed");
        prop_assert_eq!(healed.dropped, 0);
        prop_assert_eq!(
            healed.records.last().map(|r| r.seed),
            Some(999_999_999)
        );
        let _ = std::fs::remove_file(&path);
    }

    /// N threads racing on one ledger: every record lands exactly once, no torn
    /// bytes, no drops — the exclusive flock serializes whole lines.
    #[test]
    fn concurrent_appends_never_tear(
        threads in 2usize..5usize,
        per_thread in 1usize..6usize,
    ) {
        let path = scratch_path(&format!("race-{threads}-{per_thread}"));
        let _ = std::fs::remove_file(&path);
        std::thread::scope(|scope| {
            for thread in 0..threads {
                let path = path.clone();
                scope.spawn(move || {
                    for index in 0..per_thread {
                        let seed = (thread * 1000 + index) as u64;
                        ledger::append(&path, &record(seed, "race")).expect("racing append");
                    }
                });
            }
        });
        let loaded = ledger::load(&path).expect("load after race");
        prop_assert_eq!(loaded.dropped, 0, "no interleaved bytes");
        let mut seeds: Vec<u64> = loaded.records.iter().map(|r| r.seed).collect();
        seeds.sort_unstable();
        let mut expected: Vec<u64> = (0..threads)
            .flat_map(|t| (0..per_thread).map(move |i| (t * 1000 + i) as u64))
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(seeds, expected, "every record exactly once");
        let _ = std::fs::remove_file(&path);
    }
}
